//! # emx — energy macro-models for extensible processors
//!
//! A from-scratch Rust reproduction of *"Energy Estimation for Extensible
//! Processors"* (Fei, Ravi, Raghunathan, Jha — DATE 2003): a regression
//! energy macro-model that, after characterizing a base processor
//! **once**, estimates the energy of applications running with **any**
//! custom instruction-set extensions using nothing but fast
//! instruction-set simulation — no synthesis, no RTL power simulation —
//! which is what makes energy-aware custom-instruction selection
//! practical inside an ASIP design loop.
//!
//! This facade crate re-exports the whole system:
//!
//! | crate | role |
//! |-------|------|
//! | [`isa`] | 32-bit base ISA (~80 instructions), programs, assembler |
//! | [`hwlib`] | custom hardware primitive library (10 categories), dataflow graphs |
//! | [`tie`] | custom-instruction (TIE-like) specs, compiler, extension sets |
//! | [`sim`] | functional ISS + cycle-accounted pipeline simulator with caches |
//! | [`rtlpower`] | RTL-level reference energy estimator (net-level integration) |
//! | [`regress`] | dense least squares (QR + pseudo-inverse), fit statistics |
//! | [`core`] | **the paper**: macro-model template, characterization, estimation |
//! | [`workloads`] | characterization suite, Table II applications, RS(15,11) codec |
//! | [`dse`] | design-space exploration: enumeration, cached parallel evaluation, Pareto search |
//! | [`discover`] | automatic custom-instruction discovery: DAG mining, TIE synthesis, candidate reports |
//! | [`serve`] | long-running estimation service: HTTP/1.1 endpoints, micro-batching, load generator |
//! | [`validate`] | cross-validation, differential fuzzing, golden accuracy gates |
//! | [`coverage`] | calibration-suite coverage: excitation analysis, conditioning gates, case planning |
//! | [`obs`] | observability: spans, counters, histograms, Chrome trace export |
//!
//! # Quickstart
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx::core::Characterizer;
//! use emx::sim::ProcConfig;
//! use emx::workloads::suite;
//!
//! // 1. Characterize the extensible processor once (steps 1–8).
//! let suite = suite::full_training_suite();
//! let cases = suite::training_cases(&suite);
//! let result = Characterizer::new(ProcConfig::default()).characterize(&cases)?;
//!
//! // 2. Estimate any application with any extensions (steps 9–11).
//! let app = emx::workloads::apps::accumulate();
//! let estimate = result.model.estimate(app.program(), app.ext(), ProcConfig::default())?;
//! println!("{}", estimate.energy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use emx_core as core;
pub use emx_coverage as coverage;
pub use emx_discover as discover;
pub use emx_dse as dse;
pub use emx_hwlib as hwlib;
pub use emx_isa as isa;
pub use emx_obs as obs;
pub use emx_regress as regress;
pub use emx_rtlpower as rtlpower;
pub use emx_serve as serve;
pub use emx_sim as sim;
pub use emx_tie as tie;
pub use emx_validate as validate;
pub use emx_workloads as workloads;

/// The most commonly used items, for glob import in examples and tools.
pub mod prelude {
    pub use emx_core::{
        Characterization, Characterizer, EnergyMacroModel, ModelSpec, TrainingCase,
    };
    pub use emx_dse::{CandidateSpace, DesignPoint, EstimationCache};
    pub use emx_hwlib::{Category, DfGraph, PrimOp};
    pub use emx_isa::asm::Assembler;
    pub use emx_isa::{Program, Reg};
    pub use emx_rtlpower::{Energy, RtlEnergyEstimator};
    pub use emx_sim::{Interp, PipelineSim, ProcConfig};
    pub use emx_tie::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind};
    pub use emx_workloads::Workload;
}
