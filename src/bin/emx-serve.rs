//! `emx-serve`: the estimation flow as a long-running service.
//!
//! ```sh
//! emx-serve                                  # model.txt, 127.0.0.1:8392
//! emx-serve --addr 127.0.0.1:0               # ephemeral port (printed)
//! emx-serve --model model.txt --cache c.json # crash-safe shared cache
//! emx-serve --workers 4 --jobs 2             # pool sizes
//! emx-serve --addr-file addr.txt             # write host:port for scripts
//! emx-serve --chrome-trace trace.json        # request-lane trace at exit
//! ```
//!
//! Endpoints (JSON over HTTP/1.1, see `docs/SCHEMAS.md`):
//! `GET /healthz`, `GET /v1/stats`, `POST /v1/estimate`, `POST /v1/dse`,
//! `GET /v1/characterize-report`, `POST /v1/shutdown`. Concurrent
//! estimate requests are micro-batched into shared
//! `dse::evaluate_batch` calls; `POST /v1/shutdown` drains in-flight
//! work, flushes the cache, and exits 0.

use std::process::ExitCode;

use emx::core::EmxError;
use emx::serve::{CharacterizeMode, ServeConfig, Server};

struct Options {
    addr: String,
    model_path: String,
    workers: usize,
    jobs: usize,
    cache_path: Option<String>,
    queue_depth: usize,
    max_body_bytes: usize,
    addr_file: Option<String>,
    chrome_trace: Option<String>,
    calibration_suite: bool,
}

const USAGE: &str = "usage: emx-serve [--addr <host:port>] [--model <model.txt>] \
                     [--workers <n>] [--jobs <n>] [--cache <file.json>] \
                     [--queue-depth <n>] [--max-body-bytes <n>] \
                     [--addr-file <path>] [--chrome-trace <out.json>] \
                     [--calibration-suite]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut options = Options {
        addr: "127.0.0.1:8392".to_owned(),
        model_path: "model.txt".to_owned(),
        workers: 0,
        jobs: 0,
        cache_path: None,
        queue_depth: 64,
        max_body_bytes: 1024 * 1024,
        addr_file: None,
        chrome_trace: None,
        calibration_suite: false,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    let number = |flag: &str, value: String| -> Result<usize, EmxError> {
        value
            .parse()
            .map_err(|_| EmxError::usage(format!("bad {flag} value `{value}`")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                options.addr = args
                    .next()
                    .ok_or_else(|| missing("--addr needs host:port"))?;
            }
            "--model" => {
                options.model_path = args
                    .next()
                    .ok_or_else(|| missing("--model needs a file path"))?;
            }
            "--cache" => {
                options.cache_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--cache needs a file path"))?,
                );
            }
            "--addr-file" => {
                options.addr_file = Some(
                    args.next()
                        .ok_or_else(|| missing("--addr-file needs a file path"))?,
                );
            }
            "--chrome-trace" => {
                options.chrome_trace = Some(
                    args.next()
                        .ok_or_else(|| missing("--chrome-trace needs a file path"))?,
                );
            }
            "--workers" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--workers needs a count"))?;
                options.workers = number("--workers", v)?;
            }
            "--jobs" => {
                let v = args.next().ok_or_else(|| missing("--jobs needs a count"))?;
                options.jobs = number("--jobs", v)?;
            }
            "--queue-depth" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--queue-depth needs a count"))?;
                options.queue_depth = number("--queue-depth", v)?;
                if options.queue_depth == 0 {
                    return Err(EmxError::usage("--queue-depth must be nonzero"));
                }
            }
            "--max-body-bytes" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--max-body-bytes needs a count"))?;
                options.max_body_bytes = number("--max-body-bytes", v)?;
            }
            "--calibration-suite" => options.calibration_suite = true,
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other => return Err(EmxError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), EmxError> {
    let text = std::fs::read_to_string(&options.model_path)
        .map_err(|e| EmxError::io(&options.model_path, &e))?;
    let model = emx::core::EnergyMacroModel::from_text(&text)
        .map_err(|e| EmxError::from(e).context(&options.model_path))?;

    let mut config = ServeConfig {
        addr: options.addr.clone(),
        workers: options.workers,
        queue_depth: options.queue_depth,
        cache_path: options.cache_path.clone(),
        chrome_trace: options.chrome_trace.clone(),
        characterize: if options.calibration_suite {
            CharacterizeMode::Calibration
        } else {
            CharacterizeMode::Full
        },
        ..ServeConfig::default()
    };
    config.limits.max_body_bytes = options.max_body_bytes;
    config.batch.jobs = options.jobs;

    let server = Server::bind(model, config)?;
    let addr = server.local_addr();
    // Stdout is line-buffered: scripts scrape this line for the port.
    println!("emx-serve: listening on {addr}");
    if let Some(path) = &options.addr_file {
        std::fs::write(path, format!("{addr}\n")).map_err(|e| EmxError::io(path, &e))?;
    }

    let summary = server.run()?;
    println!(
        "emx-serve: drained: {} requests ({} errors) over {} connections, \
         {} batches, {} cache entries",
        summary.requests,
        summary.errors,
        summary.connections,
        summary.batches,
        summary.cache_entries
    );
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data, 3 = internal error or fatal worker failure.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-serve: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_defaults_and_flags() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:8392");
        assert_eq!(o.model_path, "model.txt");
        assert!(o.cache_path.is_none());

        let o = opts(&[
            "--addr",
            "127.0.0.1:0",
            "--model",
            "m.txt",
            "--workers",
            "4",
            "--jobs",
            "2",
            "--cache",
            "c.json",
            "--queue-depth",
            "16",
            "--max-body-bytes",
            "4096",
            "--addr-file",
            "a.txt",
            "--chrome-trace",
            "t.json",
            "--calibration-suite",
        ])
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.workers, 4);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.cache_path.as_deref(), Some("c.json"));
        assert_eq!(o.queue_depth, 16);
        assert_eq!(o.max_body_bytes, 4096);
        assert_eq!(o.addr_file.as_deref(), Some("a.txt"));
        assert_eq!(o.chrome_trace.as_deref(), Some("t.json"));
        assert!(o.calibration_suite);
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &["--bogus-flag"][..],
            &["--addr"],
            &["--workers", "many"],
            &["--queue-depth", "0"],
            &["positional"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
