//! `emx-discover`: mine a workload for custom-instruction candidates.
//!
//! Replays the workload once through the micro-op ISS to weight its
//! basic blocks, lifts each block to a def-use DAG, enumerates every
//! legal convex pattern (two GPR read ports, one visible GPR def at the
//! anchor, no memory/control members), synthesizes each into compilable
//! TIE text, and ranks the deduplicated candidates by estimated dynamic
//! cycles saved. The result is the versioned `emx.discover-report/1`
//! artifact that `emx-dse --candidates` ingests as a design space.
//!
//! ```sh
//! emx-discover --workload rs1 --json discover.json   # mine Reed–Solomon
//! emx-discover --workload accumulate                 # table only
//! emx-discover --workload rs1 --jobs 4               # parallel mining
//! emx-discover --workload rs1 --max-nodes 4          # smaller patterns
//! ```
//!
//! The report is byte-identical across runs and `--jobs` values: mining
//! partitions by basic block and merges in block order, and every later
//! stage (dedup, ranking, naming) is ordered by canonical pattern text.

use std::process::ExitCode;

use emx::core::EmxError;
use emx::discover::mine::MineConfig;
use emx::discover::{discover, DiscoverConfig, DiscoverError};
use emx::workloads::registry;

struct Options {
    workload: String,
    json_path: Option<String>,
    jobs: usize,
    max_nodes: usize,
    max_cycles: u64,
    selfcheck: bool,
}

const USAGE: &str = "usage: emx-discover [--workload <name>] [--json <out.json>] \
                     [--jobs <n>] [--max-nodes <n>] [--max-cycles <n>] [--no-selfcheck]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut args = args.peekable();
    let defaults = DiscoverConfig::default();
    let mut options = Options {
        workload: "rs1".to_owned(),
        json_path: None,
        jobs: 1,
        max_nodes: defaults.mine.max_nodes,
        max_cycles: defaults.max_cycles,
        selfcheck: true,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                options.workload = args
                    .next()
                    .ok_or_else(|| missing("--workload needs a workload name"))?;
            }
            "--json" => {
                options.json_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--json needs a file path"))?,
                );
            }
            "--jobs" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--jobs needs a number"))?;
                options.jobs = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad job count `{n}`")))?;
                if options.jobs == 0 {
                    return Err(EmxError::usage("--jobs must be at least 1".to_owned()));
                }
            }
            "--max-nodes" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--max-nodes needs a number"))?;
                options.max_nodes = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad node count `{n}`")))?;
                if options.max_nodes == 0 {
                    return Err(EmxError::usage("--max-nodes must be at least 1".to_owned()));
                }
            }
            "--max-cycles" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--max-cycles needs a number"))?;
                options.max_cycles = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad cycle budget `{n}`")))?;
            }
            "--no-selfcheck" => options.selfcheck = false,
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other => return Err(EmxError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), EmxError> {
    let workload = registry::by_name(&options.workload).ok_or_else(|| {
        EmxError::usage(format!(
            "unknown workload `{}` (available: {})",
            options.workload,
            registry::names().join(", ")
        ))
    })?;
    let config = DiscoverConfig {
        mine: MineConfig {
            max_nodes: options.max_nodes,
            ..MineConfig::default()
        },
        max_cycles: options.max_cycles,
        jobs: options.jobs,
        selfcheck: options.selfcheck,
    };
    let report = discover(&workload, &config).map_err(|e| match e {
        DiscoverError::UnknownWorkload(name) => {
            EmxError::usage(format!("unknown workload `{name}`"))
        }
        DiscoverError::Report(msg) => EmxError::parse("discover.report", msg),
        e @ (DiscoverError::Sim(_) | DiscoverError::Internal(_)) => {
            EmxError::internal("discover.pipeline", e.to_string())
        }
    })?;

    let f = &report.funnel;
    println!(
        "workload `{}`: {} block(s), {} set(s) enumerated, {} legal, {} unique candidate(s)",
        report.workload,
        f.blocks,
        f.enumerated,
        report.legal,
        report.candidates.len(),
    );
    println!(
        "rejected: {} non-convex, {} ports, {} ordering, {} dead, {} synthesis, {} self-check",
        f.rejected_convex,
        f.rejected_io,
        f.rejected_order,
        f.rejected_dead,
        f.rejected_synth,
        f.rejected_check,
    );
    if f.capped_blocks > 0 {
        eprintln!(
            "emx-discover: warning: {} block(s) hit the enumeration cap; \
             results there are truncated",
            f.capped_blocks
        );
    }
    println!(
        "\n{:<6} {:>14} {:>8} {:>10} {:>6} {:>10} {:>6}",
        "name", "saved_cycles", "latency", "area", "ops", "weight", "sites"
    );
    for c in &report.candidates {
        println!(
            "{:<6} {:>14} {:>8} {:>10.1} {:>6} {:>10} {:>6}",
            c.name,
            c.saved_cycles_est,
            c.latency,
            c.area,
            c.op_nodes,
            c.weight,
            c.sites.len(),
        );
    }

    if let Some(path) = &options.json_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("\nreport written to {path}");
        println!("next: emx-dse --candidates {path} --json dse.json");
    }
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data, 3 = internal error or fatal worker failure.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-discover: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_defaults() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.workload, "rs1");
        assert!(o.json_path.is_none());
        assert_eq!(o.jobs, 1);
        assert_eq!(o.max_nodes, MineConfig::default().max_nodes);
        assert!(o.selfcheck);
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "--workload",
            "accumulate",
            "--json",
            "d.json",
            "--jobs",
            "4",
            "--max-nodes",
            "4",
            "--max-cycles",
            "1000000",
            "--no-selfcheck",
        ])
        .unwrap();
        assert_eq!(o.workload, "accumulate");
        assert_eq!(o.json_path.as_deref(), Some("d.json"));
        assert_eq!(o.jobs, 4);
        assert_eq!(o.max_nodes, 4);
        assert_eq!(o.max_cycles, 1_000_000);
        assert!(!o.selfcheck);
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &["--jobs"][..],
            &["--jobs", "0"],
            &["--jobs", "many"],
            &["--max-nodes", "0"],
            &["--max-cycles", "soon"],
            &["--bogus"],
            &["stray"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
