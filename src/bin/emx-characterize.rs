//! `emx-characterize`: run the one-time characterization flow over the
//! built-in training suite and write the fitted macro-model to a text
//! file, ready for `emx-run --model`.
//!
//! ```sh
//! emx-characterize model.txt
//! emx-characterize model.txt --report report.json   # + per-phase timings,
//!                                                   #   per-case fit errors
//! emx-run program.s --tie ext.tie --model model.txt # instant estimates
//! ```
//!
//! The report (schema `emx.characterize-report/1`) records wall-clock
//! time per phase (ISS simulation, reference estimation, least-squares
//! solve), the measured ISS-vs-reference speedup, and one entry per
//! training case with its cycles, timings and signed fitting error —
//! `emx-diagnostics` consumes it.
//!
//! Before writing the model, the suite's design matrix is gated by the
//! `emx-coverage` excitation analyzer: an ill-conditioned suite (a
//! sole-source variable, collinear columns, an excessive condition
//! number) would produce coefficients that fit the suite but extrapolate
//! badly, so characterization **refuses** (exit 1) rather than emit a
//! silently fragile model. `--skip-coverage-check` bypasses the gate for
//! deliberate experiments with reduced suites.

use std::process::ExitCode;

use emx::core::{Characterizer, EmxError, ErrorKind};
use emx::coverage::{analyze, Thresholds};
use emx::obs::Collector;
use emx::sim::ProcConfig;
use emx::workloads::suite;

const USAGE: &str =
    "usage: emx-characterize <model-output.txt> [--report <out.json>] [--skip-coverage-check]";

fn run(path: &str, report_path: Option<&str>, skip_coverage: bool) -> Result<(), EmxError> {
    println!("characterizing the emx base processor over the built-in training suite…");
    let workloads = suite::full_training_suite();
    let cases = suite::training_cases(&workloads);
    let mut obs = Collector::disabled();
    let (result, report, dataset) = Characterizer::new(ProcConfig::default())
        .characterize_with_dataset(&cases, &mut obs)
        .map_err(|e| EmxError::from(e).context("characterization failed"))?;

    if skip_coverage {
        println!("suite coverage gate: skipped (--skip-coverage-check)");
    } else {
        let analysis = analyze(&dataset, &Thresholds::default()).map_err(|e| {
            EmxError::new(
                ErrorKind::Model,
                "characterize.coverage",
                format!("coverage analysis failed: {e}"),
            )
        })?;
        if analysis.passes() {
            println!(
                "suite coverage gate: ok ({} cases, condition number {:.1})",
                analysis.cases, analysis.condition_number
            );
        } else {
            for failure in analysis.failures() {
                eprintln!("coverage gap: {failure}");
            }
            return Err(EmxError::new(
                ErrorKind::Model,
                "characterize.coverage",
                format!(
                    "training suite is ill-conditioned ({} gap(s)); a model fitted from it \
                     would extrapolate badly — fix the suite (see `emx-validate --coverage`) \
                     or pass --skip-coverage-check",
                    analysis.failures().len()
                ),
            ));
        }
    }

    println!(
        "fitted {} coefficients over {} programs: R^2 = {:.5}, rms = {:.2}%, max = {:.2}%",
        result.model.coefficients().len(),
        result.fit.sample_errors().len(),
        result.fit.r_squared(),
        result.fit.rms_percent_error(),
        result.fit.max_abs_percent_error(),
    );
    println!(
        "phases: ISS {} ms, reference {} ms, solve {} µs — suite-wide ISS speedup {:.0}×",
        report.simulate_micros / 1000,
        report.reference_micros / 1000,
        report.solve_micros,
        report.speedup,
    );
    std::fs::write(path, result.model.to_text()).map_err(|e| EmxError::io(path, &e))?;
    println!("model written to {path}");

    if let Some(report_path) = report_path {
        let mut text = report.to_json().to_string();
        text.push('\n');
        std::fs::write(report_path, text).map_err(|e| EmxError::io(report_path, &e))?;
        println!("report written to {report_path}");
    }
    Ok(())
}

fn parse_args(
    mut args: impl Iterator<Item = String>,
) -> Result<(String, Option<String>, bool), EmxError> {
    let mut model_path = None;
    let mut report_path = None;
    let mut skip_coverage = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => {
                report_path = Some(args.next().ok_or_else(|| {
                    EmxError::usage(format!("--report needs a file path\n{USAGE}"))
                })?);
            }
            "--skip-coverage-check" => skip_coverage = true,
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other if other.starts_with('-') => {
                return Err(EmxError::usage(format!("unknown flag `{other}`")))
            }
            path if model_path.is_none() => model_path = Some(path.to_owned()),
            extra => return Err(EmxError::usage(format!("unexpected argument `{extra}`"))),
        }
    }
    Ok((
        model_path.ok_or_else(|| EmxError::usage(USAGE))?,
        report_path,
        skip_coverage,
    ))
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data, 3 = internal error or fatal worker failure.
fn main() -> ExitCode {
    let (path, report_path, skip_coverage) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&path, report_path.as_deref(), skip_coverage) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-characterize: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<(String, Option<String>, bool), EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_model_path_and_optional_report() {
        assert_eq!(
            parse(&["m.txt"]).unwrap(),
            ("m.txt".to_owned(), None, false)
        );
        assert_eq!(
            parse(&["m.txt", "--report", "r.json"]).unwrap(),
            ("m.txt".to_owned(), Some("r.json".to_owned()), false)
        );
        assert_eq!(
            parse(&["m.txt", "--skip-coverage-check"]).unwrap(),
            ("m.txt".to_owned(), None, true)
        );
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &[][..],
            &["--report", "r.json"],
            &["m.txt", "--report"],
            &["m.txt", "extra"],
            &["m.txt", "--bogus"],
        ] {
            match parse(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
