//! `emx-characterize`: run the one-time characterization flow over the
//! built-in training suite and write the fitted macro-model to a text
//! file, ready for `emx-run --model`.
//!
//! ```sh
//! emx-characterize model.txt
//! emx-run program.s --tie ext.tie --model model.txt   # instant estimates
//! ```

use std::process::ExitCode;

use emx::core::{Characterizer, TrainingCase};
use emx::sim::ProcConfig;

fn run(path: &str) -> Result<(), String> {
    println!("characterizing the emx base processor over the built-in training suite…");
    let suite = emx::workloads::suite::full_training_suite();
    let cases: Vec<TrainingCase<'_>> = suite
        .iter()
        .map(|w| TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let result = Characterizer::new(ProcConfig::default())
        .characterize(&cases)
        .map_err(|e| format!("characterization failed: {e}"))?;

    println!(
        "fitted {} coefficients over {} programs: R^2 = {:.5}, rms = {:.2}%, max = {:.2}%",
        result.model.coefficients().len(),
        result.fit.sample_errors().len(),
        result.fit.r_squared(),
        result.fit.rms_percent_error(),
        result.fit.max_abs_percent_error(),
    );
    std::fs::write(path, result.model.to_text())
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("model written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("usage: emx-characterize <model-output.txt>");
        return ExitCode::FAILURE;
    };
    match run(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("emx-characterize: {message}");
            ExitCode::FAILURE
        }
    }
}
