//! `emx-run`: assemble and execute an emx assembly program, optionally on
//! an extended processor defined in a `.tie` file, and report execution
//! statistics and energy.
//!
//! ```sh
//! emx-run program.s                        # run, print stats
//! emx-run program.s --tie ext.tie          # with a custom extension
//! emx-run program.s --energy               # + reference energy report
//! emx-run program.s --profile 256          # + power-over-time windows
//! emx-run program.s --disasm               # print the program and exit
//! emx-run program.s --trace                # per-instruction execution trace
//! emx-run program.s --model model.txt      # instant macro-model estimate
//!                                          #   (model from emx-characterize)
//! emx-run program.s --max-cycles 1000000
//! ```

use std::process::ExitCode;

use emx::prelude::*;
use emx::tie::lang::parse_extension;

struct Options {
    program_path: String,
    tie_path: Option<String>,
    model_path: Option<String>,
    energy: bool,
    profile: Option<u64>,
    disasm: bool,
    trace: bool,
    max_cycles: u64,
}

const USAGE: &str = "usage: emx-run <program.s> [--tie <ext.tie>] [--energy] \
                     [--model <model.txt>] \
                     [--profile <window-cycles>] [--disasm] [--trace] [--max-cycles <n>]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut program_path = None;
    let mut options = Options {
        program_path: String::new(),
        tie_path: None,
        model_path: None,
        energy: false,
        profile: None,
        disasm: false,
        trace: false,
        max_cycles: 1_000_000_000,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tie" => {
                options.tie_path = Some(args.next().ok_or("--tie needs a file path")?);
            }
            "--model" => {
                options.model_path = Some(args.next().ok_or("--model needs a file path")?);
            }
            "--energy" => options.energy = true,
            "--disasm" => options.disasm = true,
            "--trace" => options.trace = true,
            "--profile" => {
                let w = args.next().ok_or("--profile needs a window size")?;
                let w: u64 = w.parse().map_err(|_| format!("bad window size `{w}`"))?;
                if w == 0 {
                    return Err("window size must be nonzero".to_owned());
                }
                options.profile = Some(w);
            }
            "--max-cycles" => {
                let n = args.next().ok_or("--max-cycles needs a number")?;
                options.max_cycles = n.parse().map_err(|_| format!("bad cycle count `{n}`"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path if program_path.is_none() => program_path = Some(path.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    options.program_path = program_path.ok_or(USAGE)?;
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let ext = match &options.tie_path {
        Some(path) => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_extension(&src).map_err(|e| format!("{path}: {e}"))?
        }
        None => ExtensionSet::empty(),
    };

    let src = std::fs::read_to_string(&options.program_path)
        .map_err(|e| format!("cannot read `{}`: {e}", options.program_path))?;
    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble(&src)
        .map_err(|e| format!("{}: {e}", options.program_path))?;

    if options.disasm {
        print!("{program}");
        return Ok(());
    }

    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let result = if options.trace {
        let mut tracer = emx::sim::trace::Tracer::new();
        let result = sim
            .run_with_sink(&mut tracer, options.max_cycles)
            .map_err(|e| format!("simulation failed: {e}"))?;
        println!("{}\n", tracer.to_text());
        result
    } else {
        sim.run(options.max_cycles)
            .map_err(|e| format!("simulation failed: {e}"))?
    };
    println!("{}", result.stats);
    println!("registers:");
    for r in Reg::all() {
        let v = sim.state().reg(r);
        if v != 0 {
            println!("  {r:<4} = 0x{v:08x} ({v})");
        }
    }

    if let Some(path) = &options.model_path {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let model =
            emx::core::EnergyMacroModel::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
        let estimate = model
            .estimate(&program, &ext, ProcConfig::default())
            .map_err(|e| format!("macro-model estimation failed: {e}"))?;
        println!(
            "\nmacro-model estimate: {} ({:.1} mW at 187 MHz)",
            estimate.energy,
            estimate
                .energy
                .average_power_mw(estimate.stats.total_cycles, 187.0)
        );
    }

    if options.energy || options.profile.is_some() {
        let estimator = RtlEnergyEstimator::new();
        let config = ProcConfig::default();
        if let Some(window) = options.profile {
            let (report, profile) = estimator
                .estimate_profiled(&program, &ext, config, window)
                .map_err(|e| format!("energy estimation failed: {e}"))?;
            println!("\nenergy breakdown:\n{}", report.breakdown);
            println!(
                "average power {:.1} mW, peak window power {:.1} mW (187 MHz, {window}-cycle windows)",
                report.average_power_mw(187.0),
                profile.peak_power_mw(187.0)
            );
        } else {
            let report = estimator
                .estimate(&program, &ext, config)
                .map_err(|e| format!("energy estimation failed: {e}"))?;
            println!("\nenergy breakdown:\n{}", report.breakdown);
            println!(
                "average power {:.1} mW at 187 MHz",
                report.average_power_mw(187.0)
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("emx-run: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = opts(&["prog.s"]).unwrap();
        assert_eq!(o.program_path, "prog.s");
        assert!(!o.energy);
        assert!(o.tie_path.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "p.s",
            "--tie",
            "x.tie",
            "--model",
            "m.txt",
            "--energy",
            "--trace",
            "--profile",
            "256",
            "--max-cycles",
            "42",
        ])
        .unwrap();
        assert_eq!(o.tie_path.as_deref(), Some("x.tie"));
        assert_eq!(o.model_path.as_deref(), Some("m.txt"));
        assert!(o.energy);
        assert!(o.trace);
        assert_eq!(o.profile, Some(256));
        assert_eq!(o.max_cycles, 42);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(opts(&[]).is_err());
        assert!(opts(&["p.s", "--bogus"]).is_err());
        assert!(opts(&["p.s", "--profile", "0"]).is_err());
        assert!(opts(&["p.s", "--profile", "xyz"]).is_err());
        assert!(opts(&["p.s", "extra.s"]).is_err());
    }
}
