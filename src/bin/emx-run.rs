//! `emx-run`: assemble and execute an emx assembly program, optionally on
//! an extended processor defined in a `.tie` file, and report execution
//! statistics and energy.
//!
//! ```sh
//! emx-run program.s                        # run, print stats
//! emx-run program.s --tie ext.tie          # with a custom extension
//! emx-run program.s --energy               # + reference energy report
//! emx-run program.s --profile 256          # + power-over-time windows
//! emx-run program.s --disasm               # print the program and exit
//! emx-run program.s --trace                # per-instruction execution trace
//! emx-run program.s --model model.txt      # instant macro-model estimate
//!                                          #   (model from emx-characterize)
//! emx-run program.s --stats-json out.json  # ExecStats as stable JSON
//! emx-run program.s --chrome-trace t.json  # Chrome/Perfetto trace of the
//!                                          #   run (phases + counter series)
//! emx-run program.s --max-cycles 1000000
//! ```
//!
//! With both `--model` and `--energy` (or `--profile`), a speedup summary
//! compares the macro-model's wall time against the RTL-level reference
//! flow — the paper's §V claim, measured live.

use std::process::ExitCode;
use std::time::Instant;

use emx::core::EmxError;
use emx::obs::{ChromeTraceWriter, Collector};
use emx::prelude::*;
use emx::sim::observe::CounterTraceSink;
use emx::sim::{ActivitySink, InstRecord};
use emx::tie::lang::parse_extension;

struct Options {
    program_path: String,
    tie_path: Option<String>,
    model_path: Option<String>,
    energy: bool,
    profile: Option<u64>,
    disasm: bool,
    trace: bool,
    stats_json: Option<String>,
    chrome_trace: Option<String>,
    max_cycles: u64,
}

const USAGE: &str = "usage: emx-run <program.s> [--tie <ext.tie>] [--energy] \
                     [--model <model.txt>] \
                     [--profile <window-cycles>] [--disasm] [--trace] \
                     [--stats-json <out.json>] [--chrome-trace <out.json>] \
                     [--max-cycles <n>]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut program_path = None;
    let mut options = Options {
        program_path: String::new(),
        tie_path: None,
        model_path: None,
        energy: false,
        profile: None,
        disasm: false,
        trace: false,
        stats_json: None,
        chrome_trace: None,
        max_cycles: 1_000_000_000,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tie" => {
                options.tie_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--tie needs a file path"))?,
                );
            }
            "--model" => {
                options.model_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--model needs a file path"))?,
                );
            }
            "--energy" => options.energy = true,
            "--disasm" => options.disasm = true,
            "--trace" => options.trace = true,
            "--stats-json" => {
                options.stats_json = Some(
                    args.next()
                        .ok_or_else(|| missing("--stats-json needs a file path"))?,
                );
            }
            "--chrome-trace" => {
                options.chrome_trace = Some(
                    args.next()
                        .ok_or_else(|| missing("--chrome-trace needs a file path"))?,
                );
            }
            "--profile" => {
                let w = args
                    .next()
                    .ok_or_else(|| missing("--profile needs a window size"))?;
                let w: u64 = w
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad window size `{w}`")))?;
                if w == 0 {
                    return Err(EmxError::usage("window size must be nonzero"));
                }
                options.profile = Some(w);
            }
            "--max-cycles" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--max-cycles needs a number"))?;
                options.max_cycles = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad cycle count `{n}`")))?;
            }
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other if other.starts_with('-') => {
                return Err(EmxError::usage(format!("unknown flag `{other}`")))
            }
            path if program_path.is_none() => program_path = Some(path.to_owned()),
            extra => return Err(EmxError::usage(format!("unexpected argument `{extra}`"))),
        }
    }
    options.program_path = program_path.ok_or_else(|| EmxError::usage(USAGE))?;
    Ok(options)
}

/// Forwards each activity record to two sinks (human trace + counters).
struct Tee<'a, A: ActivitySink, B: ActivitySink>(&'a mut A, &'a mut B);

impl<A: ActivitySink, B: ActivitySink> ActivitySink for Tee<'_, A, B> {
    fn record(&mut self, r: &InstRecord<'_>) {
        self.0.record(r);
        self.1.record(r);
    }
}

fn elapsed_micros(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn run(options: &Options) -> Result<(), EmxError> {
    // The collector is enabled only when a Chrome trace was requested, so
    // the default path stays allocation-free.
    let mut obs = if options.chrome_trace.is_some() {
        Collector::new()
    } else {
        Collector::disabled()
    };

    let span = obs.begin("assemble");
    let ext = match &options.tie_path {
        Some(path) => {
            let src = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
            parse_extension(&src).map_err(|e| EmxError::from(e).context(path))?
        }
        None => ExtensionSet::empty(),
    };
    let src = std::fs::read_to_string(&options.program_path)
        .map_err(|e| EmxError::io(&options.program_path, &e))?;
    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble(&src)
        .map_err(|e| EmxError::parse("parse.asm", format!("{}: {e}", options.program_path)))?;
    obs.end(span);

    if options.disasm {
        print!("{program}");
        return Ok(());
    }

    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let span = obs.begin("iss-simulate");
    let sim_error = |e: emx::sim::SimError| EmxError::from(e).context("simulation failed");
    let result = if options.trace {
        let mut tracer = emx::sim::trace::Tracer::new();
        let result = if obs.is_enabled() {
            let mut counters = CounterTraceSink::new(&mut obs, 1024);
            let mut tee = Tee(&mut tracer, &mut counters);
            let result = sim.run_with_sink(&mut tee, options.max_cycles);
            counters.finish();
            result.map_err(sim_error)?
        } else {
            sim.run_with_sink(&mut tracer, options.max_cycles)
                .map_err(sim_error)?
        };
        println!("{}\n", tracer.to_text());
        if tracer.is_truncated() {
            println!(
                "(trace limited to {} lines; {} instructions suppressed)\n",
                tracer.lines().len(),
                tracer.suppressed_lines()
            );
        }
        result
    } else if obs.is_enabled() {
        let mut counters = CounterTraceSink::new(&mut obs, 1024);
        let result = sim.run_with_sink(&mut counters, options.max_cycles);
        counters.finish();
        result.map_err(sim_error)?
    } else {
        sim.run(options.max_cycles).map_err(sim_error)?
    };
    obs.end(span);
    obs.add("iss.instructions", result.stats.inst_count as f64);
    obs.add("iss.total_cycles", result.stats.total_cycles as f64);

    println!("{}", result.stats);
    println!("registers:");
    for r in Reg::all() {
        let v = sim.state().reg(r);
        if v != 0 {
            println!("  {r:<4} = 0x{v:08x} ({v})");
        }
    }

    // Phase attribution: where the ISS itself spends host time. Re-runs
    // the simulation with the phase recorder active (the normal run
    // above stays on the uninstrumented fast path).
    if options.profile.is_some() {
        let span = obs.begin("iss-phase-profile");
        let mut profiled = Interp::new(&program, &ext, ProcConfig::default());
        let profile = if obs.is_enabled() {
            profiled
                .run_profiled(options.max_cycles, &mut obs)
                .map_err(sim_error)?
                .1
        } else {
            let mut local = Collector::new();
            profiled
                .run_profiled(options.max_cycles, &mut local)
                .map_err(sim_error)?
                .1
        };
        obs.end(span);
        println!("\nISS phase breakdown (host time):\n{profile}");
    }

    let mut model_micros = None;
    if let Some(path) = &options.model_path {
        let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
        let model = emx::core::EnergyMacroModel::from_text(&text)
            .map_err(|e| EmxError::from(e).context(path))?;
        let started = Instant::now();
        let span = obs.begin("macro-model-estimate");
        let estimate = model
            .estimate(&program, &ext, ProcConfig::default())
            .map_err(|e| EmxError::from(e).context("macro-model estimation failed"))?;
        obs.end(span);
        model_micros = Some(elapsed_micros(started));
        println!(
            "\nmacro-model estimate: {} ({:.1} mW at 187 MHz)",
            estimate.energy,
            estimate
                .energy
                .average_power_mw(estimate.stats.total_cycles, 187.0)
        );
    }

    let mut reference_micros = None;
    if options.energy || options.profile.is_some() {
        let estimator = RtlEnergyEstimator::new();
        let config = ProcConfig::default();
        let energy_error =
            |e: emx::sim::SimError| EmxError::from(e).context("energy estimation failed");
        let started = Instant::now();
        if let Some(window) = options.profile {
            let (report, profile) = estimator
                .estimate_profiled(&program, &ext, config, window)
                .map_err(energy_error)?;
            reference_micros = Some(elapsed_micros(started));
            profile.export_to(&mut obs);
            println!("\nenergy breakdown:\n{}", report.breakdown);
            println!(
                "average power {:.1} mW, peak window power {:.1} mW (187 MHz, {window}-cycle windows)",
                report.average_power_mw(187.0),
                profile.peak_power_mw(187.0)
            );
        } else {
            let report = estimator
                .estimate_traced(&program, &ext, config, u64::from(u32::MAX), &mut obs)
                .map_err(energy_error)?;
            reference_micros = Some(elapsed_micros(started));
            println!("\nenergy breakdown:\n{}", report.breakdown);
            println!(
                "average power {:.1} mW at 187 MHz",
                report.average_power_mw(187.0)
            );
        }
    }

    if let (Some(model_us), Some(reference_us)) = (model_micros, reference_micros) {
        println!(
            "\nspeedup: macro-model {model_us} µs vs RTL reference {reference_us} µs → {:.0}×",
            reference_us as f64 / model_us.max(1) as f64
        );
    }

    if let Some(path) = &options.stats_json {
        let mut text = result.stats.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("\nstats JSON written to {path}");
    }

    if let Some(path) = &options.chrome_trace {
        let mut text = ChromeTraceWriter::new("emx-run").to_string(&obs);
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("\nChrome trace written to {path} (load at ui.perfetto.dev)");
    }
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data, 3 = internal error or fatal worker failure.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-run: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_minimal_invocation() {
        let o = opts(&["prog.s"]).unwrap();
        assert_eq!(o.program_path, "prog.s");
        assert!(!o.energy);
        assert!(o.tie_path.is_none());
        assert!(o.stats_json.is_none());
        assert!(o.chrome_trace.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "p.s",
            "--tie",
            "x.tie",
            "--model",
            "m.txt",
            "--energy",
            "--trace",
            "--profile",
            "256",
            "--stats-json",
            "s.json",
            "--chrome-trace",
            "t.json",
            "--max-cycles",
            "42",
        ])
        .unwrap();
        assert_eq!(o.tie_path.as_deref(), Some("x.tie"));
        assert_eq!(o.model_path.as_deref(), Some("m.txt"));
        assert!(o.energy);
        assert!(o.trace);
        assert_eq!(o.profile, Some(256));
        assert_eq!(o.stats_json.as_deref(), Some("s.json"));
        assert_eq!(o.chrome_trace.as_deref(), Some("t.json"));
        assert_eq!(o.max_cycles, 42);
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &[][..],
            &["p.s", "--bogus"],
            &["p.s", "--profile", "0"],
            &["p.s", "--profile", "xyz"],
            &["p.s", "--stats-json"],
            &["p.s", "--chrome-trace"],
            &["p.s", "extra.s"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
