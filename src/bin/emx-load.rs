//! `emx-load`: load generator for a running `emx-serve` instance.
//!
//! ```sh
//! emx-load --addr 127.0.0.1:8392                       # 4 workers, 1 s
//! emx-load --addr $ADDR --concurrency 8 --duration-ms 2000
//! emx-load --addr $ADDR --app gcd --app des            # app mix
//! emx-load --addr $ADDR --json report.json --shutdown  # CI smoke shape
//! ```
//!
//! Workers hammer `POST /v1/estimate` over keep-alive connections until
//! the deadline, then the merged measurements are printed (and
//! optionally written) as a versioned `emx.load-report/1` document:
//! request count, error count, sustained RPS, and latency percentiles
//! (p50/p90/p99). A nonzero error count fails the run with exit code 1
//! so scripts can gate on it directly; `--shutdown` additionally drains
//! the server when the burst completes.

use std::process::ExitCode;

use emx::core::EmxError;
use emx::obs::json::Value;
use emx::serve::{run_load, LoadConfig};

struct Options {
    config: LoadConfig,
    json_out: Option<String>,
}

const USAGE: &str = "usage: emx-load --addr <host:port> [--concurrency <n>] \
                     [--duration-ms <n>] [--app <name>]... [--json <out.json>] \
                     [--shutdown]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut addr = None;
    let mut config = LoadConfig::default();
    let mut apps: Vec<String> = vec![];
    let mut json_out = None;
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    args.next()
                        .ok_or_else(|| missing("--addr needs host:port"))?,
                );
            }
            "--concurrency" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--concurrency needs a count"))?;
                config.concurrency = v
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad --concurrency value `{v}`")))?;
                if config.concurrency == 0 {
                    return Err(EmxError::usage("--concurrency must be nonzero"));
                }
            }
            "--duration-ms" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--duration-ms needs a count"))?;
                config.duration_ms = v
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad --duration-ms value `{v}`")))?;
            }
            "--app" => {
                apps.push(args.next().ok_or_else(|| missing("--app needs a name"))?);
            }
            "--json" => {
                json_out = Some(args.next().ok_or_else(|| missing("--json needs a path"))?);
            }
            "--shutdown" => config.shutdown_after = true,
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other => return Err(EmxError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    config.addr = addr.ok_or_else(|| missing("--addr is required"))?;
    if !apps.is_empty() {
        config.apps = apps;
    }
    Ok(Options { config, json_out })
}

fn run(options: &Options) -> Result<(), EmxError> {
    let report = run_load(&options.config)?;
    emx::serve::loadgen::validate_report(&report)
        .map_err(|why| EmxError::internal("load.bad_report", why))?;
    let text = format!("{report}\n");
    print!("{text}");
    if let Some(path) = &options.json_out {
        std::fs::write(path, &text).map_err(|e| EmxError::io(path, &e))?;
    }
    let errors = report.get("errors").and_then(Value::as_u64).unwrap_or(0);
    if errors > 0 {
        let requests = report.get("requests").and_then(Value::as_u64).unwrap_or(0);
        return Err(EmxError::new(
            emx::core::ErrorKind::Io,
            "load.request_errors",
            format!("{errors} of {requests} requests failed"),
        ));
    }
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input or failed requests, 3 = internal error.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-load: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_full_flag_set() {
        let o = opts(&[
            "--addr",
            "127.0.0.1:9000",
            "--concurrency",
            "8",
            "--duration-ms",
            "250",
            "--app",
            "gcd",
            "--app",
            "des",
            "--json",
            "out.json",
            "--shutdown",
        ])
        .unwrap();
        assert_eq!(o.config.addr, "127.0.0.1:9000");
        assert_eq!(o.config.concurrency, 8);
        assert_eq!(o.config.duration_ms, 250);
        assert_eq!(o.config.apps, ["gcd", "des"]);
        assert_eq!(o.json_out.as_deref(), Some("out.json"));
        assert!(o.config.shutdown_after);
    }

    #[test]
    fn default_app_mix_survives_when_unset() {
        let o = opts(&["--addr", "127.0.0.1:9000"]).unwrap();
        assert_eq!(o.config.apps, ["gcd", "ins_sort"]);
        assert!(!o.config.shutdown_after);
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &[][..],
            &["--addr"],
            &["--concurrency", "0"],
            &["--concurrency", "lots", "--addr", "x"],
            &["--bogus", "--addr", "x"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
