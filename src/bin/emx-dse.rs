//! `emx-dse`: explore a custom-instruction design space with the
//! macro-model fast path — enumerate candidate extension subsets under an
//! area budget, evaluate them in parallel with a content-addressed
//! estimation cache, and report the energy/performance Pareto front.
//!
//! ```sh
//! emx-dse --workload reed-solomon                  # full search
//! emx-dse --budget 800                             # area-constrained
//! emx-dse --jobs 4                                 # 4 worker threads
//! emx-dse --cache dse-cache.json                   # reuse across runs
//! emx-dse --model model.txt                        # skip characterization
//! emx-dse --json report.json                       # emx.dse-report/1
//! emx-dse --chrome-trace t.json                    # per-worker trace lanes
//! emx-dse --shard 2/3 --emit-shard s2.json         # evaluate one shard
//! emx-dse --merge s1.json s2.json s3.json \
//!         --json merged.json --cache warm.json     # recombine shards
//! emx-dse --candidates discover.json --top 6       # discovered space
//! ```
//!
//! The report JSON is a pure function of the search inputs: identical
//! across `--jobs` settings and cache warmth (timings and cache counters
//! live in the observability outputs instead).
//!
//! Sharding partitions the enumeration deterministically by mask range:
//! `--shard i/N` evaluates the i-th of N disjoint sub-spaces and
//! `--emit-shard` writes an `emx.dse-shard-report/1` artifact (rows,
//! failures, cache delta, `evaluated`/`reused` counters, partition
//! fingerprint). `--merge` recombines a complete set of shard artifacts
//! into an `emx.dse-report/1` byte-identical to the single-process
//! report, and `--cache` in merge mode folds the shard deltas into one
//! warm cache file — so the next model refit re-prices without
//! re-simulating.
//!
//! `--candidates` ingests an `emx.discover-report/1` artifact written by
//! `emx-discover` and explores the space of its top `--top` candidates
//! instead of a named hand-written space: the `base` point is the
//! unmodified workload, and every other subset rewrites the program with
//! the selected discovered instructions before pricing.

use std::process::ExitCode;

use emx::core::{Characterizer, EmxError};
use emx::dse::{self, CandidateSpace, EstimationCache, ShardSpec};
use emx::obs::{ChromeTraceWriter, Collector};
use emx::sim::ProcConfig;
use emx::workloads::suite;

struct Options {
    workload: Option<String>,
    budget: Option<f64>,
    jobs: usize,
    cache_path: Option<String>,
    model_path: Option<String>,
    json_path: Option<String>,
    chrome_trace: Option<String>,
    shard: Option<ShardSpec>,
    emit_shard: Option<String>,
    merge: Vec<String>,
    candidates: Option<String>,
    top: usize,
}

const USAGE: &str = "usage: emx-dse [--workload <name>] [--budget <net-equivalents>] \
                     [--jobs <n>] [--cache <file.json>] [--model <model.txt>] \
                     [--json <out.json>] [--chrome-trace <out.json>] \
                     [--shard <i/N>] [--emit-shard <out.json>] \
                     [--candidates <discover.json>] [--top <n>] \
                     | emx-dse --merge <shard.json>... [--json <out.json>] \
                     [--cache <file.json>]";

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut args = args.peekable();
    let mut options = Options {
        workload: None,
        budget: None,
        jobs: 0,
        cache_path: None,
        model_path: None,
        json_path: None,
        chrome_trace: None,
        shard: None,
        emit_shard: None,
        merge: Vec::new(),
        candidates: None,
        top: 6,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workload" => {
                options.workload = Some(
                    args.next()
                        .ok_or_else(|| missing("--workload needs a space name"))?,
                );
            }
            "--candidates" => {
                options.candidates = Some(
                    args.next()
                        .ok_or_else(|| missing("--candidates needs a report file"))?,
                );
            }
            "--top" => {
                let n = args.next().ok_or_else(|| missing("--top needs a number"))?;
                options.top = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad candidate count `{n}`")))?;
                if options.top == 0 {
                    return Err(EmxError::usage("--top must be at least 1".to_owned()));
                }
            }
            "--budget" => {
                let b = args
                    .next()
                    .ok_or_else(|| missing("--budget needs a number"))?;
                let b: f64 = b
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad budget `{b}`")))?;
                if !b.is_finite() || b < 0.0 {
                    return Err(EmxError::usage(format!(
                        "budget must be finite and non-negative, got {b}"
                    )));
                }
                options.budget = Some(b);
            }
            "--jobs" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--jobs needs a number"))?;
                options.jobs = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad job count `{n}`")))?;
            }
            "--cache" => {
                options.cache_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--cache needs a file path"))?,
                );
            }
            "--model" => {
                options.model_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--model needs a file path"))?,
                );
            }
            "--json" => {
                options.json_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--json needs a file path"))?,
                );
            }
            "--chrome-trace" => {
                options.chrome_trace = Some(
                    args.next()
                        .ok_or_else(|| missing("--chrome-trace needs a file path"))?,
                );
            }
            "--shard" => {
                let s = args.next().ok_or_else(|| missing("--shard needs i/N"))?;
                options.shard = Some(ShardSpec::parse(&s).map_err(|_| {
                    EmxError::usage(format!("bad shard `{s}`: expected i/N with 1 <= i <= N"))
                })?);
            }
            "--emit-shard" => {
                options.emit_shard = Some(
                    args.next()
                        .ok_or_else(|| missing("--emit-shard needs a file path"))?,
                );
            }
            "--merge" => {
                // Greedy: every following non-flag argument is a shard
                // report file.
                while let Some(next) = args.peek() {
                    if next.starts_with("--") {
                        break;
                    }
                    options.merge.push(args.next().unwrap_or_default());
                }
                if options.merge.is_empty() {
                    return Err(missing("--merge needs at least one shard report file"));
                }
            }
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other => return Err(EmxError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    if !options.merge.is_empty()
        && (options.shard.is_some()
            || options.emit_shard.is_some()
            || options.model_path.is_some()
            || options.budget.is_some()
            || options.candidates.is_some())
    {
        return Err(EmxError::usage(format!(
            "--merge cannot be combined with --shard, --emit-shard, --model, --budget or \
             --candidates\n{USAGE}"
        )));
    }
    if options.candidates.is_some() && options.workload.is_some() {
        return Err(EmxError::usage(format!(
            "--candidates names its own workload; drop --workload\n{USAGE}"
        )));
    }
    Ok(options)
}

/// Merge mode: recombine shard reports into the single-process report
/// and fold their cache deltas into one warm cache. No model, no
/// simulation — the shards already carry priced rows.
fn run_merge(options: &Options) -> Result<(), EmxError> {
    let mut reports = Vec::new();
    for path in &options.merge {
        let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
        reports.push(dse::ShardReport::parse(&text, path)?);
    }
    let outcome = dse::merge(reports)?;
    println!(
        "merged {} shard(s): {} candidates, {} failed; {} extraction(s) evaluated, {} reused",
        outcome.shards,
        outcome.inputs.candidates.len(),
        outcome.inputs.failed.len(),
        outcome.evaluated,
        outcome.reused,
    );

    if let Some(path) = &options.cache_path {
        let (mut cache, recovery) = EstimationCache::load_or_recover(path)?;
        if let Some(recovery) = recovery {
            eprintln!("emx-dse: warning: cache recovered: {recovery}");
        }
        cache.absorb(outcome.cache_delta);
        cache.save(path)?;
        println!("cache written to {path} ({} entries)", cache.len());
    }

    if let Some(path) = &options.json_path {
        let mut text = dse::report::render(&outcome.inputs).to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("report written to {path}");
    }
    Ok(())
}

fn run(options: &Options) -> Result<(), EmxError> {
    if !options.merge.is_empty() {
        return run_merge(options);
    }
    let space = match &options.candidates {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
            let report = emx::discover::report::Report::parse(&text)
                .map_err(|e| EmxError::parse("discover.report", e).context(path))?;
            emx::discover::bridge::candidate_space(&report, options.top)
                .map_err(|e| EmxError::parse("discover.candidates", e).context(path))?
        }
        None => {
            let name = options.workload.as_deref().unwrap_or("reed-solomon");
            CandidateSpace::by_name(name).ok_or_else(|| {
                EmxError::usage(format!(
                    "unknown workload `{name}` (available: {})",
                    CandidateSpace::names().join(", ")
                ))
            })?
        }
    };

    let mut obs = Collector::new();

    let model = match &options.model_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
            emx::core::EnergyMacroModel::from_text(&text)
                .map_err(|e| EmxError::from(e).context(path))?
        }
        None => {
            println!("no --model given: characterizing the base processor once…");
            let span = obs.begin("dse.characterize");
            let workloads = suite::full_training_suite();
            let cases = suite::training_cases(&workloads);
            let result = Characterizer::new(ProcConfig::default())
                .characterize(&cases)
                .map_err(|e| EmxError::from(e).context("characterization failed"))?;
            obs.end(span);
            result.model
        }
    };

    // A damaged cache file must never abort a search: quarantine it, keep
    // whatever entries survived, and run (at worst) cold.
    let mut cache = match &options.cache_path {
        Some(path) => {
            let (cache, recovery) = EstimationCache::load_or_recover(path)?;
            if let Some(recovery) = recovery {
                eprintln!("emx-dse: warning: cache recovered: {recovery}");
            }
            cache
        }
        None => EstimationCache::new(),
    };

    // Snapshot the cache keys so --emit-shard can ship exactly the
    // extractions this run added.
    let baseline = options.emit_shard.as_ref().map(|_| cache.key_set());
    let shard = options.shard.unwrap_or(dse::shard::FULL);

    let out = dse::explore_shard_with(
        &model,
        &space,
        options.budget,
        &ProcConfig::default(),
        options.jobs,
        &mut cache,
        &mut obs,
        shard,
    )
    .map_err(|e| EmxError::from(e).context("exploration failed"))?;

    println!(
        "space `{}`: {} subsets enumerated, {} over budget, {} dominated, {} evaluated",
        out.space_name,
        out.enumeration.enumerated,
        out.enumeration.over_budget,
        out.enumeration.pruned,
        out.points.len(),
    );
    if !shard.is_full() {
        println!(
            "shard {shard}: {} of {} surviving candidate(s), partition {:016x}",
            out.enumeration.candidates.len(),
            out.survivors_total,
            out.partition_fingerprint,
        );
    }
    println!(
        "incremental: {} extraction(s) evaluated, {} reused from cache ({} entries)",
        out.evaluated,
        out.reused,
        cache.len(),
    );
    println!(
        "\n{:<16} {:<24} {:>10} {:>12} {:>12} {:>8}",
        "candidate", "workload", "area", "energy", "cycles", "pareto"
    );
    for (i, (c, p)) in out
        .enumeration
        .candidates
        .iter()
        .zip(&out.points)
        .enumerate()
    {
        println!(
            "{:<16} {:<24} {:>10.1} {:>12} {:>12} {:>8}",
            c.name,
            c.workload.name(),
            c.area,
            p.energy.to_string(),
            p.cycles,
            if out.pareto.contains(&i) { "*" } else { "" }
        );
    }
    if !out.failed.is_empty() {
        eprintln!(
            "emx-dse: warning: {} candidate(s) failed to evaluate (search completed over survivors):",
            out.failed.len()
        );
        for f in &out.failed {
            eprintln!("  {}: {} [{}]", f.name, f.error, f.error.code());
        }
    }
    if let Some(i) = out.best_energy {
        println!("\nlowest energy: {}", out.points[i].name);
    }
    if let Some(i) = out.best_edp {
        println!("lowest energy-delay product: {}", out.points[i].name);
    }

    if let Some(path) = &options.cache_path {
        cache.save(path)?;
        println!("cache written to {path}");
    }

    let options_table: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();

    if let Some(path) = &options.emit_shard {
        let delta = match &baseline {
            Some(keys) => cache.delta_since(keys),
            None => EstimationCache::new(),
        };
        let report = dse::ShardReport::from_exploration(&out, &options_table, delta);
        let mut text = report.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("shard report written to {path}");
    }

    if let Some(path) = &options.json_path {
        let mut text = dse::report::to_json(&out, &options_table).to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("report written to {path}");
    }

    if let Some(path) = &options.chrome_trace {
        let mut text = ChromeTraceWriter::new("emx-dse").to_string(&obs);
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("Chrome trace written to {path} (load at ui.perfetto.dev)");
    }
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data, 3 = internal error or fatal worker failure.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-dse: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_defaults() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.workload, None);
        assert_eq!(o.candidates, None);
        assert_eq!(o.top, 6);
        assert_eq!(o.budget, None);
        assert_eq!(o.jobs, 0);
        assert!(o.cache_path.is_none());
        assert!(o.model_path.is_none());
        assert!(o.json_path.is_none());
        assert!(o.chrome_trace.is_none());
        assert!(o.shard.is_none());
        assert!(o.emit_shard.is_none());
        assert!(o.merge.is_empty());
    }

    #[test]
    fn parses_shard_and_merge_flags() {
        let o = opts(&["--shard", "2/3", "--emit-shard", "s2.json"]).unwrap();
        let shard = o.shard.unwrap();
        assert_eq!((shard.index(), shard.count()), (2, 3));
        assert_eq!(o.emit_shard.as_deref(), Some("s2.json"));

        // --merge greedily takes every following non-flag argument.
        let o = opts(&["--merge", "a.json", "b.json", "--json", "out.json"]).unwrap();
        assert_eq!(o.merge, ["a.json", "b.json"]);
        assert_eq!(o.json_path.as_deref(), Some("out.json"));
    }

    #[test]
    fn rejects_bad_shards_and_merge_combinations() {
        for args in [
            &["--shard", "3/2"][..],
            &["--shard", "0/0"],
            &["--shard", "1"],
            &["--shard", "a/b"],
            &["--shard"],
            &["--merge"],
            &["--merge", "--json", "r.json"],
            &["--merge", "a.json", "--shard", "1/2"],
            &["--merge", "a.json", "--emit-shard", "s.json"],
            &["--merge", "a.json", "--model", "m.txt"],
            &["--merge", "a.json", "--budget", "800"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "--workload",
            "reed-solomon",
            "--budget",
            "800.5",
            "--jobs",
            "4",
            "--cache",
            "c.json",
            "--model",
            "m.txt",
            "--json",
            "r.json",
            "--chrome-trace",
            "t.json",
        ])
        .unwrap();
        assert_eq!(o.budget, Some(800.5));
        assert_eq!(o.jobs, 4);
        assert_eq!(o.cache_path.as_deref(), Some("c.json"));
        assert_eq!(o.model_path.as_deref(), Some("m.txt"));
        assert_eq!(o.json_path.as_deref(), Some("r.json"));
        assert_eq!(o.chrome_trace.as_deref(), Some("t.json"));
    }

    #[test]
    fn parses_candidates_flags() {
        let o = opts(&["--candidates", "d.json", "--top", "4"]).unwrap();
        assert_eq!(o.candidates.as_deref(), Some("d.json"));
        assert_eq!(o.top, 4);
    }

    #[test]
    fn rejects_bad_candidates_combinations() {
        for args in [
            &["--candidates"][..],
            &["--top"],
            &["--top", "0"],
            &["--top", "lots"],
            &["--candidates", "d.json", "--workload", "reed-solomon"],
            &["--merge", "a.json", "--candidates", "d.json"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &["--budget"][..],
            &["--budget", "-1"],
            &["--budget", "nan"],
            &["--jobs", "many"],
            &["--bogus"],
            &["stray"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
