//! `emx-validate`: validate the energy macro-model — cross-validation
//! over the training suite, differential fuzzing against the RTL-level
//! reference, and DSE cache-consistency checks, aggregated into a
//! versioned `emx.validate-report/1` document with a golden-report
//! accuracy gate for CI.
//!
//! ```sh
//! emx-validate                                     # LOO cross-validation + fuzz + cache check
//! emx-validate --folds 5                           # 5-fold instead of leave-one-out
//! emx-validate --fuzz 500 --seed 42                # bigger campaign, explicit seed
//! emx-validate --json report.json                  # write the report document
//! emx-validate --check tests/golden/validate-report.json
//! emx-validate --check golden.json --epsilon 1.0   # looser gate
//! emx-validate --coverage                          # + suite-conditioning gate
//! emx-validate --coverage-json coverage.json       # write emx.coverage-report/1
//! emx-validate --chrome-trace t.json               # per-fold trace lanes
//! ```
//!
//! The report is a pure function of the flags: no timings, so two runs
//! with the same seed produce byte-identical documents (CI relies on
//! this). `--check` exits 1 when accuracy regressed beyond the epsilon
//! against the golden report.

use std::process::ExitCode;

use emx::core::{Characterizer, EmxError, EnergyMacroModel, ErrorKind};
use emx::coverage::{self, Thresholds};
use emx::obs::{ChromeTraceWriter, Collector};
use emx::regress::{FitMethod, FitOptions};
use emx::sim::ProcConfig;
use emx::validate::{self, FoldScheme, FuzzConfig};
use emx::workloads::suite;

struct Options {
    scheme: FoldScheme,
    fuzz_cases: usize,
    seed: u64,
    tolerance: f64,
    jobs: usize,
    model_path: Option<String>,
    json_path: Option<String>,
    check_path: Option<String>,
    epsilon: f64,
    chrome_trace: Option<String>,
    skip_cache_check: bool,
    coverage: bool,
    coverage_json: Option<String>,
}

const USAGE: &str = "usage: emx-validate [--folds <k|loo>] [--fuzz <n>] [--seed <u64>] \
                     [--tolerance <percent>] [--jobs <n>] [--model <model.txt>] \
                     [--json <out.json>] [--check <golden.json>] [--epsilon <pp>] \
                     [--coverage] [--coverage-json <out.json>] \
                     [--chrome-trace <out.json>] [--skip-cache-check]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let defaults = FuzzConfig::default();
    let mut options = Options {
        scheme: FoldScheme::LeaveOneOut,
        fuzz_cases: defaults.cases,
        seed: defaults.seed,
        tolerance: defaults.tolerance_percent,
        jobs: 0,
        model_path: None,
        json_path: None,
        check_path: None,
        epsilon: 0.5,
        chrome_trace: None,
        skip_cache_check: false,
        coverage: false,
        coverage_json: None,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--folds" => {
                let v = args
                    .next()
                    .ok_or_else(|| missing("--folds needs `loo` or a fold count"))?;
                options.scheme = if v == "loo" {
                    FoldScheme::LeaveOneOut
                } else {
                    let k: usize = v
                        .parse()
                        .map_err(|_| EmxError::usage(format!("bad fold count `{v}`")))?;
                    if k < 2 {
                        return Err(EmxError::usage(format!(
                            "fold count must be at least 2, got {k}"
                        )));
                    }
                    FoldScheme::KFold(k)
                };
            }
            "--fuzz" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--fuzz needs a case count (0 disables)"))?;
                options.fuzz_cases = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad fuzz case count `{n}`")))?;
            }
            "--seed" => {
                let s = args
                    .next()
                    .ok_or_else(|| missing("--seed needs a number"))?;
                options.seed = s
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad seed `{s}`")))?;
            }
            "--tolerance" => {
                let t = args
                    .next()
                    .ok_or_else(|| missing("--tolerance needs a percentage"))?;
                let t: f64 = t
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad tolerance `{t}`")))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(EmxError::usage(format!(
                        "tolerance must be finite and positive, got {t}"
                    )));
                }
                options.tolerance = t;
            }
            "--jobs" => {
                let n = args
                    .next()
                    .ok_or_else(|| missing("--jobs needs a number"))?;
                options.jobs = n
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad job count `{n}`")))?;
            }
            "--model" => {
                options.model_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--model needs a file path"))?,
                );
            }
            "--json" => {
                options.json_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--json needs a file path"))?,
                );
            }
            "--check" => {
                options.check_path = Some(
                    args.next()
                        .ok_or_else(|| missing("--check needs a golden report path"))?,
                );
            }
            "--epsilon" => {
                let e = args
                    .next()
                    .ok_or_else(|| missing("--epsilon needs a number"))?;
                let e: f64 = e
                    .parse()
                    .map_err(|_| EmxError::usage(format!("bad epsilon `{e}`")))?;
                if !e.is_finite() || e < 0.0 {
                    return Err(EmxError::usage(format!(
                        "epsilon must be finite and non-negative, got {e}"
                    )));
                }
                options.epsilon = e;
            }
            "--chrome-trace" => {
                options.chrome_trace = Some(
                    args.next()
                        .ok_or_else(|| missing("--chrome-trace needs a file path"))?,
                );
            }
            "--skip-cache-check" => options.skip_cache_check = true,
            "--coverage" => options.coverage = true,
            "--coverage-json" => {
                // Writing the report implies running the analysis.
                options.coverage = true;
                options.coverage_json = Some(
                    args.next()
                        .ok_or_else(|| missing("--coverage-json needs a file path"))?,
                );
            }
            "--help" | "-h" => return Err(EmxError::usage(USAGE)),
            other => return Err(EmxError::usage(format!("unexpected argument `{other}`"))),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), EmxError> {
    // Read the golden first: a missing or malformed golden must fail
    // before we spend minutes simulating.
    let golden = match &options.check_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
            Some(
                validate::parse(&text)
                    .map_err(|e| EmxError::parse("validate.golden", e).context(path))?,
            )
        }
        None => None,
    };

    let mut obs = Collector::new();

    // Steps 1–7 once: the per-case design-matrix rows and reference
    // energies power both the per-fold refits and the full fit.
    println!("simulating the training suite ({} runs)…", {
        suite::full_training_suite().len()
    });
    let span = obs.begin("validate.dataset");
    let workloads = suite::full_training_suite();
    let cases = suite::training_cases(&workloads);
    let characterizer = Characterizer::new(ProcConfig::default());
    let dataset = characterizer
        .build_dataset(&cases)
        .map_err(|e| EmxError::from(e).context("training-suite simulation failed"))?;
    obs.end(span);

    // Stage 0: suite-conditioning gate (--coverage). Runs on the same
    // dataset the folds refit, so what it certifies is exactly what the
    // cross-validation exercises.
    let coverage = if options.coverage {
        let analysis = coverage::analyze(&dataset, &Thresholds::default()).map_err(|e| {
            EmxError::new(
                ErrorKind::Model,
                "validate.coverage",
                format!("coverage analysis failed: {e}"),
            )
        })?;
        println!(
            "\nsuite coverage: {} cases, condition number {:.1} (max {:.1}), {}",
            analysis.cases,
            analysis.condition_number,
            analysis.thresholds.max_condition_number,
            if analysis.passes() {
                "no gaps".to_owned()
            } else {
                format!("{} gap(s)", analysis.failures().len())
            }
        );
        for failure in analysis.failures() {
            eprintln!("emx-validate: coverage gap: {failure}");
        }
        if let Some(path) = &options.coverage_json {
            let mut text = coverage::report::to_json(&analysis).to_string();
            text.push('\n');
            std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
            println!("coverage report written to {path}");
        }
        Some(analysis)
    } else {
        None
    };

    let fit_options = FitOptions {
        method: FitMethod::Qr,
        ridge: 0.0,
    };

    // Stage 1: cross-validation.
    let xval =
        validate::cross_validate(&dataset, options.scheme, fit_options, &mut obs).map_err(|e| {
            EmxError::new(
                ErrorKind::Model,
                "validate.regression",
                format!("cross-validation failed: {e}"),
            )
        })?;
    println!(
        "\ncross-validation ({}, {} folds, {} ridge fallback(s)):",
        xval.scheme, xval.folds, xval.ridge_folds
    );
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>9}",
        "group", "cases", "mean |%|", "max |%|", "R²"
    );
    for g in &xval.groups {
        println!(
            "{:<10} {:>6} {:>10.3} {:>10.3} {:>9.5}",
            g.name, g.cases, g.mean_abs_percent, g.max_abs_percent, g.r_squared
        );
    }

    // The model the remaining stages exercise: loaded from disk, or fitted
    // on the full dataset (no extra simulation).
    let model = match &options.model_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
            EnergyMacroModel::from_text(&text).map_err(|e| EmxError::from(e).context(path))?
        }
        None => {
            let fit = dataset.fit(fit_options).map_err(|e| {
                EmxError::new(
                    ErrorKind::Model,
                    "validate.regression",
                    format!("full fit failed: {e}"),
                )
            })?;
            EnergyMacroModel::new(*characterizer.spec(), fit.coefficients().to_vec())
        }
    };

    // Stage 2: differential fuzzing.
    let fuzz = if options.fuzz_cases > 0 {
        let config = FuzzConfig {
            seed: options.seed,
            cases: options.fuzz_cases,
            tolerance_percent: options.tolerance,
            ..FuzzConfig::default()
        };
        let outcome = validate::run_fuzz(&model, &config, &mut obs);
        println!(
            "\nfuzz: {} cases (seed {}), max |error| {:.3}%, mean |error| {:.3}%, tolerance {}%",
            outcome.cases,
            options.seed,
            outcome.max_abs_percent,
            outcome.mean_abs_percent,
            outcome.tolerance_percent
        );
        for v in &outcome.violations {
            eprintln!(
                "emx-validate: tolerance violation (case {}):\n{}",
                v.case_index, v.report
            );
        }
        Some(outcome)
    } else {
        println!("\nfuzz: skipped (--fuzz 0)");
        None
    };

    // Stage 3: DSE cache consistency.
    let cache = if options.skip_cache_check {
        println!("cache consistency: skipped (--skip-cache-check)");
        None
    } else {
        let c = validate::check_cache_consistency(&model, options.jobs, &mut obs);
        println!(
            "cache consistency: {} candidates, {}",
            c.candidates,
            if c.byte_identical {
                "byte-identical across cold/round-tripped/warm"
            } else {
                "MISMATCH"
            }
        );
        for m in &c.mismatches {
            eprintln!("emx-validate: cache mismatch: {m}");
        }
        Some(c)
    };

    let summary = validate::summarize(
        &xval,
        fuzz.as_ref().map(|f| (f, options.seed)),
        cache.as_ref(),
    );

    if let Some(path) = &options.json_path {
        let mut text = validate::to_json(&summary, Some(&xval)).to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("report written to {path}");
    }

    if let Some(path) = &options.chrome_trace {
        let mut text = ChromeTraceWriter::new("emx-validate").to_string(&obs);
        text.push('\n');
        std::fs::write(path, text).map_err(|e| EmxError::io(path, &e))?;
        println!("Chrome trace written to {path} (load at ui.perfetto.dev)");
    }

    // Hard failures that gate regardless of --check: a coverage gap, a
    // fuzz violation or a cache mismatch means the suite, the model or
    // the cache is broken *now*.
    if let Some(c) = &coverage {
        if !c.passes() {
            return Err(EmxError::new(
                ErrorKind::Model,
                "validate.coverage",
                format!(
                    "training suite is ill-conditioned: {} gap(s) against the default \
                     thresholds",
                    c.failures().len()
                ),
            ));
        }
    }
    if let Some(f) = &fuzz {
        if !f.violations.is_empty() {
            return Err(EmxError::new(
                ErrorKind::Model,
                "validate.fuzz",
                format!(
                    "{} of {} fuzz case(s) exceeded the {}% tolerance",
                    f.violations.len(),
                    f.cases,
                    f.tolerance_percent
                ),
            ));
        }
    }
    if let Some(c) = &cache {
        if !c.byte_identical {
            return Err(EmxError::new(
                ErrorKind::Cache,
                "validate.cache",
                format!("{} cache mismatch(es)", c.mismatches.len()),
            ));
        }
    }

    if let Some(golden) = &golden {
        let regressions = validate::compare(&summary, golden, options.epsilon);
        if regressions.is_empty() {
            println!(
                "golden check passed (epsilon {} pp, {})",
                options.epsilon,
                options.check_path.as_deref().unwrap_or_default()
            );
        } else {
            for r in &regressions {
                eprintln!("emx-validate: accuracy regression: {r}");
            }
            return Err(EmxError::new(
                ErrorKind::Model,
                "validate.regression",
                format!(
                    "{} accuracy regression(s) vs golden (epsilon {} pp)",
                    regressions.len(),
                    options.epsilon
                ),
            ));
        }
    }
    Ok(())
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data (including a failed gate), 3 = internal error.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("emx-validate: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_defaults() {
        let o = opts(&[]).unwrap();
        assert_eq!(o.scheme, FoldScheme::LeaveOneOut);
        assert_eq!(o.fuzz_cases, FuzzConfig::default().cases);
        assert_eq!(o.seed, FuzzConfig::default().seed);
        assert_eq!(o.epsilon, 0.5);
        assert!(o.check_path.is_none());
        assert!(!o.skip_cache_check);
        assert!(!o.coverage);
        assert!(o.coverage_json.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let o = opts(&[
            "--folds",
            "5",
            "--fuzz",
            "300",
            "--seed",
            "42",
            "--tolerance",
            "12.5",
            "--jobs",
            "4",
            "--model",
            "m.txt",
            "--json",
            "r.json",
            "--check",
            "g.json",
            "--epsilon",
            "1.25",
            "--chrome-trace",
            "t.json",
            "--skip-cache-check",
            "--coverage-json",
            "c.json",
        ])
        .unwrap();
        assert_eq!(o.scheme, FoldScheme::KFold(5));
        assert_eq!(o.fuzz_cases, 300);
        assert_eq!(o.seed, 42);
        assert_eq!(o.tolerance, 12.5);
        assert_eq!(o.jobs, 4);
        assert_eq!(o.model_path.as_deref(), Some("m.txt"));
        assert_eq!(o.json_path.as_deref(), Some("r.json"));
        assert_eq!(o.check_path.as_deref(), Some("g.json"));
        assert_eq!(o.epsilon, 1.25);
        assert_eq!(o.chrome_trace.as_deref(), Some("t.json"));
        assert!(o.skip_cache_check);
        assert!(o.coverage, "--coverage-json implies --coverage");
        assert_eq!(o.coverage_json.as_deref(), Some("c.json"));
    }

    #[test]
    fn coverage_flag_alone_enables_the_gate() {
        let o = opts(&["--coverage"]).unwrap();
        assert!(o.coverage);
        assert!(o.coverage_json.is_none());
    }

    #[test]
    fn folds_loo_is_leave_one_out() {
        assert_eq!(
            opts(&["--folds", "loo"]).unwrap().scheme,
            FoldScheme::LeaveOneOut
        );
    }

    #[test]
    fn rejects_bad_input() {
        for args in [
            &["--folds"][..],
            &["--folds", "1"],
            &["--folds", "many"],
            &["--fuzz", "-3"],
            &["--seed", "x"],
            &["--tolerance", "0"],
            &["--tolerance", "nan"],
            &["--epsilon", "-1"],
            &["--jobs", "many"],
            &["--bogus"],
            &["stray"],
        ] {
            match opts(args) {
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
                Ok(_) => panic!("{args:?} must be rejected"),
            }
        }
    }
}
