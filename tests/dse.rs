//! Integration tests for the design-space exploration engine: the
//! acceptance properties the `emx-dse` CLI is sold on — a report that is
//! a pure function of the search inputs (identical across worker counts),
//! a cache that makes warm reruns free without changing results, and a
//! shard/merge path whose recombined report is byte-identical to the
//! single-process one while re-exploration over the merged cache prices
//! everything without a single new ISS pass.
//!
//! Characterization is expensive, so the fitted model is shared through a
//! once-cell like `end_to_end.rs`.

use std::sync::OnceLock;

use emx::core::{Characterization, Characterizer, EnergyMacroModel};
use emx::dse::fault::CountingEstimator;
use emx::dse::{self, CandidateSpace, DesignOption, EstimationCache, ShardSpec};
use emx::obs::Collector;
use emx::sim::ProcConfig;
use emx::workloads::{exts, suite, Workload};

fn characterization() -> &'static Characterization {
    static MODEL: OnceLock<Characterization> = OnceLock::new();
    MODEL.get_or_init(|| {
        let workloads = suite::full_training_suite();
        let cases = suite::training_cases(&workloads);
        Characterizer::new(ProcConfig::default())
            .characterize(&cases)
            .expect("training suite characterizes")
    })
}

fn report_text(jobs: usize, cache: &mut EstimationCache, obs: &mut Collector) -> String {
    let space = CandidateSpace::reed_solomon();
    let out = dse::explore(
        &characterization().model,
        &space,
        None,
        &ProcConfig::default(),
        jobs,
        cache,
        obs,
    )
    .expect("exploration succeeds");
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    dse::report::to_json(&out, &options).to_string()
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let serial = report_text(1, &mut EstimationCache::new(), &mut Collector::disabled());
    for jobs in [2, 4] {
        let parallel = report_text(
            jobs,
            &mut EstimationCache::new(),
            &mut Collector::disabled(),
        );
        assert_eq!(serial, parallel, "--jobs {jobs} changed the report");
    }
}

#[test]
fn warm_cache_rerun_hits_and_matches() {
    let mut cache = EstimationCache::new();
    let mut obs = Collector::new();
    let cold = report_text(2, &mut cache, &mut obs);
    assert_eq!(obs.counter("dse.cache.hits"), 0.0);
    let misses = obs.counter("dse.cache.misses");
    assert!(misses > 0.0);
    assert_eq!(cache.len() as f64, misses);

    // Round-trip through the JSON persistence, as `--cache` does.
    let mut warm_cache =
        EstimationCache::from_json_text(&cache.to_json().to_string()).expect("cache round-trips");
    let warm = report_text(2, &mut warm_cache, &mut obs);
    assert!(
        obs.counter("dse.cache.hits") > 0.0,
        "warm rerun must hit the cache"
    );
    assert_eq!(obs.counter("dse.cache.misses"), misses, "no new misses");
    assert_eq!(cold, warm, "cache warmth changed the report");
}

#[test]
fn report_schema_is_stable_and_complete() {
    let text = report_text(1, &mut EstimationCache::new(), &mut Collector::disabled());
    let doc = emx::obs::json::Value::parse(&text).expect("report parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(dse::report::SCHEMA)
    );
    assert_eq!(
        doc.get("workload").and_then(|v| v.as_str()),
        Some("reed-solomon")
    );
    let candidates = doc
        .get("candidates")
        .and_then(|v| v.as_array())
        .expect("candidates array");
    assert_eq!(candidates.len(), 4, "four paper configurations survive");
    for c in candidates {
        assert!(c.get("name").and_then(|v| v.as_str()).is_some());
        assert!(c.get("energy_pj").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(c.get("cycles").and_then(|v| v.as_u64()).unwrap() > 0);
    }
    let pareto = doc
        .get("pareto")
        .and_then(|v| v.as_array())
        .expect("pareto array");
    assert!(!pareto.is_empty(), "the front is never empty");
    let failed = doc
        .get("failed_candidates")
        .and_then(|v| v.as_array())
        .expect("failed_candidates array");
    assert!(failed.is_empty(), "a healthy run reports no failures");
    // The base candidate exists and every delta is measured against it:
    // its own deltas are exactly zero.
    let base = candidates
        .iter()
        .find(|c| c.get("name").and_then(|v| v.as_str()) == Some("base"))
        .expect("base candidate");
    assert_eq!(
        base.get("delta_energy_pct").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    assert_eq!(
        base.get("delta_cycles_pct").and_then(|v| v.as_f64()),
        Some(0.0)
    );
}

#[test]
fn budget_prunes_but_preserves_the_base() {
    let mut obs = Collector::disabled();
    let space = CandidateSpace::reed_solomon();
    let out = dse::explore(
        &characterization().model,
        &space,
        Some(0.0),
        &ProcConfig::default(),
        1,
        &mut EstimationCache::new(),
        &mut obs,
    )
    .expect("exploration succeeds");
    // A zero budget excludes all hardware; only the base ISA survives.
    assert_eq!(out.points.len(), 1);
    assert_eq!(out.points[0].name, "base");
    assert_eq!(out.base, Some(0));
    assert!(out.enumeration.over_budget > 0);
}

// ---------------------------------------------------------------------------
// Sharded exploration and the merge contract.
// ---------------------------------------------------------------------------

fn options_table(space: &CandidateSpace) -> Vec<(String, f64)> {
    space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect()
}

/// Runs shard `i/k` of the Reed-Solomon search in a process-equivalent
/// way — its own cache seeded from `warm` (or empty) — and returns the
/// serialized `emx.dse-shard-report/1` text plus the exploration.
fn run_shard(
    index: u32,
    count: u32,
    jobs: usize,
    warm: Option<&str>,
) -> (String, dse::Exploration) {
    let space = CandidateSpace::reed_solomon();
    let mut cache = match warm {
        Some(text) => EstimationCache::from_json_text(text).expect("warm cache parses"),
        None => EstimationCache::new(),
    };
    let baseline = cache.key_set();
    let out = dse::explore_shard_with(
        &characterization().model,
        &space,
        None,
        &ProcConfig::default(),
        jobs,
        &mut cache,
        &mut Collector::disabled(),
        ShardSpec::new(index, count).expect("valid shard"),
    )
    .expect("shard exploration succeeds");
    let report = dse::ShardReport::from_exploration(
        &out,
        &options_table(&space),
        cache.delta_since(&baseline),
    );
    (report.to_json().to_string(), out)
}

#[test]
fn sharded_merge_is_byte_identical_to_single_process() {
    let single = report_text(2, &mut EstimationCache::new(), &mut Collector::disabled());
    for k in [2u32, 3] {
        for jobs in [1usize, 2] {
            // Cold: every shard starts from an empty cache, round-trips
            // its report through the serialized artifact exactly as
            // `--emit-shard` + `--merge` do.
            let texts: Vec<String> = (1..=k).map(|i| run_shard(i, k, jobs, None).0).collect();
            let reports: Vec<dse::ShardReport> = texts
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    dse::ShardReport::parse(t, &format!("shard-{}", i + 1))
                        .expect("shard report round-trips")
                })
                .collect();
            let outcome = dse::merge(reports).expect("complete partition merges");
            assert_eq!(outcome.shards, k);
            assert_eq!(outcome.reused, 0, "cold shards have nothing to reuse");
            assert_eq!(outcome.evaluated, 4, "all four survivors simulated");
            let merged = dse::report::render(&outcome.inputs).to_string();
            assert_eq!(single, merged, "k={k} jobs={jobs}: cold merge diverged");

            // Warm: rerun every shard over the merged cache delta — no
            // shard may simulate anything, and the merge must still be
            // byte-identical.
            let warm_text = outcome.cache_delta.to_json().to_string();
            let mut warm_reports = Vec::new();
            for i in 1..=k {
                let (text, out) = run_shard(i, k, jobs, Some(&warm_text));
                assert_eq!(out.evaluated, 0, "warm shard {i}/{k} must not simulate");
                assert_eq!(out.reused, out.points.len(), "warm shard {i}/{k} reuse");
                warm_reports.push(dse::ShardReport::parse(&text, "warm").expect("round-trips"));
            }
            let outcome = dse::merge(warm_reports).expect("warm partition merges");
            assert_eq!(outcome.evaluated, 0);
            assert_eq!(outcome.reused, 4);
            let warm_merged = dse::report::render(&outcome.inputs).to_string();
            assert_eq!(
                single, warm_merged,
                "k={k} jobs={jobs}: warm merge diverged"
            );
        }
    }
}

#[test]
fn refit_over_warm_merged_cache_reprices_without_simulating() {
    // Build the warm cache the production way: two cold shards, merged.
    let reports: Vec<dse::ShardReport> = (1..=2u32)
        .map(|i| dse::ShardReport::parse(&run_shard(i, 2, 1, None).0, "shard").expect("parses"))
        .collect();
    let outcome = dse::merge(reports).expect("partition merges");
    let warm_text = outcome.cache_delta.to_json().to_string();

    // A refit: same model spec, different coefficients. Extraction
    // semantics are untouched, so the warm cache must satisfy every
    // candidate; pricing changes, so the energies must move.
    let model = &characterization().model;
    let refit = EnergyMacroModel::new(
        *model.spec(),
        model.coefficients().iter().map(|c| c * 1.25).collect(),
    );
    let space = CandidateSpace::reed_solomon();
    let counting = CountingEstimator::new(&refit);
    let mut warm = EstimationCache::from_json_text(&warm_text).expect("merged cache parses");
    let out = dse::explore_with(
        &counting,
        &space,
        None,
        &ProcConfig::default(),
        2,
        &mut warm,
        &mut Collector::disabled(),
    )
    .expect("refit exploration succeeds");

    assert_eq!(
        counting.extractions(),
        0,
        "a refit performs zero ISS passes"
    );
    assert_eq!(counting.pricings(), 4, "every candidate is re-priced");
    assert_eq!(out.evaluated, 0);
    assert_eq!(out.reused, 4);

    // The refit genuinely changed pricing — and with it the partition
    // identity, so stale shard artifacts can never merge with new ones.
    let mut warm = EstimationCache::from_json_text(&warm_text).expect("merged cache parses");
    let orig = dse::explore(
        model,
        &space,
        None,
        &ProcConfig::default(),
        2,
        &mut warm,
        &mut Collector::disabled(),
    )
    .expect("original exploration succeeds");
    assert_ne!(out.partition_fingerprint, orig.partition_fingerprint);
    for (r, o) in out.points.iter().zip(&orig.points) {
        assert_eq!(r.cycles, o.cycles, "a refit never changes cycle counts");
        assert!(
            (r.energy.as_picojoules() - o.energy.as_picojoules()).abs() > 1e-9,
            "{}: refit left the energy unchanged",
            r.name
        );
    }
}

/// A two-option space whose resolver picks workloads from a fixed pool by
/// subset — the smallest space where editing *one* pool entry changes
/// exactly one candidate's extraction.
fn pool_space(pool: Vec<Workload>) -> CandidateSpace {
    assert_eq!(pool.len(), 4);
    let options = vec![
        DesignOption {
            name: "a".to_owned(),
            ext: exts::gf16(),
        },
        DesignOption {
            name: "b".to_owned(),
            ext: exts::gf16_mac(),
        },
    ];
    CandidateSpace::new("pool", options, move |sel| {
        let a = sel.options().iter().any(|o| o.name == "a") as usize;
        let b = sel.options().iter().any(|o| o.name == "b") as usize;
        pool[a | (b << 1)].clone()
    })
}

#[test]
fn single_extension_change_reevaluates_only_the_missing_candidate() {
    let cal = suite::calibration_programs();
    assert!(cal.len() >= 5, "pool test needs five distinct programs");
    let model = &characterization().model;
    let mut cache = EstimationCache::new();

    // v1: four subsets, four distinct workloads — all simulate cold.
    let v1 = pool_space(cal[0..4].to_vec());
    let out = dse::explore(
        model,
        &v1,
        None,
        &ProcConfig::default(),
        1,
        &mut cache,
        &mut Collector::disabled(),
    )
    .expect("v1 exploration succeeds");
    assert_eq!(out.evaluated, 4);
    assert_eq!(out.reused, 0);

    // v2: one subset resolves to a new workload; only that candidate
    // misses the warm cache.
    let mut pool = cal[0..4].to_vec();
    pool[2] = cal[4].clone();
    let v2 = pool_space(pool);
    let counting = CountingEstimator::new(model);
    let out = dse::explore_with(
        &counting,
        &v2,
        None,
        &ProcConfig::default(),
        1,
        &mut cache,
        &mut Collector::disabled(),
    )
    .expect("v2 exploration succeeds");
    assert_eq!(
        counting.extractions(),
        1,
        "only the changed candidate simulates"
    );
    assert_eq!(out.evaluated, 1);
    assert_eq!(out.reused, 3);
    assert_eq!(counting.pricings(), 4, "all four candidates still priced");
}
