//! Integration tests for the design-space exploration engine: the
//! acceptance properties the `emx-dse` CLI is sold on — a report that is
//! a pure function of the search inputs (identical across worker counts),
//! and a cache that makes warm reruns free without changing results.
//!
//! Characterization is expensive, so the fitted model is shared through a
//! once-cell like `end_to_end.rs`.

use std::sync::OnceLock;

use emx::core::{Characterization, Characterizer};
use emx::dse::{self, CandidateSpace, EstimationCache};
use emx::obs::Collector;
use emx::sim::ProcConfig;
use emx::workloads::suite;

fn characterization() -> &'static Characterization {
    static MODEL: OnceLock<Characterization> = OnceLock::new();
    MODEL.get_or_init(|| {
        let workloads = suite::full_training_suite();
        let cases = suite::training_cases(&workloads);
        Characterizer::new(ProcConfig::default())
            .characterize(&cases)
            .expect("training suite characterizes")
    })
}

fn report_text(jobs: usize, cache: &mut EstimationCache, obs: &mut Collector) -> String {
    let space = CandidateSpace::reed_solomon();
    let out = dse::explore(
        &characterization().model,
        &space,
        None,
        &ProcConfig::default(),
        jobs,
        cache,
        obs,
    )
    .expect("exploration succeeds");
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    dse::report::to_json(&out, &options).to_string()
}

#[test]
fn report_is_byte_identical_across_job_counts() {
    let serial = report_text(1, &mut EstimationCache::new(), &mut Collector::disabled());
    for jobs in [2, 4] {
        let parallel = report_text(
            jobs,
            &mut EstimationCache::new(),
            &mut Collector::disabled(),
        );
        assert_eq!(serial, parallel, "--jobs {jobs} changed the report");
    }
}

#[test]
fn warm_cache_rerun_hits_and_matches() {
    let mut cache = EstimationCache::new();
    let mut obs = Collector::new();
    let cold = report_text(2, &mut cache, &mut obs);
    assert_eq!(obs.counter("dse.cache.hits"), 0.0);
    let misses = obs.counter("dse.cache.misses");
    assert!(misses > 0.0);
    assert_eq!(cache.len() as f64, misses);

    // Round-trip through the JSON persistence, as `--cache` does.
    let mut warm_cache =
        EstimationCache::from_json_text(&cache.to_json().to_string()).expect("cache round-trips");
    let warm = report_text(2, &mut warm_cache, &mut obs);
    assert!(
        obs.counter("dse.cache.hits") > 0.0,
        "warm rerun must hit the cache"
    );
    assert_eq!(obs.counter("dse.cache.misses"), misses, "no new misses");
    assert_eq!(cold, warm, "cache warmth changed the report");
}

#[test]
fn report_schema_is_stable_and_complete() {
    let text = report_text(1, &mut EstimationCache::new(), &mut Collector::disabled());
    let doc = emx::obs::json::Value::parse(&text).expect("report parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(dse::report::SCHEMA)
    );
    assert_eq!(
        doc.get("workload").and_then(|v| v.as_str()),
        Some("reed-solomon")
    );
    let candidates = doc
        .get("candidates")
        .and_then(|v| v.as_array())
        .expect("candidates array");
    assert_eq!(candidates.len(), 4, "four paper configurations survive");
    for c in candidates {
        assert!(c.get("name").and_then(|v| v.as_str()).is_some());
        assert!(c.get("energy_pj").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(c.get("cycles").and_then(|v| v.as_u64()).unwrap() > 0);
    }
    let pareto = doc
        .get("pareto")
        .and_then(|v| v.as_array())
        .expect("pareto array");
    assert!(!pareto.is_empty(), "the front is never empty");
    let failed = doc
        .get("failed_candidates")
        .and_then(|v| v.as_array())
        .expect("failed_candidates array");
    assert!(failed.is_empty(), "a healthy run reports no failures");
    // The base candidate exists and every delta is measured against it:
    // its own deltas are exactly zero.
    let base = candidates
        .iter()
        .find(|c| c.get("name").and_then(|v| v.as_str()) == Some("base"))
        .expect("base candidate");
    assert_eq!(
        base.get("delta_energy_pct").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    assert_eq!(
        base.get("delta_cycles_pct").and_then(|v| v.as_f64()),
        Some(0.0)
    );
}

#[test]
fn budget_prunes_but_preserves_the_base() {
    let mut obs = Collector::disabled();
    let space = CandidateSpace::reed_solomon();
    let out = dse::explore(
        &characterization().model,
        &space,
        Some(0.0),
        &ProcConfig::default(),
        1,
        &mut EstimationCache::new(),
        &mut obs,
    )
    .expect("exploration succeeds");
    // A zero budget excludes all hardware; only the base ISA survives.
    assert_eq!(out.points.len(), 1);
    assert_eq!(out.points[0].name, "base");
    assert_eq!(out.base, Some(0));
    assert!(out.enumeration.over_budget > 0);
}
