//! Cross-crate integration tests for the toolchain below the energy
//! flow: assembler → extension compiler → simulator, exercised together
//! through the facade crate.

use emx::prelude::*;

/// Assembles and runs a base-ISA program to halt; returns the simulator.
fn run_base(src: &str) -> Interp<'static> {
    // Leak program/ext so the simulator can borrow them for 'static in a
    // test helper (fine for test lifetime).
    let program: &'static Program =
        Box::leak(Box::new(Assembler::new().assemble(src).expect("assembles")));
    let ext: &'static ExtensionSet = Box::leak(Box::new(ExtensionSet::empty()));
    let mut sim = Interp::new(program, ext, ProcConfig::default());
    sim.run(10_000_000).expect("halts");
    sim
}

#[test]
fn assembler_to_simulator_round_trip() {
    let sim = run_base(
        ".data\nsquares: .space 40\n.text\n\
         movi a2, 0\nloop:\nmul a3, a2, a2\nslli a4, a2, 2\nmovi a5, squares\n\
         add a4, a4, a5\ns32i a3, 0(a4)\naddi a2, a2, 1\nblti a2, 10, loop\nhalt",
    );
    let base = 0x0004_0000;
    for k in 0..10u32 {
        assert_eq!(sim.state().mem.read_u32(base + 4 * k), k * k);
    }
}

#[test]
fn extension_pipeline_end_to_end() {
    // Build an extension, register mnemonics, assemble, execute, and
    // check both the architectural result and the resource accounting.
    let mut ext = ExtensionBuilder::new("swap16");
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let lo = g.node(PrimOp::Slice { lsb: 0 }, 16, &[a]).expect("graph");
    let hi = g.node(PrimOp::Slice { lsb: 16 }, 16, &[a]).expect("graph");
    let out = g
        .node(PrimOp::Pack { lsb: 16 }, 32, &[hi, lo])
        .expect("graph");
    g.output(out);
    ext.instruction("hswap", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    let ext = ext.build().expect("compiles");

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble("movi a2, 0x12345678\nhswap a3, a2\nhalt")
        .expect("assembles");

    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    let run = sim.run(1_000).expect("halts");
    assert_eq!(sim.state().reg(Reg::new(3)), 0x5678_1234);
    assert_eq!(run.stats.custom_counts, vec![1]);
    assert!(run.stats.struct_activity[Category::LogicMux.index()] > 0.0);
    assert_eq!(
        run.stats.ci_gpr_cycles,
        u64::from(ext.by_name("hswap").expect("exists").latency())
    );
}

#[test]
fn custom_state_persists_across_instructions() {
    let mut ext = ExtensionBuilder::new("counter");
    let cnt = ext.state("cnt", 32).expect("state");

    let mut g = DfGraph::new();
    let c_in = g.input("cnt", 32);
    let one = g.constant(1, 32).expect("graph");
    let inc = g.node(PrimOp::Add, 32, &[c_in, one]).expect("graph");
    g.output(inc);
    ext.instruction("tick", g)
        .expect("inst")
        .bind_input(InputBind::State(cnt))
        .expect("bind")
        .bind_output(OutputBind::State(cnt))
        .expect("bind");

    let mut g = DfGraph::new();
    let c_in = g.input("cnt", 32);
    g.output(c_in);
    ext.instruction("rdtick", g)
        .expect("inst")
        .bind_input(InputBind::State(cnt))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    let ext = ext.build().expect("compiles");
    assert_eq!(cnt.index(), 0);
    assert_eq!(ext.states()[cnt.index()].name(), "cnt");

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble("movi a2, 5\nl:\ntick\naddi a2, a2, -1\nbnez a2, l\nrdtick a3\nhalt")
        .expect("assembles");
    let mut sim = Interp::new(&program, &ext, ProcConfig::default());
    sim.run(10_000).expect("halts");
    assert_eq!(sim.state().reg(Reg::new(3)), 5);
    assert_eq!(sim.state().ext_state()[0], 5);
}

#[test]
fn workload_suite_is_self_checking() {
    // Every workload with checks must pass them; every workload must halt
    // within its budget on the default configuration.
    let mut all = emx::workloads::suite::full_training_suite();
    all.extend(emx::workloads::apps::all());
    all.extend(emx::workloads::reed_solomon::all_configs());
    for w in &all {
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let run = sim
            .run(200_000_000)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
        assert!(run.halted);
        w.verify(sim.state()).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn every_emitted_schema_is_documented() {
    // Every versioned schema string that appears in source must have a
    // section in docs/SCHEMAS.md — the doc is the contract consumers
    // parse against, so an undocumented schema is a release bug. Only
    // `/1` strings are collected: higher versions in the tree are
    // deliberately-bogus fixtures for version-mismatch tests.
    fn scan(dir: &std::path::Path, found: &mut std::collections::BTreeSet<String>) {
        for entry in std::fs::read_dir(dir).expect("readable dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                scan(&path, found);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("readable source");
                let bytes = text.as_bytes();
                let mut at = 0;
                while let Some(pos) = text[at..].find("emx.") {
                    let start = at + pos;
                    let mut end = start + 4;
                    while end < bytes.len()
                        && (bytes[end].is_ascii_lowercase() || bytes[end] == b'-')
                    {
                        end += 1;
                    }
                    let name_end = end;
                    if end < bytes.len() && bytes[end] == b'/' {
                        end += 1;
                        while end < bytes.len() && bytes[end].is_ascii_digit() {
                            end += 1;
                        }
                    }
                    if name_end > start + 4 && end > name_end + 1 && &text[name_end..end] == "/1" {
                        found.insert(text[start..end].to_owned());
                    }
                    at = end.max(start + 4);
                }
            }
        }
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut schemas = std::collections::BTreeSet::new();
    scan(&root.join("src"), &mut schemas);
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            scan(&src, &mut schemas);
        }
    }
    assert!(
        schemas.len() >= 6,
        "schema scan broke: only found {schemas:?}"
    );

    let doc = std::fs::read_to_string(root.join("docs/SCHEMAS.md")).expect("docs/SCHEMAS.md");
    let undocumented: Vec<_> = schemas
        .iter()
        .filter(|schema| !doc.contains(schema.as_str()))
        .collect();
    assert!(
        undocumented.is_empty(),
        "schemas missing from docs/SCHEMAS.md: {undocumented:?}"
    );
}

#[test]
fn uncached_programs_pay_the_fetch_penalty() {
    let cached = run_base("movi a2, 100\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt");
    let uncached = run_base(".uncached\nmovi a2, 100\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt");
    let c = cached.stats().total_cycles;
    let u = uncached.stats().total_cycles;
    assert!(u > 3 * c, "uncached {u} vs cached {c}");
    assert_eq!(uncached.stats().icache_misses, 0);
    assert!(uncached.stats().uncached_fetches > 200);
}
