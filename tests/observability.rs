//! Integration tests for the observability CLI surface: `emx-run
//! --stats-json` must round-trip through the JSON parser with the
//! documented `emx.exec-stats/1` schema, and `--chrome-trace` must emit
//! a valid Chrome `trace_event` file (well-formed JSON, known phase
//! codes, monotone timestamps per track) that Perfetto will load.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use emx::obs::json::Value;
use emx::obs::Collector;
use emx::prelude::*;

const PROGRAM: &str = "\
movi a2, 100
movi a3, 0
l: add a3, a3, a2
addi a2, a2, -1
bnez a2, l
halt
";

/// Materializes the test program and output paths in the target tmpdir,
/// runs `emx-run` once with both JSON outputs enabled, and returns the
/// parsed stats and trace documents.
fn run_emx_run(tag: &str) -> (Value, Value) {
    let dir = std::env::temp_dir().join(format!("emx-obs-it-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let program = dir.join("loop.s");
    let stats: PathBuf = dir.join("stats.json");
    let trace: PathBuf = dir.join("trace.json");
    std::fs::write(&program, PROGRAM).expect("write program");

    let output = Command::new(env!("CARGO_BIN_EXE_emx-run"))
        .arg(&program)
        .arg("--energy")
        .arg("--stats-json")
        .arg(&stats)
        .arg("--chrome-trace")
        .arg(&trace)
        .output()
        .expect("spawn emx-run");
    assert!(
        output.status.success(),
        "emx-run failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let stats_text = std::fs::read_to_string(&stats).expect("stats file written");
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let _ = std::fs::remove_dir_all(&dir);
    (
        Value::parse(&stats_text).expect("stats output is valid JSON"),
        Value::parse(&trace_text).expect("chrome trace output is valid JSON"),
    )
}

#[test]
fn stats_json_round_trips_with_the_documented_schema() {
    let (stats, _) = run_emx_run("stats");

    assert_eq!(
        stats.get("schema").and_then(Value::as_str),
        Some("emx.exec-stats/1")
    );
    let instructions = stats
        .get("instructions")
        .and_then(Value::as_u64)
        .expect("instructions field");
    let cycles = stats
        .get("total_cycles")
        .and_then(Value::as_u64)
        .expect("total_cycles field");
    // The 100-iteration loop retires 3 instructions per trip plus setup,
    // and every retirement costs at least one cycle.
    assert!(instructions > 300, "instructions = {instructions}");
    assert!(cycles >= instructions, "cycles = {cycles}");

    // Per-class breakdown must itself sum back to the totals: the JSON
    // is a faithful projection of ExecStats, not a re-derivation.
    let classes = stats
        .get("classes")
        .and_then(Value::as_object)
        .expect("classes object");
    let class_insts: u64 = classes
        .iter()
        .filter_map(|(_, c)| c.get("count").and_then(Value::as_u64))
        .sum();
    assert_eq!(class_insts, instructions);

    for key in ["icache_misses", "dcache_misses", "interlocks", "structural"] {
        assert!(stats.get(key).is_some(), "missing field `{key}`");
    }
}

#[test]
fn chrome_trace_is_valid_trace_event_json_with_monotone_timestamps() {
    let (_, trace) = run_emx_run("trace");

    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no events");

    let mut last_ts: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    let mut depth = 0i64;
    let mut phase_names = Vec::new();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .expect("event has a phase code");
        assert!(
            matches!(ph, "M" | "B" | "E" | "i" | "C" | "X"),
            "unknown phase code `{ph}`"
        );
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let pid = event.get("pid").and_then(Value::as_u64).expect("pid");
        let tid = event.get("tid").and_then(Value::as_u64).unwrap_or(0);
        let ts = event.get("ts").and_then(Value::as_f64).expect("ts");
        let previous = last_ts.insert((pid, tid), ts);
        if let Some(previous) = previous {
            assert!(
                ts >= previous,
                "timestamps regress on track ({pid},{tid}): {previous} -> {ts}"
            );
        }
        match ph {
            "B" => {
                depth += 1;
                if let Some(name) = event.get("name").and_then(Value::as_str) {
                    phase_names.push(name.to_owned());
                }
            }
            "E" => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "E event without a matching B");
    }
    assert_eq!(depth, 0, "unbalanced B/E span events");

    // The run must record both pipeline phases the CLI wraps in spans.
    for expected in ["iss-simulate", "rtl-activity-trace"] {
        assert!(
            phase_names.iter().any(|n| n == expected),
            "span `{expected}` missing from trace (got {phase_names:?})"
        );
    }

    // Counter series from the instruction stream must be present: the
    // windowed ISS sink emits sim.* tracks, the estimator rtl.* ones.
    let counter_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        counter_names.iter().any(|n| n.starts_with("sim.")),
        "no sim.* counter series in trace (got {counter_names:?})"
    );
}

/// The phase counters must be strictly opt-in: with a disabled
/// collector, `run_profiled` takes the uninstrumented fast path —
/// identical execution statistics, an empty profile, nothing recorded,
/// and no measurable slowdown relative to a plain `run`.
#[test]
fn phase_instrumentation_is_neutral_when_disabled() {
    let program = Assembler::new().assemble(PROGRAM).expect("assembles");
    let ext = ExtensionSet::empty();
    let config = ProcConfig::default();

    let mut plain = Interp::new(&program, &ext, config.clone());
    let plain_stats = plain.run(1_000_000).expect("runs").stats;

    // Disabled collector: stats identical, profile empty, collector empty.
    let mut disabled = Collector::disabled();
    let mut sim = Interp::new(&program, &ext, config.clone());
    let (run, profile) = sim
        .run_profiled(1_000_000, &mut disabled)
        .expect("profiled run");
    assert_eq!(run.stats, plain_stats);
    assert_eq!(profile.total_ns(), 0);
    assert_eq!(profile.steps(), 0);
    assert!(disabled.events().is_empty());
    assert!(disabled.counters().is_empty());

    // Enabled collector: same stats (instrumentation must not change
    // simulation results), and the phase counters appear.
    let mut enabled = Collector::new();
    let mut sim = Interp::new(&program, &ext, config.clone());
    let (run, profile) = sim
        .run_profiled(1_000_000, &mut enabled)
        .expect("profiled run");
    assert_eq!(run.stats, plain_stats);
    assert_eq!(profile.steps(), plain_stats.inst_count);
    assert!(profile.total_ns() > 0);
    assert_eq!(
        enabled.counter("iss.phase.steps"),
        plain_stats.inst_count as f64
    );
    let per_phase: f64 = emx::sim::Phase::ALL
        .iter()
        .map(|&p| enabled.counter(&format!("iss.phase.{}_ns", p.name())))
        .sum();
    assert_eq!(per_phase, profile.total_ns() as f64);

    // No measurable slowdown: the disabled-profiling path must stay in
    // the same performance class as the plain run. Timing comparisons
    // in CI are noisy, so the bound is deliberately loose (3×) — it
    // catches "accidentally always instrumenting" (which costs ~2× on
    // this loop via six clock reads per instruction), not micro-drift.
    let reps = 50;
    let plain_ns = {
        let started = Instant::now();
        for _ in 0..reps {
            let mut sim = Interp::new(&program, &ext, config.clone());
            sim.run(1_000_000).expect("runs");
        }
        started.elapsed().as_nanos()
    };
    let disabled_ns = {
        let mut off = Collector::disabled();
        let started = Instant::now();
        for _ in 0..reps {
            let mut sim = Interp::new(&program, &ext, config.clone());
            sim.run_profiled(1_000_000, &mut off).expect("runs");
        }
        started.elapsed().as_nanos()
    };
    assert!(
        disabled_ns < plain_ns.max(1) * 3,
        "disabled profiling slowed the ISS: plain {plain_ns} ns vs disabled {disabled_ns} ns over {reps} runs"
    );
}
