//! Differential suite for the micro-op interpreter: the pre-decoded
//! fast path (`Interp::run`) must be **observationally identical** to
//! the legacy single-step interpreter (`Interp::run_legacy`) — same
//! `ExecStats` to the last counter, same architectural state, same
//! typed error at the same instruction — across every committed
//! workload and across randomized programs.
//!
//! The unit tests in `emx-sim` prove agreement on directed micro-cases
//! (interlocks, flush accounting, error paths); this suite closes the
//! gap at scale: all 63 training programs (25 kernels + 9 calibration
//! pairs + 6 width variants + 23 directed cases), the Table II
//! applications, and proptest-generated loops with random ALU/memory
//! bodies under both generous and starved cycle budgets.

use emx::isa::Reg;
use emx::sim::{ExecStats, Interp, ProcConfig, RunResult, SimError};
use emx::workloads::{suite, Workload};

const BUDGET: u64 = u32::MAX as u64;

/// Runs one workload on both engines and asserts byte-identical
/// observable behaviour: the run result (or error), the statistics, and
/// the architectural state.
fn assert_engines_agree(w: &Workload, budget: u64) {
    let config = ProcConfig::default();
    let mut fast = Interp::new(w.program(), w.ext(), config.clone());
    let fast_run: Result<RunResult, SimError> = fast.run(budget);
    let mut slow = Interp::new(w.program(), w.ext(), config);
    let slow_run = slow.run_legacy(budget);

    match (&fast_run, &slow_run) {
        (Ok(f), Ok(s)) => {
            assert_eq!(f.stats, s.stats, "{}: stats diverge", w.name());
            assert_eq!(f.halted, s.halted, "{}: halt status diverges", w.name());
        }
        (Err(f), Err(s)) => assert_eq!(f, s, "{}: errors diverge", w.name()),
        _ => panic!(
            "{}: one engine failed where the other succeeded: fast={fast_run:?} legacy={slow_run:?}",
            w.name()
        ),
    }
    // Partial stats and state must agree even on the error paths.
    assert_eq!(fast.stats(), slow.stats(), "{}: partial stats", w.name());
    assert_eq!(fast.state().pc(), slow.state().pc(), "{}: pc", w.name());
    for r in 0..16u8 {
        assert_eq!(
            fast.state().reg(Reg::new(r)),
            slow.state().reg(Reg::new(r)),
            "{}: register a{r}",
            w.name()
        );
    }
}

/// The acceptance property for the engine swap: every committed
/// workload — the full 63-program training suite plus the Table II
/// applications — produces byte-identical `ExecStats` on both engines.
#[test]
fn micro_op_engine_matches_legacy_on_every_committed_workload() {
    let mut all = suite::full_training_suite();
    all.extend(emx::workloads::apps::all());
    assert!(all.len() >= 63 + 5, "the committed corpus shrank");
    for w in &all {
        assert_engines_agree(w, BUDGET);
    }
}

/// Phase-counter neutrality at suite scale: enabling the phase profiler
/// (which forces the instrumented path) must not change any statistic,
/// and the profile must account for exactly the retired instructions.
#[test]
fn phase_profiling_is_stats_neutral_across_the_suite() {
    // Every 5th program keeps this cheap while still crossing base,
    // calibration, width-variant and directed programs plus TIE
    // extensions of several shapes.
    for w in suite::full_training_suite().iter().step_by(5) {
        let config = ProcConfig::default();
        let mut plain = Interp::new(w.program(), w.ext(), config.clone());
        let plain_stats = plain.run(BUDGET).expect("suite program halts").stats;

        let mut collector = emx::obs::Collector::new();
        let mut profiled = Interp::new(w.program(), w.ext(), config);
        let (run, profile) = profiled
            .run_profiled(BUDGET, &mut collector)
            .expect("suite program halts under profiling");
        assert_eq!(
            run.stats,
            plain_stats,
            "{}: profiling changed stats",
            w.name()
        );
        assert_eq!(
            profile.steps(),
            plain_stats.inst_count,
            "{}: profile step count",
            w.name()
        );
    }
}

/// A starved cycle budget turns most suite programs into `CycleLimit`
/// errors mid-flight; the engines must agree on the partial execution
/// too, for every budget shape.
#[test]
fn engines_agree_under_starved_cycle_budgets() {
    for (i, w) in suite::characterization_suite().iter().enumerate() {
        // Budgets spread from "dies in the prologue" to "dies deep in
        // the loop", varying per program so cut points differ.
        let budget = [3, 17, 101, 997][i % 4];
        assert_engines_agree(w, budget);
    }
}

// ---------------------------------------------------------------------
// Randomized differential: generated loop programs with ALU and memory
// bodies. The generator only emits well-formed instructions; malformed
// encodings are the assembler's tests' concern, not the engines'.
// ---------------------------------------------------------------------

use proptest::prelude::*;

/// One random body instruction. Register operands stay in a2..=a11
/// (initialized by the prologue), the memory base in a12 points at a
/// 32-byte scratch buffer, and the loop counter lives in a13.
#[derive(Debug, Clone)]
enum BodyOp {
    Alu {
        op: &'static str,
        d: u8,
        s: u8,
        t: u8,
    },
    AluImm {
        d: u8,
        s: u8,
        imm: i32,
    },
    Load {
        d: u8,
        off: u32,
    },
    Store {
        s: u8,
        off: u32,
    },
    Skip {
        s: u8,
    },
}

impl BodyOp {
    fn emit(&self, line: usize) -> String {
        match *self {
            BodyOp::Alu { op, d, s, t } => format!("{op} a{d}, a{s}, a{t}"),
            BodyOp::AluImm { d, s, imm } => format!("addi a{d}, a{s}, {imm}"),
            BodyOp::Load { d, off } => format!("l32i a{d}, {off}(a12)"),
            BodyOp::Store { s, off } => format!("s32i a{s}, {off}(a12)"),
            // A forward branch over one nop: taken or untaken depending
            // on the (random) register contents at this point.
            BodyOp::Skip { s } => format!("beqz a{s}, sk{line}\nnop\nsk{line}:"),
        }
    }
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    let alu_ops = select(vec![
        "add", "sub", "and", "or", "xor", "mul", "slt", "sltu", "min", "maxu", "sll", "srl", "sra",
    ]);
    // One flat tuple of every field a variant might need, then a
    // weighted tag picks the variant (the vendored proptest has no
    // `prop_oneof!`).
    (
        (0u8..10, alu_ops, -128i32..128),
        (2u8..=11, 2u8..=11, 2u8..=11, 0u32..8),
    )
        .prop_map(|((tag, op, imm), (d, s, t, off))| match tag {
            0..=3 => BodyOp::Alu { op, d, s, t },
            4 | 5 => BodyOp::AluImm { d, s, imm },
            6 | 7 => BodyOp::Load { d, off: off * 4 },
            8 => BodyOp::Store { s, off: off * 4 },
            _ => BodyOp::Skip { s },
        })
}

/// Assembles a counted loop around the generated body.
fn loop_program(seeds: &[i32], body: &[BodyOp], iters: u32) -> Workload {
    let mut src = String::from(".data\nbuf: .word 11, 22, 33, 44, 55, 66, 77, 88\n.text\n");
    for (i, seed) in seeds.iter().enumerate() {
        src.push_str(&format!("movi a{}, {seed}\n", i + 2));
    }
    src.push_str(&format!("movi a12, buf\nmovi a13, {iters}\nloop:\n"));
    for (i, op) in body.iter().enumerate() {
        src.push_str(&op.emit(i));
        src.push('\n');
    }
    src.push_str("addi a13, a13, -1\nbnez a13, loop\nhalt\n");
    Workload::try_assemble(
        "generated",
        "proptest differential program",
        emx::tie::ExtensionSet::empty(),
        &src,
        vec![],
    )
    .expect("generated source assembles")
}

proptest! {
    /// Any generated loop program behaves identically on both engines,
    /// both to completion and under a starved budget that cuts it off
    /// mid-loop (including mid-interlock and mid-miss).
    #[test]
    fn engines_agree_on_generated_programs(
        seeds in proptest::collection::vec(-1000i32..1000, 10),
        body in proptest::collection::vec(body_op(), 1..24),
        iters in 1u32..24,
        starved_budget in 5u64..400,
    ) {
        let w = loop_program(&seeds, &body, iters);
        assert_engines_agree(&w, BUDGET);
        assert_engines_agree(&w, starved_budget);
    }

    /// The stats documents of both engines round-trip identically —
    /// ties the differential guarantee to the persisted-extraction
    /// representation the DSE cache relies on.
    #[test]
    fn generated_program_stats_round_trip_json(
        seeds in proptest::collection::vec(-50i32..50, 10),
        body in proptest::collection::vec(body_op(), 1..12),
        iters in 1u32..8,
    ) {
        let w = loop_program(&seeds, &body, iters);
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let stats = sim.run(BUDGET).expect("halts").stats;
        prop_assert_eq!(ExecStats::from_json(&stats.to_json()), Some(stats));
    }
}
