//! End-to-end tests on the real `emx-serve` / `emx-load` binaries:
//! the CI smoke shape (serve, burst, graceful shutdown) and the
//! fault-injection story (SIGKILL mid-traffic, crash-safe cache
//! recovery, byte-identical answers after restart).

use std::io::Read;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use emx::dse::EstimationCache;
use emx::obs::json::Value;
use emx::serve::{request_once, wire, HttpClient};

const MODEL: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/model.txt");

/// Unique temp path prefix that cleans up after itself.
struct Scratch(String);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        Scratch(format!(
            "{}/emx-e2e-{}-{tag}",
            std::env::temp_dir().display(),
            std::process::id()
        ))
    }

    fn path(&self, suffix: &str) -> String {
        format!("{}{suffix}", self.0)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        for suffix in [".addr", ".cache", ".cache.tmp", ".cache.corrupt", ".report"] {
            let _ = std::fs::remove_file(self.path(suffix));
        }
    }
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server(extra: &[&str], addr_file: &str) -> Reaper {
    let child = Command::new(env!("CARGO_BIN_EXE_emx-serve"))
        .args([
            "--model",
            MODEL,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn emx-serve");
    Reaper(child)
}

/// Waits for the server to write its bound address.
fn wait_for_addr(server: &mut Reaper, addr_file: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_owned();
            }
        }
        if let Some(status) = server.0.try_wait().expect("poll server") {
            let mut err = String::new();
            if let Some(stderr) = server.0.stderr.as_mut() {
                let _ = stderr.read_to_string(&mut err);
            }
            panic!("emx-serve exited early ({status}): {err}");
        }
        assert!(
            Instant::now() < deadline,
            "emx-serve did not publish its address in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn estimate_bytes(client: &mut HttpClient, app: &str) -> Vec<u8> {
    let body = wire::estimate_request(app).to_string();
    let response = client
        .request("POST", "/v1/estimate", Some(body.as_bytes()))
        .expect("estimate request");
    assert_eq!(
        response.status,
        200,
        "{}",
        String::from_utf8_lossy(&response.body)
    );
    response.body
}

#[test]
fn serve_and_load_binaries_smoke_end_to_end() {
    let scratch = Scratch::new("smoke");
    let addr_file = scratch.path(".addr");
    let mut server = spawn_server(&[], &addr_file);
    let addr = wait_for_addr(&mut server, &addr_file);

    let report_file = scratch.path(".report");
    let load = Command::new(env!("CARGO_BIN_EXE_emx-load"))
        .args([
            "--addr",
            &addr,
            "--concurrency",
            "3",
            "--duration-ms",
            "500",
            "--json",
            &report_file,
            "--shutdown",
        ])
        .output()
        .expect("run emx-load");
    assert_eq!(
        load.status.code(),
        Some(0),
        "emx-load failed:\n{}\n{}",
        String::from_utf8_lossy(&load.stdout),
        String::from_utf8_lossy(&load.stderr)
    );

    let report = Value::parse(&std::fs::read_to_string(&report_file).expect("report written"))
        .expect("report is JSON");
    assert_eq!(
        report.get("schema").and_then(Value::as_str),
        Some("emx.load-report/1")
    );
    assert_eq!(report.get("errors").and_then(Value::as_u64), Some(0));
    assert!(report.get("requests").and_then(Value::as_u64).unwrap() > 0);

    // --shutdown drained the server: it must exit 0 on its own.
    let status = server.0.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "graceful shutdown must exit 0");
}

#[test]
fn sigkill_mid_traffic_recovers_the_cache_and_the_same_answers() {
    let scratch = Scratch::new("sigkill");
    let addr_file = scratch.path(".addr");
    let cache_file = scratch.path(".cache");

    let mut server = spawn_server(&["--cache", &cache_file], &addr_file);
    let addr = wait_for_addr(&mut server, &addr_file);

    // Drive real traffic so the per-batch flush persists entries, and
    // record the answers the pre-crash server gave.
    let mut client = HttpClient::new(&addr);
    let before_gcd = estimate_bytes(&mut client, "gcd");
    let before_sort = estimate_bytes(&mut client, "ins_sort");
    assert!(
        std::path::Path::new(&cache_file).exists(),
        "the cache must be flushed after every batch, not only at shutdown"
    );
    drop(client);

    // Crash: SIGKILL, no destructors, no graceful flush.
    server.0.kill().expect("kill server");
    let _ = server.0.wait();
    drop(server);
    let _ = std::fs::remove_file(&addr_file);

    // The persisted file is consistent (atomic per-batch saves): it
    // loads without tripping the corrupt-file recovery path and holds
    // the evaluated entries.
    let (cache, recovery) =
        EstimationCache::load_or_recover(&cache_file).expect("cache survives SIGKILL");
    assert!(
        recovery.is_none(),
        "an atomically flushed cache never needs recovery: {recovery:?}"
    );
    assert!(cache.len() >= 2, "both apps must have been persisted");

    // A restarted server over the same cache file serves the exact same
    // bytes — warm from the recovered cache.
    let mut server = spawn_server(&["--cache", &cache_file], &addr_file);
    let addr = wait_for_addr(&mut server, &addr_file);
    let mut client = HttpClient::new(&addr);
    assert_eq!(
        estimate_bytes(&mut client, "gcd"),
        before_gcd,
        "post-crash answers must be byte-identical"
    );
    assert_eq!(estimate_bytes(&mut client, "ins_sort"), before_sort);
    drop(client);

    let response = request_once(&addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(response.status, 200);
    let status = server.0.wait().expect("server exits");
    assert_eq!(status.code(), Some(0));
}
