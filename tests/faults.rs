//! Fault-injection suite: proves the engine's failure-containment
//! contract end to end.
//!
//! The contract under test (see DESIGN.md §"Error taxonomy"): one bad
//! candidate — whether it returns a typed error or panics outright —
//! costs exactly that candidate. The run completes, the report carries
//! the failure in `failed_candidates` with a stable machine code, the
//! Pareto front covers the survivors, and nothing about the containment
//! depends on worker count or cache warmth. Likewise a cache file cut
//! short by a crash is quarantined and rebuilt, never fatal.
//!
//! Characterization is expensive, so the fitted model is shared through a
//! once-cell like `dse.rs`.

use std::sync::OnceLock;

use emx::core::{Characterization, Characterizer};
use emx::dse::fault::{has_inst, truncate_file, FailingEstimator};
use emx::dse::{self, CandidateSpace, EstimationCache};
use emx::obs::Collector;
use emx::sim::ProcConfig;
use emx::workloads::suite;

fn characterization() -> &'static Characterization {
    static MODEL: OnceLock<Characterization> = OnceLock::new();
    MODEL.get_or_init(|| {
        let workloads = suite::full_training_suite();
        let cases = suite::training_cases(&workloads);
        Characterizer::new(ProcConfig::default())
            .characterize(&cases)
            .expect("training suite characterizes")
    })
}

fn explore_with<E: dse::CandidateEstimator>(
    estimator: &E,
    jobs: usize,
    cache: &mut EstimationCache,
) -> dse::Exploration {
    dse::explore_with(
        estimator,
        &CandidateSpace::reed_solomon(),
        None,
        &ProcConfig::default(),
        jobs,
        cache,
        &mut Collector::disabled(),
    )
    .expect("a contained failure must not abort the exploration")
}

fn report_json(out: &dse::Exploration) -> String {
    let space = CandidateSpace::reed_solomon();
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    dse::report::to_json(out, &options).to_string()
}

/// The acceptance property: an injected worker panic yields a successful
/// run whose report names the failed candidate, with the Pareto front
/// computed over the survivors.
#[test]
fn injected_panic_fails_one_candidate_not_the_run() {
    // `gfmac` is provided only by the rs2 workload's extension set, so
    // the trigger selects exactly the `gf16mac` candidate.
    let injector = FailingEstimator::panic_when(&characterization().model, has_inst("gfmac"));
    let mut cache = EstimationCache::new();
    let out = explore_with(&injector, 4, &mut cache);

    assert_eq!(out.failed.len(), 1, "exactly one candidate is poisoned");
    assert_eq!(out.failed[0].name, "gf16mac");
    assert_eq!(out.failed[0].error.code(), "worker.panicked");

    // Survivors: candidates and points stay parallel, the failed one is
    // in neither, and every ranking index is valid.
    assert_eq!(out.points.len(), 3);
    assert_eq!(out.enumeration.candidates.len(), 3);
    assert!(out.points.iter().all(|p| p.name != "gf16mac"));
    assert!(!out.pareto.is_empty(), "the front covers the survivors");
    for &i in &out.pareto {
        assert!(i < out.points.len());
    }
    assert_eq!(out.base, Some(0), "the base candidate survives");

    // The report carries the failure with its machine code.
    let doc = emx::obs::json::Value::parse(&report_json(&out)).expect("report parses");
    let failed = doc
        .get("failed_candidates")
        .and_then(|v| v.as_array())
        .expect("failed_candidates array");
    assert_eq!(failed.len(), 1);
    assert_eq!(
        failed[0].get("name").and_then(|v| v.as_str()),
        Some("gf16mac")
    );
    assert_eq!(
        failed[0].get("code").and_then(|v| v.as_str()),
        Some("worker.panicked")
    );
    let candidates = doc
        .get("candidates")
        .and_then(|v| v.as_array())
        .expect("candidates array");
    assert_eq!(candidates.len(), 3, "the report ranks the survivors");
}

#[test]
fn injected_error_is_typed_and_never_cached() {
    // `synstep` is provided only by the rs3 workload's extension set.
    let injector = FailingEstimator::fail_when(&characterization().model, has_inst("synstep"));
    let mut cache = EstimationCache::new();
    let out = explore_with(&injector, 2, &mut cache);

    assert_eq!(out.failed.len(), 1);
    assert_eq!(out.failed[0].name, "rsfull");
    assert_eq!(out.failed[0].error.code(), "sim.cycle_limit");
    // The typed error chains back to the simulator error.
    assert!(std::error::Error::source(&out.failed[0].error).is_some());

    assert_eq!(out.points.len(), 3);
    assert_eq!(cache.len(), 3, "only successful estimates enter the cache");
}

#[test]
fn containment_is_deterministic_across_job_counts() {
    let injector = FailingEstimator::panic_when(&characterization().model, has_inst("gfmac"));
    let serial = report_json(&explore_with(&injector, 1, &mut EstimationCache::new()));
    for jobs in [2, 4] {
        let parallel = report_json(&explore_with(&injector, jobs, &mut EstimationCache::new()));
        assert_eq!(serial, parallel, "--jobs {jobs} changed the faulty report");
    }
}

#[test]
fn truncated_cache_write_recovers_end_to_end() {
    let path = std::env::temp_dir().join(format!("emx-faults-cache-{}.json", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    let _cleanup = Cleanup(&path);

    let model = &characterization().model;
    let mut cache = EstimationCache::new();
    let healthy = report_json(&explore_with(&model, 1, &mut cache));
    cache.save(&path).expect("cache saves");

    // Crash mid-write: the persisted document loses its second half.
    truncate_file(&path, 40).expect("truncation shim works");

    // Recovery quarantines the damaged file and the search still runs —
    // cold, but to the same report.
    let (mut recovered, recovery) =
        EstimationCache::load_or_recover(&path).expect("recovery never aborts");
    assert!(recovery.is_some(), "damage must be reported");
    assert!(recovered.is_empty(), "nothing salvageable from cut JSON");
    assert!(
        std::path::Path::new(&format!("{path}.corrupt")).exists(),
        "the damaged file is preserved for diagnosis"
    );
    let rebuilt = report_json(&explore_with(&model, 1, &mut recovered));
    assert_eq!(healthy, rebuilt, "recovery must not change results");

    // The rebuilt cache persists and reloads cleanly.
    recovered.save(&path).expect("cache saves after recovery");
    let (warm, recovery) = EstimationCache::load_or_recover(&path).expect("clean load");
    assert!(recovery.is_none());
    assert_eq!(warm.len(), recovered.len());
}

struct Cleanup<'a>(&'a str);

impl Drop for Cleanup<'_> {
    fn drop(&mut self) {
        for suffix in ["", ".tmp", ".corrupt"] {
            let _ = std::fs::remove_file(format!("{}{suffix}", self.0));
        }
    }
}

// ---------------------------------------------------------------------
// Shard-report faults: a damaged or mismatched artifact is a typed
// error and the merge refuses whole — never a partial result.
// ---------------------------------------------------------------------

fn shard_report(index: u32, count: u32, budget: Option<f64>) -> dse::ShardReport {
    let space = CandidateSpace::reed_solomon();
    let mut cache = EstimationCache::new();
    let baseline = cache.key_set();
    let out = dse::explore_shard_with(
        &characterization().model,
        &space,
        budget,
        &ProcConfig::default(),
        1,
        &mut cache,
        &mut Collector::disabled(),
        dse::ShardSpec::new(index, count).expect("valid shard"),
    )
    .expect("shard exploration succeeds");
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    dse::ShardReport::from_exploration(&out, &options, cache.delta_since(&baseline))
}

#[test]
fn truncated_shard_report_is_a_typed_error() {
    let text = shard_report(1, 2, None).to_json().to_string();
    for keep in [0, 10, text.len() / 2, text.len() - 1] {
        match dse::ShardReport::parse(&text[..keep], "cut.json") {
            Err(dse::DseError::ShardReportCorrupt { source_name, .. }) => {
                assert_eq!(source_name, "cut.json", "errors must name the file");
            }
            other => panic!("truncated at {keep}: expected ShardReportCorrupt, got {other:?}"),
        }
    }
}

#[test]
fn foreign_schema_is_rejected_by_name() {
    // A main report is not a shard report, even though both are JSON.
    let text = shard_report(1, 1, None)
        .to_json()
        .to_string()
        .replace(dse::SHARD_SCHEMA, dse::report::SCHEMA);
    match dse::ShardReport::parse(&text, "wrong.json") {
        Err(dse::DseError::ShardSchemaMismatch { source_name, found }) => {
            assert_eq!(source_name, "wrong.json");
            assert_eq!(found, dse::report::SCHEMA);
        }
        other => panic!("expected ShardSchemaMismatch, got {other:?}"),
    }
}

#[test]
fn merge_detects_a_missing_shard_via_the_partition_fingerprint() {
    // Shards 1 and 3 of a 3-way partition: the shared fingerprint pins
    // the count to 3, so index 2 is provably absent.
    let r1 = shard_report(1, 3, None);
    let r3 = shard_report(3, 3, None);
    match dse::merge(vec![r1, r3]) {
        Err(dse::DseError::ShardMissing { index: 2, count: 3 }) => {}
        other => panic!("expected ShardMissing 2 of 3, got {other:?}"),
    }
}

#[test]
fn merge_detects_a_duplicated_shard() {
    let a = shard_report(1, 2, None);
    let b = shard_report(1, 2, None);
    match dse::merge(vec![a, b]) {
        Err(dse::DseError::ShardDuplicate { index: 1, count: 2 }) => {}
        other => panic!("expected ShardDuplicate 1 of 2, got {other:?}"),
    }
}

#[test]
fn shards_of_different_partitions_never_merge() {
    // Same space, same model — but a different budget is a different
    // search, and the fingerprint must catch it.
    let a = shard_report(1, 2, None);
    let b = shard_report(2, 2, Some(1e9));
    match dse::merge(vec![a, b]) {
        Err(dse::DseError::ShardFingerprintMismatch {
            expected, found, ..
        }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ShardFingerprintMismatch, got {other:?}"),
    }
}

#[test]
fn tampered_rows_fail_the_survivor_count_check() {
    // A hand-edited artifact that drops a row parses fine but can no
    // longer account for every survivor — the merge refuses whole.
    let mut a = shard_report(1, 2, None);
    let b = shard_report(2, 2, None);
    a.candidates.pop();
    match dse::merge(vec![a, b]) {
        Err(dse::DseError::ShardReportCorrupt { detail, .. }) => {
            assert!(detail.contains("survivors"), "unexpected detail: {detail}");
        }
        other => panic!("expected ShardReportCorrupt, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Cache persistence properties: random caches round-trip exactly, and
// salvage after arbitrary truncation only ever keeps intact entries.
// ---------------------------------------------------------------------

use emx::dse::CacheEntry;
use proptest::prelude::*;

/// Builds a cache with `n` pseudo-random extraction entries derived from
/// `seed`, exercising every field group of the stats document.
fn random_cache(seed: u64, n: usize) -> EstimationCache {
    let mut rng = proptest::test_runner::TestRng::new(seed);
    let mut cache = EstimationCache::new();
    for _ in 0..n {
        let key = rng.next_u64();
        let mut stats = emx::sim::ExecStats::new((rng.next_u64() % 4) as usize);
        for c in &mut stats.class_cycles {
            *c = rng.next_u64() % 1_000_000_000;
        }
        for c in &mut stats.class_counts {
            *c = rng.next_u64() % 1_000_000_000;
        }
        stats.icache_misses = rng.next_u64() % 1_000_000;
        stats.dcache_misses = rng.next_u64() % 1_000_000;
        stats.uncached_fetches = rng.next_u64() % 1_000_000;
        stats.interlocks = rng.next_u64() % 1_000_000;
        stats.ci_gpr_cycles = rng.next_u64() % 1_000_000;
        stats.custom_cycles = rng.next_u64() % 1_000_000;
        stats.total_cycles = rng.next_u64() % 1_000_000_000;
        stats.inst_count = rng.next_u64() % 1_000_000_000;
        for v in &mut stats.custom_counts {
            *v = rng.next_u64() % 1_000;
        }
        // Finite non-negative activities, like real extractions —
        // including non-representable fractions.
        for a in &mut stats.struct_activity {
            *a = (rng.next_u64() % 1_000_000_000) as f64 / 384.0;
        }
        for a in &mut stats.struct_activations {
            *a = (rng.next_u64() % 1_000_000) as f64;
        }
        for (i, c) in stats.opcode_cycles.iter_mut().enumerate() {
            if i % 3 == 0 {
                *c = rng.next_u64() % 1_000;
            }
        }
        cache.insert(key, CacheEntry { stats });
    }
    cache
}

fn entries_of(cache: &EstimationCache, reference: &EstimationCache) -> usize {
    // Counts reference entries present in `cache` with identical content
    // (ExecStats equality covers every counter and f64 field).
    let text = reference.to_json().to_string();
    let doc = emx::obs::json::Value::parse(&text).expect("own JSON parses");
    let mut matched = 0;
    if let Some(emx::obs::json::Value::Obj(pairs)) = doc.get("entries") {
        for (key, _) in pairs {
            let key = u64::from_str_radix(key, 16).expect("hex key");
            if let (Some(a), Some(b)) = (cache.get(key), reference.get(key)) {
                if a == b {
                    matched += 1;
                }
            }
        }
    }
    matched
}

proptest! {
    /// save → load_or_recover restores byte-identical entries, with no
    /// recovery reported.
    #[test]
    fn cache_save_load_round_trips_exactly(seed in any::<u64>(), n in 0usize..24) {
        let path = std::env::temp_dir().join(format!(
            "emx-faults-prop-{}-{seed:x}-{n}.json",
            std::process::id()
        ));
        let path = path.to_string_lossy().into_owned();
        let _cleanup = Cleanup(&path);

        let cache = random_cache(seed, n);
        cache.save(&path).expect("cache saves");
        let (loaded, recovery) = EstimationCache::load_or_recover(&path).expect("clean load");
        prop_assert!(recovery.is_none(), "a clean file must not report recovery");
        prop_assert_eq!(loaded.len(), cache.len());
        prop_assert_eq!(entries_of(&loaded, &cache), cache.len());
    }

    /// Truncating the persisted document at any byte length yields, via
    /// salvage, a subset of the original entries — every survivor
    /// verifies bit-for-bit against what was saved, never a mangled key
    /// or value.
    #[test]
    fn salvage_after_truncation_keeps_only_intact_entries(
        seed in any::<u64>(),
        n in 1usize..16,
        cut_per_mille in 0u64..1000,
    ) {
        let cache = random_cache(seed, n);
        let full = {
            let mut text = cache.to_json().to_string();
            text.push('\n');
            text
        };
        let keep = (full.len() as u64 * cut_per_mille / 1000) as usize;
        // Cut on a char boundary (the document is ASCII, but stay safe).
        let keep = (0..=keep).rev().find(|&i| full.is_char_boundary(i)).unwrap_or(0);
        let truncated = &full[..keep];

        // A structurally unreadable document (cut mid-JSON) is an
        // acceptable `Err` — load_or_recover quarantines and starts
        // cold. When salvage *does* succeed, it must keep only intact
        // entries.
        if let Ok((salvaged, _)) = EstimationCache::salvage_json_text(truncated) {
            prop_assert!(salvaged.len() <= cache.len());
            prop_assert_eq!(
                entries_of(&salvaged, &cache),
                salvaged.len(),
                "every salvaged entry must re-verify against the original"
            );
        }
    }
}
