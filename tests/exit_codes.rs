//! The shared CLI exit-code contract, enforced end to end on the real
//! binaries: **2** = the command line itself was malformed, **1** = an
//! input file or gate failed, **3** = internal error (covered by unit
//! tests on `ErrorKind::exit_code`, since a healthy build has no
//! reachable internal error to trigger — see tests/README.md).
//!
//! Every table entry runs a binary with representative bad input and
//! asserts on the process's real exit status, so a refactor that breaks
//! `main`'s error plumbing (e.g. returning `Err` straight out of `main`,
//! which exits 1 for everything) fails here even when the unit tests on
//! `parse_args` still pass.

use std::process::Command;

struct Case {
    bin: &'static str,
    args: &'static [&'static str],
    expect: i32,
    why: &'static str,
}

const CASES: &[Case] = &[
    // usage errors: exit 2
    Case {
        bin: env!("CARGO_BIN_EXE_emx-run"),
        args: &["--bogus-flag"],
        expect: 2,
        why: "unknown flag is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-characterize"),
        args: &[],
        expect: 2,
        why: "missing required model path is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--budget", "nan"],
        expect: 2,
        why: "non-numeric budget is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-validate"),
        args: &["--folds", "1"],
        expect: 2,
        why: "fold count below 2 is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--bogus-flag"],
        expect: 2,
        why: "unknown flag is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--queue-depth", "0"],
        expect: 2,
        why: "zero queue depth is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &[],
        expect: 2,
        why: "missing required --addr is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &["--addr", "127.0.0.1:9", "--concurrency", "0"],
        expect: 2,
        why: "zero concurrency is a usage error",
    },
    // bad input: exit 1
    Case {
        bin: env!("CARGO_BIN_EXE_emx-run"),
        args: &["/nonexistent/emx-no-such-program.s"],
        expect: 1,
        why: "missing program file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--model", "/nonexistent/emx-no-such-model.txt"],
        expect: 1,
        why: "missing model file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-validate"),
        args: &["--check", "/nonexistent/emx-no-such-golden.json"],
        expect: 1,
        why: "missing golden report is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-characterize"),
        args: &["/nonexistent-dir/model.txt"],
        expect: 1,
        why: "unwritable model output path is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--model", "/nonexistent/emx-no-such-model.txt"],
        expect: 1,
        why: "missing model file is an input error",
    },
    // Port 9 (discard) is unassigned on loopback in CI containers: the
    // very first request fails to connect, which emx-load reports as an
    // input error (bad address) rather than a measured service error.
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &["--addr", "127.0.0.1:9", "--duration-ms", "100"],
        expect: 1,
        why: "unreachable server is an input error",
    },
];

#[test]
fn every_cli_honors_the_shared_exit_code_contract() {
    for case in CASES {
        let out = Command::new(case.bin)
            .args(case.args)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", case.bin));
        let code = out.status.code().expect("process not killed by signal");
        assert_eq!(
            code,
            case.expect,
            "{} {:?}: {} (expected {}, got {})\nstderr: {}",
            case.bin,
            case.args,
            case.why,
            case.expect,
            code,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// Fast-failure guarantee: input errors that are checkable up front
/// (missing golden, missing model) must exit before any simulation runs,
/// so CI failures are cheap. A generous wall-clock bound catches a
/// regression to fail-late without being flaky.
#[test]
fn checkable_input_errors_fail_fast() {
    for (bin, args) in [
        (
            env!("CARGO_BIN_EXE_emx-validate"),
            &["--check", "/nonexistent/g.json"][..],
        ),
        (
            env!("CARGO_BIN_EXE_emx-dse"),
            &["--model", "/nonexistent/m.txt"][..],
        ),
        (
            env!("CARGO_BIN_EXE_emx-serve"),
            &["--model", "/nonexistent/m.txt"][..],
        ),
    ] {
        let started = std::time::Instant::now();
        let out = Command::new(bin).args(args).output().expect("spawns");
        assert_eq!(out.status.code(), Some(1));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "{bin} {args:?} took {:?}; it must fail before simulating",
            started.elapsed()
        );
    }
}
