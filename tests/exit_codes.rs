//! The shared CLI exit-code contract, enforced end to end on the real
//! binaries: **2** = the command line itself was malformed, **1** = an
//! input file or gate failed, **3** = internal error (covered by unit
//! tests on `ErrorKind::exit_code`, since a healthy build has no
//! reachable internal error to trigger — see tests/README.md).
//!
//! Every table entry runs a binary with representative bad input and
//! asserts on the process's real exit status, so a refactor that breaks
//! `main`'s error plumbing (e.g. returning `Err` straight out of `main`,
//! which exits 1 for everything) fails here even when the unit tests on
//! `parse_args` still pass.

use std::process::Command;

struct Case {
    bin: &'static str,
    args: &'static [&'static str],
    expect: i32,
    why: &'static str,
}

const CASES: &[Case] = &[
    // usage errors: exit 2
    Case {
        bin: env!("CARGO_BIN_EXE_emx-run"),
        args: &["--bogus-flag"],
        expect: 2,
        why: "unknown flag is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-characterize"),
        args: &[],
        expect: 2,
        why: "missing required model path is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--budget", "nan"],
        expect: 2,
        why: "non-numeric budget is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--shard", "3/2"],
        expect: 2,
        why: "shard index above the count is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--shard", "0/0"],
        expect: 2,
        why: "zero-way shard partition is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--merge"],
        expect: 2,
        why: "--merge without shard report files is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-validate"),
        args: &["--folds", "1"],
        expect: 2,
        why: "fold count below 2 is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--bogus-flag"],
        expect: 2,
        why: "unknown flag is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--queue-depth", "0"],
        expect: 2,
        why: "zero queue depth is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &[],
        expect: 2,
        why: "missing required --addr is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &["--addr", "127.0.0.1:9", "--concurrency", "0"],
        expect: 2,
        why: "zero concurrency is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-discover"),
        args: &["--bogus-flag"],
        expect: 2,
        why: "unknown flag is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-discover"),
        args: &["--workload", "no-such-workload"],
        expect: 2,
        why: "unknown workload name is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-discover"),
        args: &["--jobs", "0"],
        expect: 2,
        why: "zero worker count is a usage error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--candidates", "d.json", "--workload", "reed-solomon"],
        expect: 2,
        why: "--candidates and --workload conflict is a usage error",
    },
    // bad input: exit 1
    Case {
        bin: env!("CARGO_BIN_EXE_emx-run"),
        args: &["/nonexistent/emx-no-such-program.s"],
        expect: 1,
        why: "missing program file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--model", "/nonexistent/emx-no-such-model.txt"],
        expect: 1,
        why: "missing model file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--merge", "/nonexistent/emx-no-such-shard.json"],
        expect: 1,
        why: "missing shard report file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-validate"),
        args: &["--check", "/nonexistent/emx-no-such-golden.json"],
        expect: 1,
        why: "missing golden report is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-characterize"),
        args: &["/nonexistent-dir/model.txt"],
        expect: 1,
        why: "unwritable model output path is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-serve"),
        args: &["--model", "/nonexistent/emx-no-such-model.txt"],
        expect: 1,
        why: "missing model file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-dse"),
        args: &["--candidates", "/nonexistent/emx-no-such-discover.json"],
        expect: 1,
        why: "missing discover report file is an input error",
    },
    Case {
        bin: env!("CARGO_BIN_EXE_emx-discover"),
        args: &[
            "--workload",
            "rs1",
            "--json",
            "/nonexistent-dir/discover.json",
        ],
        expect: 1,
        why: "unwritable report output path is an input error",
    },
    // Port 9 (discard) is unassigned on loopback in CI containers: the
    // very first request fails to connect, which emx-load reports as an
    // input error (bad address) rather than a measured service error.
    Case {
        bin: env!("CARGO_BIN_EXE_emx-load"),
        args: &["--addr", "127.0.0.1:9", "--duration-ms", "100"],
        expect: 1,
        why: "unreachable server is an input error",
    },
];

#[test]
fn every_cli_honors_the_shared_exit_code_contract() {
    for case in CASES {
        let out = Command::new(case.bin)
            .args(case.args)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", case.bin));
        let code = out.status.code().expect("process not killed by signal");
        assert_eq!(
            code,
            case.expect,
            "{} {:?}: {} (expected {}, got {})\nstderr: {}",
            case.bin,
            case.args,
            case.why,
            case.expect,
            code,
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// A minimal but complete `emx.dse-shard-report/1` document: empty rows,
/// empty cache delta — enough to parse, so the *merge* check under test
/// is the one that fires.
fn minimal_shard_report(index: u32, count: u32, fingerprint: &str) -> String {
    format!(
        concat!(
            "{{\"schema\":\"emx.dse-shard-report/1\",",
            "\"shard\":{{\"index\":{index},\"count\":{count}}},",
            "\"partition_fingerprint\":\"{fp}\",",
            "\"workload\":\"reed-solomon\",\"budget\":null,\"options\":[],",
            "\"enumerated\":0,\"over_budget\":0,\"pruned\":0,\"survivors\":0,",
            "\"evaluated\":0,\"reused\":0,\"candidates\":[],\"failed_candidates\":[],",
            "\"cache_delta\":{{\"schema\":\"emx.dse-cache/2\",\"entries\":{{}}}}}}"
        ),
        index = index,
        count = count,
        fp = fingerprint,
    )
}

/// Merging artifacts whose partition fingerprints conflict is an *input*
/// failure (exit 1), not a usage error: the command line was fine, the
/// files do not belong together.
#[test]
fn merging_conflicting_partitions_exits_one() {
    let dir = std::env::temp_dir();
    let a = dir.join(format!("emx-exit-shard-a-{}.json", std::process::id()));
    let b = dir.join(format!("emx-exit-shard-b-{}.json", std::process::id()));
    std::fs::write(&a, minimal_shard_report(1, 2, "00000000000000aa")).expect("write a");
    std::fs::write(&b, minimal_shard_report(2, 2, "00000000000000bb")).expect("write b");

    let out = Command::new(env!("CARGO_BIN_EXE_emx-dse"))
        .args(["--merge", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("spawns");
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);

    assert_eq!(
        out.status.code(),
        Some(1),
        "fingerprint conflict must exit 1\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fingerprint"),
        "stderr must name the conflict: {stderr}"
    );
}

/// A discover report that exists but does not carry the expected schema
/// is an *input* failure (exit 1): the flag was used correctly, the file
/// is not an `emx.discover-report/1` artifact.
#[test]
fn malformed_discover_report_exits_one() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("emx-exit-discover-{}.json", std::process::id()));
    std::fs::write(&path, "{\"schema\":\"not-a-discover-report\"}").expect("write report");

    let out = Command::new(env!("CARGO_BIN_EXE_emx-dse"))
        .args(["--candidates", path.to_str().unwrap()])
        .output()
        .expect("spawns");
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        out.status.code(),
        Some(1),
        "wrong schema must exit 1\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Fast-failure guarantee: input errors that are checkable up front
/// (missing golden, missing model) must exit before any simulation runs,
/// so CI failures are cheap. A generous wall-clock bound catches a
/// regression to fail-late without being flaky.
#[test]
fn checkable_input_errors_fail_fast() {
    for (bin, args) in [
        (
            env!("CARGO_BIN_EXE_emx-validate"),
            &["--check", "/nonexistent/g.json"][..],
        ),
        (
            env!("CARGO_BIN_EXE_emx-dse"),
            &["--model", "/nonexistent/m.txt"][..],
        ),
        (
            env!("CARGO_BIN_EXE_emx-serve"),
            &["--model", "/nonexistent/m.txt"][..],
        ),
    ] {
        let started = std::time::Instant::now();
        let out = Command::new(bin).args(args).output().expect("spawns");
        assert_eq!(out.status.code(), Some(1));
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "{bin} {args:?} took {:?}; it must fail before simulating",
            started.elapsed()
        );
    }
}
