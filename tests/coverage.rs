//! Integration tests for the calibration-coverage subsystem: the
//! excitation analyzer, the pairwise planner, the directed case
//! generator, and the versioned coverage report — exercised together
//! over the real training suite (DESIGN.md §13).
//!
//! Simulation is the expensive part, so all tests share one
//! [`RowCache`]: each unique program is simulated and reference-priced
//! exactly once, and datasets are assembled from cached rows.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use emx::core::Characterizer;
use emx::coverage::{analyze, plan, report, GapKind, Thresholds};
use emx::regress::Dataset;
use emx::sim::ProcConfig;
use emx::workloads::{directed, suite, Workload};

/// Memoized (variables row, reference energy) per program name.
struct RowCache {
    characterizer: Characterizer,
    rows: HashMap<String, (Vec<f64>, f64)>,
}

impl RowCache {
    fn shared() -> &'static Mutex<RowCache> {
        static CACHE: OnceLock<Mutex<RowCache>> = OnceLock::new();
        CACHE.get_or_init(|| {
            Mutex::new(RowCache {
                characterizer: Characterizer::new(ProcConfig::default()),
                rows: HashMap::new(),
            })
        })
    }

    /// Assembles a dataset over `workloads`, simulating only the ones
    /// not seen before.
    fn dataset(&mut self, workloads: &[Workload]) -> Dataset {
        let missing: Vec<Workload> = workloads
            .iter()
            .filter(|w| !self.rows.contains_key(w.name()))
            .cloned()
            .collect();
        if !missing.is_empty() {
            let cases = suite::training_cases(&missing);
            let built = self
                .characterizer
                .build_dataset(&cases)
                .expect("training cases simulate");
            for (i, w) in missing.iter().enumerate() {
                self.rows.insert(
                    w.name().to_owned(),
                    (built.row(i).to_vec(), built.observed(i)),
                );
            }
        }
        let mut dataset = Dataset::new(self.characterizer.spec().variable_names());
        for w in workloads {
            let (row, y) = &self.rows[w.name()];
            dataset.push_sample(w.name(), row, *y).expect("cached row");
        }
        dataset
    }
}

/// The suite as it existed before the directed pairwise cases.
fn legacy_suite() -> Vec<Workload> {
    suite::full_training_suite()
        .into_iter()
        .filter(|w| !w.name().starts_with("dir_"))
        .collect()
}

#[test]
fn legacy_suite_fails_thresholds_and_shipped_suite_passes() {
    let mut cache = RowCache::shared().lock().unwrap();

    // The pre-coverage suite is measurably ill-conditioned: sole-ish
    // sources, a collinear β_icm~α_A pair, condition number over the
    // limit. This is the regression the analyzer exists to catch.
    let legacy = cache.dataset(&legacy_suite());
    let before = analyze(&legacy, &Thresholds::default()).expect("analyzes");
    assert!(!before.passes(), "legacy suite must fail the thresholds");
    assert!(
        before.condition_number > Thresholds::default().max_condition_number,
        "legacy condition number {} should exceed the threshold",
        before.condition_number
    );
    let under_excited: Vec<&str> = before
        .gaps
        .iter()
        .filter(|g| matches!(g.kind, GapKind::UnderExcited { .. }))
        .map(|g| g.variable.as_str())
        .collect();
    assert!(
        under_excited.contains(&"beta_ucf") && under_excited.contains(&"delta_shift"),
        "expected the known one-case variables, got {under_excited:?}"
    );
    assert!(
        before.gaps.iter().any(|g| matches!(
            &g.kind,
            GapKind::Collinear { partner, .. }
                if g.variable == "beta_icm" && partner == "alpha_A"
        )),
        "expected the β_icm~α_A collinearity, got {:?}",
        before.gaps
    );

    // The shipped suite (legacy + DIRECTED_SPECS cases) closes every gap.
    let full = cache.dataset(&suite::full_training_suite());
    let after = analyze(&full, &Thresholds::default()).expect("analyzes");
    assert!(
        after.passes(),
        "shipped suite must pass, but: {:?}",
        after.failures()
    );
    assert!(after.gaps.is_empty());
    assert!(after.condition_number < before.condition_number);
    for v in &after.variables {
        assert!(
            v.nonzero_cases >= Thresholds::default().min_nonzero_cases,
            "{} excited by only {} cases",
            v.name,
            v.nonzero_cases
        );
    }
}

#[test]
fn closed_loop_planning_converges_on_the_legacy_suite() {
    // analyze → plan → synthesize → re-analyze, starting from the
    // ill-conditioned legacy suite, must reach a passing suite without
    // hand-picked specs. Specs accumulate across rounds (realization is
    // index-dependent, so the cumulative list keeps program names
    // stable) and the loop must converge within a few rounds.
    let mut cache = RowCache::shared().lock().unwrap();
    let legacy = legacy_suite();
    let mut specs = Vec::new();
    let mut conditions = Vec::new();
    let mut converged = false;
    for _round in 0..8 {
        let refs: Vec<(&str, &str, (u32, u32))> = specs
            .iter()
            .map(|s: &emx::coverage::CaseSpec| (s.primary.as_str(), s.partner.as_str(), s.weights))
            .collect();
        let mut workloads = legacy.clone();
        workloads.extend(directed::realize(&refs));
        let dataset = cache.dataset(&workloads);
        let analysis = analyze(&dataset, &Thresholds::default()).expect("analyzes");
        conditions.push(analysis.condition_number);
        if analysis.passes() {
            converged = true;
            break;
        }
        let planned = plan(&analysis, 2);
        assert!(
            !planned.is_empty(),
            "analyzer reports gaps but the planner has no cases for them: {:?}",
            analysis.failures()
        );
        specs.extend(planned);
    }
    assert!(
        converged,
        "closed loop failed to converge; condition trajectory {conditions:?}"
    );
    assert!(
        !specs.is_empty(),
        "convergence must come from planned cases, not the legacy suite"
    );
}

#[test]
fn coverage_report_is_deterministic_and_round_trips() {
    let analysis = {
        let mut cache = RowCache::shared().lock().unwrap();
        let dataset = cache.dataset(&suite::full_training_suite());
        analyze(&dataset, &Thresholds::default()).expect("analyzes")
    };

    // Byte determinism: two serializations of independently re-analyzed
    // runs must be identical (CI additionally `cmp`s two full
    // `emx-validate --coverage-json` invocations).
    let a = report::to_json(&analysis).to_string();
    let b = report::to_json(&analysis).to_string();
    assert_eq!(a, b);

    // Parse round-trip: the document reconstructs the analysis.
    let parsed = report::parse(&a).expect("parses");
    assert_eq!(parsed.cases, analysis.cases);
    assert_eq!(parsed.passes(), analysis.passes());
    assert_eq!(
        parsed.condition_number.to_bits(),
        analysis.condition_number.to_bits(),
        "condition number must survive the round trip bit-exactly"
    );
    assert_eq!(parsed.variables.len(), analysis.variables.len());
    for (p, o) in parsed.variables.iter().zip(&analysis.variables) {
        assert_eq!(p.name, o.name);
        assert_eq!(p.nonzero_cases, o.nonzero_cases);
        assert_eq!(p.vif.to_bits(), o.vif.to_bits());
    }
    assert!(a.contains(report::SCHEMA));
}
