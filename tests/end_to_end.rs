//! Cross-crate integration tests: the full characterize → estimate
//! pipeline against the paper's headline claims, run end-to-end through
//! the public API.
//!
//! These are the "does the reproduction reproduce" tests: Table II
//! accuracy bounds, Fig. 3 fit quality, Fig. 4 relative accuracy, and
//! the structural properties the methodology depends on. They are
//! slower than unit tests (each builds the macro-model from the full
//! training suite), so the characterization is shared through a
//! once-cell.

use std::sync::OnceLock;

use emx::core::{Characterization, Characterizer, TrainingCase};
use emx::prelude::*;
use emx::regress::stats;
use emx::workloads::reed_solomon::RsConfig;
use emx::workloads::{apps, suite};

fn characterization() -> &'static Characterization {
    static MODEL: OnceLock<Characterization> = OnceLock::new();
    MODEL.get_or_init(|| {
        let workloads = suite::full_training_suite();
        let cases: Vec<TrainingCase<'_>> = workloads
            .iter()
            .map(|w| TrainingCase {
                name: w.name(),
                program: w.program(),
                ext: w.ext(),
            })
            .collect();
        Characterizer::new(ProcConfig::default())
            .characterize(&cases)
            .expect("training suite characterizes")
    })
}

#[test]
fn fit_quality_matches_the_paper_band() {
    // Paper Fig. 3: max fitting error < 8.9%, rms 3.8%.
    let c = characterization();
    assert!(c.fit.r_squared() > 0.995, "R² = {}", c.fit.r_squared());
    assert!(
        c.fit.rms_percent_error() < 6.0,
        "rms = {}%",
        c.fit.rms_percent_error()
    );
    assert!(
        c.fit.max_abs_percent_error() < 15.0,
        "max = {}%",
        c.fit.max_abs_percent_error()
    );
}

#[test]
fn all_coefficients_are_physical() {
    // Energy coefficients are per-event energies; every one must be
    // positive (paper Table I lists positive values throughout).
    let c = characterization();
    for (name, value) in c.model.coefficient_table() {
        assert!(value > -50.0, "{name} = {value} is non-physical");
    }
    // And the big effects must be ordered sensibly.
    let coef = |n: &str| c.model.coefficient(n).expect("paper template");
    assert!(coef("beta_icm") > 5.0 * coef("alpha_A"), "miss ≫ cycle");
    assert!(coef("beta_dcm") > 5.0 * coef("alpha_A"));
    assert!(coef("beta_ucf") > coef("alpha_A"));
}

#[test]
fn table2_application_accuracy() {
    // Paper Table II: max |error| 8.5%, mean |error| 3.3% over ten
    // held-out applications with custom instructions.
    let c = characterization();
    let estimator = RtlEnergyEstimator::new();
    let mut errors = Vec::new();
    for w in apps::all() {
        // Functional correctness first.
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(200_000_000).expect("app runs");
        w.verify(sim.state()).expect("app verifies");

        let est = c
            .model
            .estimate(w.program(), w.ext(), ProcConfig::default())
            .expect("estimates");
        let reference = estimator
            .estimate(w.program(), w.ext(), ProcConfig::default())
            .expect("reference runs");
        let err = est.energy.percent_error_vs(reference.total);
        assert!(err.abs() < 12.0, "{}: {err:+.1}%", w.name());
        errors.push(err);
    }
    let mean = stats::mean_abs(&errors);
    assert!(mean < 6.0, "mean |error| = {mean:.1}%");
}

#[test]
fn fig4_relative_accuracy_across_rs_configs() {
    // Paper Fig. 4: across four custom-instruction choices the
    // macro-model profile tracks the reference profile.
    let c = characterization();
    let estimator = RtlEnergyEstimator::new();
    let mut est = Vec::new();
    let mut reference = Vec::new();
    for cfg in RsConfig::ALL {
        let w = cfg.workload();
        est.push(
            c.model
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("estimates")
                .energy
                .as_picojoules(),
        );
        reference.push(
            estimator
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("reference runs")
                .total
                .as_picojoules(),
        );
    }
    assert!(
        (stats::spearman(&est, &reference) - 1.0).abs() < 1e-9,
        "profiles must rank identically: est {est:?} vs ref {reference:?}"
    );
    // Custom instructions must show the expected energy win.
    assert!(est[3] < est[0] / 2.0, "rs3 should halve rs0's energy");
}

#[test]
fn estimation_does_not_require_the_reference_path() {
    // The methodology's point: estimating a *new* extension requires only
    // ISS. Build an extension nowhere in the training suite and estimate.
    let mut ext = ExtensionBuilder::new("fresh");
    let mut g = DfGraph::new();
    let a = g.input("a", 24);
    let b = g.input("b", 24);
    let x = g.node(PrimOp::Xor, 24, &[a, b]).expect("graph");
    let m = g.node(PrimOp::MinU, 24, &[x, a]).expect("graph");
    g.output(m);
    ext.instruction("xmin", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    let ext = ext.build().expect("compiles");

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble(
            "movi a2, 500\nmovi a3, 0x123456\nl:\nxmin a4, a3, a2\nadd a3, a3, a4\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        )
        .expect("assembles");

    let c = characterization();
    let est = c
        .model
        .estimate(&program, &ext, ProcConfig::default())
        .expect("estimates");
    let reference = RtlEnergyEstimator::new()
        .estimate(&program, &ext, ProcConfig::default())
        .expect("reference runs");
    let err = est.energy.percent_error_vs(reference.total);
    assert!(err.abs() < 15.0, "unseen extension error {err:+.1}%");
}

#[test]
fn iss_and_reference_agree_on_statistics() {
    // Both paths share one executor and one timing rule set; their
    // statistics must be identical for every application.
    for w in apps::all() {
        let mut iss = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let fast = iss.run(200_000_000).expect("runs").stats;
        let slow = RtlEnergyEstimator::new()
            .estimate(w.program(), w.ext(), ProcConfig::default())
            .expect("runs")
            .stats;
        assert_eq!(fast, slow, "{} statistics diverged", w.name());
    }
}

#[test]
fn macro_model_is_additive_across_programs() {
    // Linearity: E(stats_a + stats_b) = E(stats_a) + E(stats_b). The
    // macro-model form guarantees it; this guards against nonlinear
    // terms sneaking into the variable extraction.
    let c = characterization();
    let w1 = apps::gcd();
    let w2 = apps::accumulate();
    let run = |w: &Workload| {
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(200_000_000).expect("runs").stats
    };
    let (s1, s2) = (run(&w1), run(&w2));
    let mut combined = s1.clone();
    for (a, b) in combined.class_cycles.iter_mut().zip(s2.class_cycles) {
        *a += b;
    }
    combined.icache_misses += s2.icache_misses;
    combined.dcache_misses += s2.dcache_misses;
    combined.uncached_fetches += s2.uncached_fetches;
    combined.interlocks += s2.interlocks;
    combined.ci_gpr_cycles += s2.ci_gpr_cycles;
    for (a, b) in combined.struct_activity.iter_mut().zip(s2.struct_activity) {
        *a += b;
    }
    let sum = c.model.energy_of_stats(&s1) + c.model.energy_of_stats(&s2);
    let whole = c.model.energy_of_stats(&combined);
    assert!((whole.as_picojoules() - sum.as_picojoules()).abs() < 1.0);
}
