//! End-to-end discovery pipeline tests: ground truth against the
//! hand-written extensions, byte-determinism, and the dse bridge.

use emx_discover::{bridge, discover, report::Report, DiscoverConfig};
use emx_sim::{Interp, ProcConfig};
use emx_tie::lang::parse_extension;
use emx_workloads::registry;

fn discover_rs1(jobs: usize) -> Report {
    let w = registry::by_name("rs1").expect("rs1 registered");
    let config = DiscoverConfig {
        jobs,
        ..DiscoverConfig::default()
    };
    discover(&w, &config).expect("discovery succeeds")
}

/// Does `cand` compile to a graph isomorphic to `hand` (same latency,
/// same resource vector, same function over the probe set)?
fn matches_hand(
    cand: &emx_discover::report::Candidate,
    hand: &emx_tie::CompiledInst,
    probe: impl Fn(u32, u32) -> u64,
) -> bool {
    let set = parse_extension(&cand.tie).expect("candidate parses");
    let inst = set.by_name(&cand.name).expect("candidate inst");
    if inst.latency() != hand.latency() || inst.resource_vector() != hand.resource_vector() {
        return false;
    }
    let mut st = set.initial_state();
    for a in 0..16u32 {
        for b in 0..16u32 {
            let got = inst.execute(a, b, 0, &mut st).unwrap().gpr;
            if got != Some(probe(a, b)) {
                return false;
            }
        }
    }
    true
}

#[test]
fn rediscovers_gf16_on_its_native_workload() {
    let report = discover_rs1(1);
    assert!(!report.candidates.is_empty(), "rs1 yields candidates");
    let hand = emx_workloads::exts::gf16();
    let gfmul = hand.by_name("gfmul").unwrap();
    let hit = report
        .candidates
        .iter()
        .find(|c| {
            matches_hand(c, gfmul, |a, b| {
                u64::from(emx_workloads::gf::mul(a as u8, b as u8))
            })
        })
        .expect("some candidate is isomorphic to hand-written gfmul");
    // The identity rediscovery prices identically to the hand design.
    assert_eq!(hit.latency, gfmul.latency());
    let set = parse_extension(&hit.tie).unwrap();
    assert_eq!(emx_dse::area_cost(&set), emx_dse::area_cost(&hand));
}

#[test]
fn rediscovers_mac16_on_the_accumulate_workload() {
    let w = registry::by_name("accumulate").unwrap();
    let report = discover(&w, &DiscoverConfig::default()).unwrap();
    let hand = emx_workloads::exts::mac16();
    let mac = hand.by_name("mac").unwrap();
    // `mac` writes state, not a GPR; compare structure only.
    let hit = report.candidates.iter().find(|c| {
        let set = parse_extension(&c.tie).expect("candidate parses");
        let inst = set.by_name(&c.name).expect("candidate inst");
        inst.latency() == mac.latency() && inst.resource_vector() == mac.resource_vector()
    });
    assert!(hit.is_some(), "a candidate matches the hand-written mac");
}

#[test]
fn reports_are_byte_identical_across_runs_and_jobs() {
    let a = discover_rs1(1).to_json().to_string();
    let b = discover_rs1(1).to_json().to_string();
    let c = discover_rs1(4).to_json().to_string();
    let d = discover_rs1(3).to_json().to_string();
    assert_eq!(a, b, "same run twice");
    assert_eq!(a, c, "jobs=4 matches jobs=1");
    assert_eq!(a, d, "jobs=3 matches jobs=1");
}

#[test]
fn report_json_round_trips() {
    let report = discover_rs1(1);
    let text = report.to_json().to_string();
    let back = Report::parse(&text).expect("report parses back");
    assert_eq!(back.to_json().to_string(), text);
}

#[test]
fn bridge_applies_top_candidates_and_preserves_function() {
    let report = discover_rs1(1);
    let base = registry::by_name("rs1").unwrap();
    for cand in report.candidates.iter().take(4) {
        let w = bridge::apply(&base, &[cand]).expect("apply succeeds");
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let r = sim.run(50_000_000).expect("rewritten workload simulates");
        assert!(r.halted);
        w.verify(sim.state())
            .unwrap_or_else(|e| panic!("`{}` broke the workload: {e}", cand.name));
    }
}

#[test]
fn candidate_space_base_point_is_the_unmodified_workload() {
    let report = discover_rs1(1);
    let space = bridge::candidate_space(&report, 6).expect("space builds");
    let enumerated = space.enumerate(None).expect("enumerates");
    let base = enumerated
        .candidates
        .iter()
        .find(|c| c.name == "base")
        .expect("space has a base point");
    let rs1 = registry::by_name("rs1").unwrap();
    assert_eq!(base.workload.program().len(), rs1.program().len());
}
