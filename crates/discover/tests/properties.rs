//! Property-based tests over randomly generated straight-line programs:
//! every mined pattern is convex and within the port budget, every
//! synthesized candidate round-trips through the TIE compiler, and every
//! applied rewrite preserves the program's observable results.

use proptest::prelude::*;

use emx_discover::dag::Src;
use emx_discover::mine::{ExternalInput, Funnel, MineConfig};
use emx_discover::{bridge, cfg, dag, discover, mine, DiscoverConfig};
use emx_sim::{Interp, ProcConfig};
use emx_tie::lang::parse_extension;
use emx_tie::ExtensionSet;
use emx_workloads::{MemCheck, Workload};

/// One random ALU instruction over registers `a2..=a7`.
#[derive(Debug, Clone)]
struct RandOp {
    kind: usize,
    rd: u8,
    rs: u8,
    rt: u8,
    imm: i32,
}

fn rand_op() -> impl Strategy<Value = RandOp> {
    (0usize..12, 2u8..8, 2u8..8, 2u8..8, 0i32..64).prop_map(|(kind, rd, rs, rt, imm)| RandOp {
        kind,
        rd,
        rs,
        rt,
        imm,
    })
}

fn line(op: &RandOp) -> String {
    let RandOp {
        rd, rs, rt, imm, ..
    } = *op;
    match op.kind {
        0 => format!("add a{rd}, a{rs}, a{rt}"),
        1 => format!("sub a{rd}, a{rs}, a{rt}"),
        2 => format!("xor a{rd}, a{rs}, a{rt}"),
        3 => format!("and a{rd}, a{rs}, a{rt}"),
        4 => format!("or a{rd}, a{rs}, a{rt}"),
        5 => format!("mul a{rd}, a{rs}, a{rt}"),
        6 => format!("mul16u a{rd}, a{rs}, a{rt}"),
        7 => format!("sltu a{rd}, a{rs}, a{rt}"),
        8 => format!("addi a{rd}, a{rs}, {imm}"),
        9 => format!("slli a{rd}, a{rs}, {}", imm % 32),
        10 => format!("extui a{rd}, a{rs}, {}, {}", imm % 8, 1 + imm % 8),
        _ => format!("movi a{rd}, {imm}"),
    }
}

/// Assembles seeds + a jump into a second block of random ops, with every
/// working register stored at the end (so its final value is observable).
fn random_program(seeds: &[u32], ops: &[RandOp]) -> String {
    let mut src = String::from(".data\nout: .space 24\n.text\n");
    for (i, v) in seeds.iter().enumerate() {
        src.push_str(&format!("movi a{}, {v}\n", i + 2));
    }
    src.push_str("j body\nbody:\n");
    for op in ops {
        src.push_str(&line(op));
        src.push('\n');
    }
    src.push_str("movi a8, out\n");
    for i in 0..6 {
        src.push_str(&format!("s32i a{}, {}(a8)\n", i + 2, 4 * i));
    }
    src.push_str("halt\n");
    src
}

/// Runs a workload to halt and returns the six stored words.
fn observed_outputs(w: &Workload) -> [u32; 6] {
    let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
    let r = sim.run(1_000_000).expect("straight-line program simulates");
    assert!(r.halted);
    let base = w.program().symbol("out").expect("out symbol");
    std::array::from_fn(|i| sim.state().mem.read_u32(base + 4 * i as u32))
}

proptest! {
    /// Every pattern the miner returns is convex (no dataflow path leaves
    /// and re-enters the member set) and uses at most two external GPR
    /// value inputs.
    #[test]
    fn mined_patterns_are_convex_and_port_bounded(
        seeds in proptest::collection::vec(0u32..100_000, 6),
        ops in proptest::collection::vec(rand_op(), 3..12),
    ) {
        let src = random_program(&seeds, &ops);
        let p = emx_isa::asm::Assembler::new().assemble(&src).expect("assembles");
        let ext = ExtensionSet::empty();
        let blocks = cfg::basic_blocks(&p, &ext, &vec![1; p.len()]);
        let config = MineConfig::default();
        for block in &blocks {
            let d = dag::build(&p, &ext, block);
            let mut funnel = Funnel::default();
            for pat in mine::mine_block(&d, &config, &mut funnel) {
                let members = &pat.members;
                prop_assert!(members.windows(2).all(|w| w[0] < w[1]), "sorted members");
                // Convexity: a transitive predecessor of a member that is
                // not itself a member must not depend on any member.
                for &i in members {
                    for j in d.deps[i].iter() {
                        if members.contains(&j) {
                            continue;
                        }
                        for &k in members {
                            prop_assert!(
                                !d.deps[j].get(k),
                                "path {k} -> {j} -> {i} leaves and re-enters the pattern"
                            );
                        }
                    }
                }
                // Port bound, recounted independently of the miner's own
                // interface summary.
                let mut gpr_srcs: Vec<&Src> = Vec::new();
                for &m in members {
                    for op in &d.nodes[m].ops {
                        let external = match op {
                            Src::Node { node, .. } => !members.contains(node),
                            Src::LiveGpr(_) => true,
                            Src::LiveState(_) | Src::Imm(_) => false,
                        };
                        if external && !gpr_srcs.contains(&op) {
                            if let Src::LiveState(_) = op {
                            } else {
                                gpr_srcs.push(op);
                            }
                        }
                    }
                }
                prop_assert!(
                    gpr_srcs.len() <= 2,
                    "pattern {members:?} needs {} GPR inputs",
                    gpr_srcs.len()
                );
                let reported = pat
                    .inputs
                    .iter()
                    .filter(|i| matches!(i, ExternalInput::Gpr(_)))
                    .count();
                prop_assert_eq!(reported, gpr_srcs.len(), "miner agrees with recount");
            }
        }
    }

    /// Every reported candidate's TIE text round-trips through the parser
    /// and compiler with the metrics the report claims, and rewriting the
    /// workload with it preserves all six observable outputs. Self-check
    /// is disabled so a rewrite bug cannot mask itself.
    #[test]
    fn candidates_round_trip_and_rewrites_preserve_outputs(
        seeds in proptest::collection::vec(0u32..100_000, 6),
        ops in proptest::collection::vec(rand_op(), 3..10),
    ) {
        let src = random_program(&seeds, &ops);
        let base = Workload::try_assemble(
            "prop", "random straight-line program", ExtensionSet::empty(), &src, Vec::new(),
        ).expect("assembles");
        let want = observed_outputs(&base);
        // Re-build with the observed outputs as the functional contract.
        let out = base.program().symbol("out").expect("out symbol");
        let checks: Vec<MemCheck> = want
            .iter()
            .enumerate()
            .map(|(i, &v)| MemCheck { addr: out + 4 * i as u32, expected: v })
            .collect();
        let base = Workload::try_assemble(
            "prop", "random straight-line program", ExtensionSet::empty(), &src, checks,
        ).expect("assembles");

        let config = DiscoverConfig { selfcheck: false, ..DiscoverConfig::default() };
        let report = discover(&base, &config).expect("discovery succeeds");
        for cand in &report.candidates {
            let set = parse_extension(&cand.tie).expect("candidate TIE parses");
            let inst = set.by_name(&cand.name).expect("mnemonic matches name");
            prop_assert_eq!(inst.latency(), cand.latency);
            prop_assert_eq!(set.iter().count(), 1, "one instruction per candidate");

            let rewritten = bridge::apply(&base, &[cand]).expect("rewrite succeeds");
            let got = observed_outputs(&rewritten);
            prop_assert_eq!(got, want, "candidate `{}` changed the outputs", &cand.name);
        }
    }

    /// The report is byte-identical across worker counts.
    #[test]
    fn discovery_is_deterministic_across_jobs(
        seeds in proptest::collection::vec(0u32..100_000, 6),
        ops in proptest::collection::vec(rand_op(), 3..8),
        jobs in 2usize..5,
    ) {
        let src = random_program(&seeds, &ops);
        let base = Workload::try_assemble(
            "prop", "random straight-line program", ExtensionSet::empty(), &src, Vec::new(),
        ).expect("assembles");
        let one = discover(&base, &DiscoverConfig { jobs: 1, selfcheck: false, ..DiscoverConfig::default() })
            .expect("jobs=1");
        let many = discover(&base, &DiscoverConfig { jobs, selfcheck: false, ..DiscoverConfig::default() })
            .expect("jobs=n");
        prop_assert_eq!(one.to_json().to_string(), many.to_json().to_string());
    }
}
