//! From report to design space: rewriting workloads and feeding `emx-dse`.
//!
//! The bridge closes the discovery loop. Given a parsed
//! [`Report`] and the base workload it was mined
//! from, [`apply`] produces a *derived* workload in which each selected
//! candidate's sites are collapsed — the fused instructions are deleted
//! and the site's anchor is replaced by one custom-instruction slot —
//! and [`candidate_space`] wraps the top candidates as an
//! [`emx_dse::CandidateSpace`] so the existing explorer prices every
//! subset of discovered instructions exactly like hand-written ones.
//!
//! # Rewrite soundness
//!
//! Site legality (checked at mining time, see [`crate::mine`]) makes the
//! per-site rewrite semantics-preserving: every value a non-member reads
//! is still produced at or before the point it is read, and the pattern's
//! only visible GPR def is the anchor's. Composing *disjoint* sites is
//! then also sound — elided member defs are, by construction, never
//! consumed outside their own pattern, so relocating them to their anchor
//! cannot change what another site reads. The claimer enforces
//! disjointness: sites are claimed greedily in candidate rank order and a
//! site is skipped if any member is already claimed.
//!
//! One hazard survives by design: a program that materializes a *text*
//! address (jump table, computed call) would break when compaction moves
//! code. Direct jumps, calls, branches, the entry point and text-range
//! symbols are all remapped; `l32r` literals live in the data segment and
//! are untouched; but an address cooked into data words cannot be found
//! statically. The discovery pipeline therefore re-simulates every
//! reported candidate's rewritten workload and drops any that fails
//! functional verification (see `rejected_check` in the funnel).

use std::collections::BTreeMap;

use emx_dse::{CandidateSpace, DesignOption, MAX_OPTIONS};
use emx_isa::{layout, CustomSlot, Format, Inst, Program, Reg};
use emx_tie::lang::parse_extension;
use emx_tie::ExtensionSet;
use emx_workloads::Workload;

use crate::report::{Candidate, Report};

/// Does this base-instruction format carry a *code* target that must be
/// remapped when instructions are deleted? (`l32r`'s target is a data
/// address; `jx`/`callx`/`ret` compute their target at run time.)
fn has_code_target(format: Format) -> bool {
    matches!(
        format,
        Format::Target | Format::BranchRr | Format::BranchRz | Format::BranchRi
    )
}

/// Rewrites `base` by applying the given candidates' sites.
///
/// Sites are claimed greedily in the order `picked` lists them (rank
/// order, when called from [`candidate_space`]); overlapping sites lose
/// to earlier claims. Non-anchor members are deleted, anchors become
/// custom slots, and all surviving code targets, the entry point and
/// text-segment symbols are remapped to the compacted layout. The
/// extension sets of the surviving original instructions and the applied
/// candidates are composed into one set (states unify by name).
///
/// Returns `base.clone()` when no site of any candidate applies.
///
/// # Errors
///
/// Returns a message when a site references instructions outside the
/// program, a candidate's TIE source fails to parse, or composition
/// fails (duplicate mnemonic / conflicting state widths).
pub fn apply(base: &Workload, picked: &[&Candidate]) -> Result<Workload, String> {
    let program = base.program();
    let text = program.text();
    let n = text.len();

    // Greedy non-overlapping site claiming, in the given order.
    let mut occupied = vec![false; n];
    let mut applications: Vec<(usize, &crate::report::Site)> = Vec::new();
    for (ci, cand) in picked.iter().enumerate() {
        for site in &cand.sites {
            if site.members.is_empty() || site.members.iter().any(|&m| m >= n) {
                return Err(format!(
                    "candidate `{}` has a site outside the {n}-instruction program",
                    cand.name
                ));
            }
            if site.members.iter().any(|&m| occupied[m]) {
                continue;
            }
            for &m in &site.members {
                occupied[m] = true;
            }
            applications.push((ci, site));
        }
    }
    if applications.is_empty() {
        return Ok(base.clone());
    }

    let mut keep = vec![true; n];
    let mut anchor_of: BTreeMap<usize, (usize, &crate::report::Site)> = BTreeMap::new();
    for &(ci, site) in &applications {
        let (anchor, elided) = site.members.split_last().expect("sites are non-empty");
        for &m in elided {
            keep[m] = false;
        }
        anchor_of.insert(*anchor, (ci, site));
    }

    // Which of the base extension's instructions survive the rewrite.
    let mut orig_names: Vec<String> = Vec::new();
    for (i, inst) in text.iter().enumerate() {
        if !keep[i] || anchor_of.contains_key(&i) {
            continue;
        }
        if let Inst::Custom(c) = inst {
            let spec = base
                .ext()
                .get(c.id)
                .ok_or_else(|| format!("program uses unknown custom id {}", c.id))?;
            if !orig_names.iter().any(|s| s == spec.name()) {
                orig_names.push(spec.name().to_owned());
            }
        }
    }
    orig_names.sort();

    // Parse each applied candidate and compose one extension set.
    let applied: Vec<usize> = {
        let mut seen: Vec<usize> = applications.iter().map(|&(ci, _)| ci).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    let mut cand_sets: Vec<(String, ExtensionSet)> = Vec::new();
    for &ci in &applied {
        let cand = picked[ci];
        let set = parse_extension(&cand.tie)
            .map_err(|e| format!("candidate `{}` failed to re-parse: {e}", cand.name))?;
        cand_sets.push((cand.name.clone(), set));
    }
    let suffix: String = applied
        .iter()
        .map(|&ci| format!("+{}", picked[ci].name))
        .collect();
    let orig_name_refs: Vec<&str> = orig_names.iter().map(String::as_str).collect();
    let cand_name_slices: Vec<[&str; 1]> = cand_sets.iter().map(|(n, _)| [n.as_str()]).collect();
    let mut picks: Vec<(&ExtensionSet, &[&str])> = vec![(base.ext(), &orig_name_refs)];
    for ((_, set), names) in cand_sets.iter().zip(&cand_name_slices) {
        picks.push((set, names));
    }
    let composed = ExtensionSet::compose(format!("{}{suffix}", base.name()), &picks)
        .map_err(|e| format!("extension composition failed: {e}"))?;
    let id_of = |name: &str| {
        composed
            .by_name(name)
            .map(|i| i.id())
            .ok_or_else(|| format!("`{name}` missing from composed extension set"))
    };

    // Compacted index of the first retained instruction at or after `i`.
    let mut prefix = vec![0usize; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + usize::from(keep[i]);
    }
    let text_base = program.text_base();
    let remap_addr = |addr: u32| -> Result<u32, String> {
        let off = addr.wrapping_sub(text_base);
        let idx = (off / layout::INST_BYTES) as usize;
        if !off.is_multiple_of(layout::INST_BYTES) || idx >= n {
            return Err(format!("code target 0x{addr:x} outside the text segment"));
        }
        Ok(text_base + (prefix[idx] as u32) * layout::INST_BYTES)
    };

    let mut new_text: Vec<Inst> = Vec::with_capacity(prefix[n]);
    for (i, inst) in text.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Some(&(ci, site)) = anchor_of.get(&i) {
            new_text.push(Inst::Custom(CustomSlot {
                id: id_of(&picked[ci].name)?,
                rd: Reg::new(site.rd),
                rs: Reg::new(site.rs),
                rt: Reg::new(site.rt),
                imm: 0,
            }));
            continue;
        }
        new_text.push(match inst {
            Inst::Base(b) => {
                let mut b = *b;
                if has_code_target(b.op.format()) {
                    b.target = remap_addr(b.target)?;
                }
                Inst::Base(b)
            }
            Inst::Custom(c) => {
                let name = base.ext().get(c.id).expect("checked above").name();
                Inst::Custom(CustomSlot {
                    id: id_of(name)?,
                    ..*c
                })
            }
        });
    }

    let text_end = text_base + (n as u32) * layout::INST_BYTES;
    let entry = remap_addr(program.entry())?;
    let symbols: BTreeMap<String, u32> = program
        .symbols()
        .iter()
        .map(|(name, &addr)| {
            let addr = if addr >= text_base && addr < text_end && addr % layout::INST_BYTES == 0 {
                remap_addr(addr)?
            } else {
                addr
            };
            Ok((name.clone(), addr))
        })
        .collect::<Result<_, String>>()?;

    let rewritten = Program::new(
        new_text,
        text_base,
        program.data().to_vec(),
        program.data_base(),
        entry,
        symbols,
    );
    Ok(Workload::from_parts(
        format!("{}{suffix}", base.name()),
        format!(
            "{} with discovered instructions{suffix}",
            base.description()
        ),
        rewritten,
        composed,
        base.checks().to_vec(),
    ))
}

/// Builds an [`emx_dse::CandidateSpace`] from a report's top candidates.
///
/// The space's options are the report's first `top` candidates (capped
/// at [`MAX_OPTIONS`]); its resolver rewrites the base workload with
/// exactly the selected subset, claiming sites in rank order. The
/// explorer's `base` point is the unmodified workload, so the discovered
/// space prices the hand-written extension configuration as-is alongside
/// every discovered subset.
///
/// # Errors
///
/// Returns a message when the report's workload is not in the registry,
/// a candidate's TIE source fails to parse, or any single candidate
/// fails to apply cleanly (pre-validated here so the resolver closure
/// cannot fail later).
pub fn candidate_space(report: &Report, top: usize) -> Result<CandidateSpace, String> {
    let base = emx_workloads::registry::by_name(&report.workload)
        .ok_or_else(|| format!("unknown workload `{}`", report.workload))?;
    let chosen: Vec<Candidate> = report
        .candidates
        .iter()
        .take(top.min(MAX_OPTIONS))
        .cloned()
        .collect();

    let mut options = Vec::with_capacity(chosen.len());
    for cand in &chosen {
        let ext = parse_extension(&cand.tie)
            .map_err(|e| format!("candidate `{}` failed to parse: {e}", cand.name))?;
        // Pre-validate: every single-candidate rewrite must succeed, so
        // the (infallible) resolver below can only hit the multi-select
        // compose path, which cannot fail for same-origin candidates.
        apply(&base, &[cand])?;
        options.push(DesignOption {
            name: cand.name.clone(),
            ext,
        });
    }

    let space_name = format!("discovered:{}", report.workload);
    Ok(CandidateSpace::new(space_name, options, move |sel| {
        let picked: Vec<&Candidate> = chosen.iter().filter(|c| sel.has_inst(&c.name)).collect();
        apply(&base, &picked).expect("pre-validated candidate failed to apply")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Site;
    use emx_sim::{Interp, ProcConfig};

    fn run_and_verify(w: &Workload) {
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let r = sim.run(50_000_000).expect("workload simulates");
        assert!(r.halted, "workload must halt");
        w.verify(sim.state()).unwrap();
    }

    /// A candidate that fuses `x*y` then `+z` into one instruction, with
    /// a hand-placed site over a tiny synthetic workload.
    fn muladd_candidate(members: Vec<usize>, rs: u8, rt: u8, rd: u8) -> Candidate {
        Candidate {
            name: "ci1".to_owned(),
            tie: "extension ci1 {\n    inst ci1(g0: gpr(32), g1: gpr(32), out d: gpr) {\n        \
                  v0 : 32 = g0 * g1;\n        v1 : 32 = v0 + g0;\n        d = v1;\n    }\n}\n"
                .to_owned(),
            latency: 2,
            area: 0.0,
            op_nodes: 2,
            base_cost: 2,
            weight: 1,
            saved_cycles_est: 0,
            sites: vec![Site {
                members,
                rs,
                rt,
                rd,
                weight: 1,
            }],
        }
    }

    fn tiny_workload() -> Workload {
        // a2 = 7, a3 = 5; a4 = a2*a3; a5 = a4+a2; store a5.
        Workload::assemble(
            "tiny",
            "mul-add micro-benchmark",
            ExtensionSet::empty(),
            "    .text\n    movi a2, 7\n    movi a3, 5\n    \
             mul a4, a2, a3\n    add a5, a4, a2\n    movi a6, 0x40000\n    s32i a5, 0(a6)\n    halt\n",
            vec![emx_workloads::MemCheck {
                addr: 0x40000,
                expected: 42,
            }],
        )
    }

    #[test]
    fn apply_rewrites_and_preserves_semantics() {
        let base = tiny_workload();
        let cand = muladd_candidate(vec![2, 3], 2, 3, 5);
        let w = apply(&base, &[&cand]).unwrap();
        assert_eq!(w.program().len(), base.program().len() - 1);
        assert_eq!(w.name(), "tiny+ci1");
        run_and_verify(&w);
    }

    #[test]
    fn apply_remaps_branch_targets_past_deleted_members() {
        // Loop twice over the fused pair; the backward branch target must
        // survive compaction.
        let base = Workload::assemble(
            "loopy",
            "looped mul-add",
            ExtensionSet::empty(),
            "    .text\n    movi a2, 7\n    movi a3, 5\n    \
             movi a7, 2\nloop:\n    mul a4, a2, a3\n    add a5, a4, a2\n    addi a7, a7, -1\n    \
             bnez a7, loop\n    movi a6, 0x40000\n    s32i a5, 0(a6)\n    halt\n",
            vec![emx_workloads::MemCheck {
                addr: 0x40000,
                expected: 42,
            }],
        );
        let cand = muladd_candidate(vec![3, 4], 2, 3, 5);
        let w = apply(&base, &[&cand]).unwrap();
        run_and_verify(&w);
    }

    #[test]
    fn apply_with_no_candidates_returns_the_base() {
        let base = tiny_workload();
        let w = apply(&base, &[]).unwrap();
        assert_eq!(w.name(), "tiny");
        assert_eq!(w.program().len(), base.program().len());
    }

    #[test]
    fn overlapping_sites_lose_to_earlier_claims() {
        let base = tiny_workload();
        let a = muladd_candidate(vec![2, 3], 2, 3, 5);
        let mut b = muladd_candidate(vec![3, 4], 4, 2, 5);
        b.name = "ci2".to_owned();
        b.tie = b.tie.replace("ci1", "ci2");
        let w = apply(&base, &[&a, &b]).unwrap();
        // Only `a` applies; `b`'s site shares member 3.
        assert_eq!(w.name(), "tiny+ci1");
        run_and_verify(&w);
    }
}
