//! Lowering mined patterns into TIE-language extensions.
//!
//! Each legal [`SitePattern`] is emitted as a single-instruction
//! `extension` in the `tie::lang` surface syntax and compiled with the
//! ordinary TIE compiler, so a discovered candidate gets its latency,
//! resource vector and Eq.-4 area through exactly the same pipeline as a
//! hand-written extension.
//!
//! The emission is *width-exact*: every dataflow node is produced by one
//! pinned assignment (`vK : W = …;`), and references at matching width
//! elaborate as pure aliases. A pattern consisting of one custom
//! instruction therefore synthesizes to a graph isomorphic to the
//! original — identical latency, resource vector, and area — which is
//! what makes the `gf16`/`mac16` ground-truth rediscovery checks exact
//! rather than approximate.
//!
//! The canonical text (emitted under the placeholder name [`CANON_NAME`])
//! doubles as the dedup key: the emission walks members in index order
//! and names parameters, wires and tables in first-use order, so two
//! isomorphic patterns mined at different sites produce byte-identical
//! canonical text.

use std::collections::HashMap;
use std::fmt::Write as _;

use emx_hwlib::{NodeDesc, PrimOp};
use emx_isa::{Inst, Opcode};
use emx_tie::{lang, ExtensionSet};

use crate::dag::{BlockDag, Def, Src};
use crate::mine::{ExternalInput, SitePattern};

/// Placeholder instruction/extension name used for canonical emission.
pub const CANON_NAME: &str = "cand";

/// A pattern lowered and compiled as a TIE extension.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// Canonical TIE text (extension and instruction named
    /// [`CANON_NAME`]) — also the isomorphism dedup key.
    pub tie: String,
    /// Compiler-derived latency in cycles.
    pub latency: u8,
    /// Eq.-4-derived area in net-equivalents ([`emx_dse::area_cost`]).
    pub area: f64,
    /// Combinational component count of the compiled graph.
    pub op_nodes: usize,
}

/// Rewrites a canonical TIE text to use `name` for the extension and its
/// instruction (the inverse of emitting under [`CANON_NAME`]).
pub fn rename(canonical: &str, name: &str) -> String {
    canonical
        .replacen(
            &format!("extension {CANON_NAME} {{"),
            &format!("extension {name} {{"),
            1,
        )
        .replacen(&format!("inst {CANON_NAME}("), &format!("inst {name}("), 1)
}

struct Emitter<'a> {
    dag: &'a BlockDag,
    ext: &'a ExtensionSet,
    /// `(member, out)` → value/param name, for in-pattern producers.
    val: HashMap<(usize, usize), String>,
    /// External GPR source → parameter name (linear: a pattern has at
    /// most two GPR inputs).
    externals: Vec<(Src, String)>,
    /// State name → input parameter name.
    state_params: Vec<(String, String)>,
    /// name → bit width, for alias-vs-coerce decisions.
    width: HashMap<String, u8>,
    /// Deduped tables in first-use order.
    tables: Vec<(Vec<u64>, u8)>,
    stmts: Vec<String>,
    next_v: usize,
}

impl Emitter<'_> {
    fn fresh(&mut self, width: u8) -> String {
        let name = format!("v{}", self.next_v);
        self.next_v += 1;
        self.width.insert(name.clone(), width);
        name
    }

    fn stmt(&mut self, width: u8, expr: &str) -> String {
        let name = self.fresh(width);
        self.stmts.push(format!("{name} : {width} = {expr};"));
        name
    }

    /// Value name for one member operand: an in-pattern producer's value
    /// or an external input's parameter. External state sources resolve
    /// by state *name* — the pattern reads the architectural state value
    /// at the anchor, whoever produced it.
    fn src_name(&self, src: &Src) -> Result<&str, String> {
        if let Src::Node { node, out } = src {
            if let Some(name) = self.val.get(&(*node, *out)) {
                return Ok(name);
            }
            if let Def::State(n) = &self.dag.nodes[*node].defs[*out] {
                return self.state_param(n);
            }
        }
        if let Src::LiveState(n) = src {
            return self.state_param(n);
        }
        self.externals
            .iter()
            .find(|(s, _)| s == src)
            .map(|(_, n)| n.as_str())
            .ok_or_else(|| "operand resolves to neither a member nor an input".to_owned())
    }

    fn state_param(&self, state: &str) -> Result<&str, String> {
        self.state_params
            .iter()
            .find(|(n, _)| n == state)
            .map(|(_, p)| p.as_str())
            .ok_or_else(|| format!("state `{state}` has no input parameter"))
    }

    /// Operand name for a register source of a base member.
    fn reg_name(&self, m: usize, k: usize) -> Result<&str, String> {
        self.src_name(&self.dag.nodes[m].ops[k])
    }

    fn emit_base(&mut self, m: usize) -> Result<(), String> {
        let Inst::Base(b) = &self.dag.nodes[m].inst else {
            unreachable!("emit_base on a custom node");
        };
        let a = |e: &mut Self| e.reg_name(m, 0).map(str::to_owned);
        let two = |e: &mut Self| -> Result<(String, String), String> {
            Ok((e.reg_name(m, 0)?.to_owned(), e.reg_name(m, 1)?.to_owned()))
        };
        let imm_u32 = b.imm as u32;
        let name = match b.op {
            Opcode::Add => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} + {y}"))
            }
            Opcode::Sub => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} - {y}"))
            }
            Opcode::And => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} & {y}"))
            }
            Opcode::Or => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} | {y}"))
            }
            Opcode::Xor => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} ^ {y}"))
            }
            Opcode::Sltu => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("ltu({x}, {y})"))
            }
            Opcode::Mul => {
                let (x, y) = two(self)?;
                self.stmt(32, &format!("{x} * {y}"))
            }
            Opcode::Mul16u => {
                let (x, y) = two(self)?;
                let lo_x = {
                    let n = self.fresh(16);
                    self.stmts.push(format!("{n} = slice({x}, 0, 16);"));
                    n
                };
                let lo_y = {
                    let n = self.fresh(16);
                    self.stmts.push(format!("{n} = slice({y}, 0, 16);"));
                    n
                };
                self.stmt(32, &format!("{lo_x} * {lo_y}"))
            }
            Opcode::Addi => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} + {imm_u32}"))
            }
            Opcode::Addmi => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} + {}", imm_u32 << 8))
            }
            Opcode::Andi => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} & {imm_u32}"))
            }
            Opcode::Ori => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} | {imm_u32}"))
            }
            Opcode::Xori => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} ^ {imm_u32}"))
            }
            Opcode::Sltiu => {
                let x = a(self)?;
                self.stmt(32, &format!("ltu({x}, {imm_u32})"))
            }
            Opcode::Slli => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} << {}", imm_u32 & 31))
            }
            Opcode::Srli => {
                let x = a(self)?;
                self.stmt(32, &format!("{x} >> {}", imm_u32 & 31))
            }
            Opcode::Extui => {
                let x = a(self)?;
                let sa = imm_u32 & 31;
                let len = u32::from(b.len).clamp(1, 32);
                let n = self.fresh(len as u8);
                self.stmts.push(format!("{n} = slice({x}, {sa}, {len});"));
                n
            }
            Opcode::Neg => {
                let x = a(self)?;
                self.stmt(32, &format!("0 - {x}"))
            }
            Opcode::Not => {
                let x = a(self)?;
                self.stmt(32, &format!("~{x}"))
            }
            Opcode::Mov => a(self)?, // pure wiring: alias the source
            Opcode::Movi => self.stmt(32, &imm_u32.to_string()),
            other => return Err(format!("`{other}` has no TIE lowering")),
        };
        self.val.insert((m, 0), name);
        Ok(())
    }

    /// Inline-expands a custom member's compiled graph, node by node.
    fn emit_custom(&mut self, m: usize) -> Result<(), String> {
        let Inst::Custom(slot) = &self.dag.nodes[m].inst else {
            unreachable!("emit_custom on a base node");
        };
        let spec = self
            .ext
            .get(slot.id)
            .ok_or_else(|| format!("unknown custom id {}", slot.id))?;
        let g = spec.graph();
        // Graph-node index → value name.
        let mut local: HashMap<usize, String> = HashMap::new();
        let mut next_input = 0usize;
        for id in g.ids() {
            match g.node_desc(id) {
                NodeDesc::Input { width, .. } => {
                    let k = next_input;
                    next_input += 1;
                    let name = match &self.dag.nodes[m].ops[k] {
                        Src::Imm(v) => {
                            // Bake the encoding immediate in as a constant.
                            let masked = emx_hwlib::mask(*v as u64, width);
                            self.stmt(width, &masked.to_string())
                        }
                        src => {
                            let from = self.src_name(src)?.to_owned();
                            self.coerce(&from, width)
                        }
                    };
                    local.insert(id.index(), name);
                }
                NodeDesc::Const { value, width } => {
                    let name = self.stmt(width, &value.to_string());
                    local.insert(id.index(), name);
                }
                NodeDesc::Op { op, width, inputs } => {
                    let arg = |i: usize| local[&inputs[i].index()].clone();
                    let (expr, pinned) = match op {
                        PrimOp::Mul => (format!("{} * {}", arg(0), arg(1)), true),
                        PrimOp::Add => (format!("{} + {}", arg(0), arg(1)), true),
                        PrimOp::Sub => (format!("{} - {}", arg(0), arg(1)), true),
                        PrimOp::And => (format!("{} & {}", arg(0), arg(1)), true),
                        PrimOp::Or => (format!("{} | {}", arg(0), arg(1)), true),
                        PrimOp::Xor => (format!("{} ^ {}", arg(0), arg(1)), true),
                        PrimOp::Not => (format!("~{}", arg(0)), true),
                        PrimOp::Shl => (format!("{} << {}", arg(0), arg(1)), true),
                        PrimOp::Shr => (format!("{} >> {}", arg(0), arg(1)), true),
                        PrimOp::CmpLtu => (format!("ltu({}, {})", arg(0), arg(1)), true),
                        PrimOp::CmpLts => (format!("lts({}, {})", arg(0), arg(1)), true),
                        PrimOp::CmpEq => (format!("eq({}, {})", arg(0), arg(1)), true),
                        PrimOp::MinU => (format!("minu({}, {})", arg(0), arg(1)), true),
                        PrimOp::MaxU => (format!("maxu({}, {})", arg(0), arg(1)), true),
                        PrimOp::Mux => (format!("mux({}, {}, {})", arg(0), arg(1), arg(2)), true),
                        PrimOp::RedAnd => (format!("redand({})", arg(0)), true),
                        PrimOp::RedOr => (format!("redor({})", arg(0)), true),
                        PrimOp::RedXor => (format!("redxor({})", arg(0)), true),
                        PrimOp::Slice { lsb } => {
                            (format!("slice({}, {}, {})", arg(0), lsb, width), false)
                        }
                        PrimOp::Pack { lsb } => {
                            (format!("pack({}, {}, {})", arg(0), arg(1), lsb), true)
                        }
                        PrimOp::TieMult => (format!("tmul({}, {})", arg(0), arg(1)), true),
                        PrimOp::TieMac => {
                            (format!("mac({}, {}, {})", arg(0), arg(1), arg(2)), true)
                        }
                        PrimOp::TieAdd => {
                            (format!("add3({}, {}, {})", arg(0), arg(1), arg(2)), true)
                        }
                        PrimOp::TieCsaSum => {
                            (format!("csa_sum({}, {}, {})", arg(0), arg(1), arg(2)), true)
                        }
                        PrimOp::TieCsaCarry => (
                            format!("csa_carry({}, {}, {})", arg(0), arg(1), arg(2)),
                            true,
                        ),
                        PrimOp::TableLookup { table_index } => {
                            let t = &g.tables()[table_index];
                            let tn = self.table_name(t.entries(), t.width());
                            (format!("{tn}[{}]", arg(0)), true)
                        }
                        PrimOp::MulS | PrimOp::Sar => {
                            return Err(format!("`{op}` has no TIE-language form"))
                        }
                        other => return Err(format!("`{other}` has no TIE-language form")),
                    };
                    let name = if pinned {
                        self.stmt(width, &expr)
                    } else {
                        let n = self.fresh(width);
                        self.stmts.push(format!("{n} = {expr};"));
                        n
                    };
                    local.insert(id.index(), name);
                }
            }
        }
        // Map the member's outputs (in `output_binds` order) to the names
        // of the graph's designated output nodes.
        for (out, oid) in g.output_ids().iter().enumerate() {
            self.val.insert((m, out), local[&oid.index()].clone());
        }
        Ok(())
    }

    /// References `src` at `want` bits: a pure alias at equal width, or a
    /// pinned alias statement (a zero-lsb slice) otherwise.
    fn coerce(&mut self, src: &str, want: u8) -> String {
        if self.width[src] == want {
            src.to_owned()
        } else {
            let n = self.fresh(want);
            self.stmts.push(format!("{n} : {want} = {src};"));
            n
        }
    }

    fn table_name(&mut self, entries: &[u64], width: u8) -> String {
        let pos = self
            .tables
            .iter()
            .position(|(e, w)| e == entries && *w == width)
            .unwrap_or_else(|| {
                self.tables.push((entries.to_vec(), width));
                self.tables.len() - 1
            });
        format!("t{pos}")
    }
}

/// Emits the pattern as TIE-language text under `name`.
///
/// # Errors
///
/// Returns a message when the pattern contains an instruction the TIE
/// surface language cannot express (the miner's `allowed` predicate
/// should prevent this; an error here is counted as `rejected_synth`).
pub fn emit_tie(
    dag: &BlockDag,
    p: &SitePattern,
    ext: &ExtensionSet,
    name: &str,
) -> Result<String, String> {
    let mut em = Emitter {
        dag,
        ext,
        val: HashMap::new(),
        externals: Vec::new(),
        state_params: Vec::new(),
        width: HashMap::new(),
        tables: Vec::new(),
        stmts: Vec::new(),
        next_v: 0,
    };

    // Parameters, in pattern-input order. GPR params are named g0/g1 and
    // bind the rs/rt operand buses in declaration order; state params
    // are s0, s1, …
    let state_width = |n: &str| -> Result<u8, String> {
        ext.states()
            .iter()
            .find(|s| s.name() == n)
            .map(|s| s.width())
            .ok_or_else(|| format!("unknown state `{n}`"))
    };
    let mut params: Vec<String> = Vec::new();
    let mut used_states: Vec<String> = Vec::new();
    let mut gi = 0usize;
    let mut si = 0usize;
    for input in &p.inputs {
        match input {
            ExternalInput::Gpr(src) => {
                let w = gpr_param_width(dag, p, ext, src)?;
                let pname = format!("g{gi}");
                gi += 1;
                params.push(format!("{pname}: gpr({w})"));
                em.width.insert(pname.clone(), w);
                em.externals.push((src.clone(), pname));
            }
            ExternalInput::State(sname) => {
                let pname = format!("s{si}");
                si += 1;
                params.push(format!("{pname}: state({sname})"));
                em.width.insert(pname.clone(), state_width(sname)?);
                em.state_params.push((sname.clone(), pname));
                if !used_states.contains(sname) {
                    used_states.push(sname.clone());
                }
            }
        }
    }
    for (sname, ..) in &p.state_outputs {
        if !used_states.contains(sname) {
            used_states.push(sname.clone());
        }
    }
    if p.gpr_output.is_some() {
        params.push("out d: gpr".to_owned());
    }
    for (oi, (sname, ..)) in p.state_outputs.iter().enumerate() {
        params.push(format!("out o{oi}: state({sname})"));
    }

    // Emit the members in index order.
    for &m in &p.members {
        match &dag.nodes[m].inst {
            Inst::Base(_) => em.emit_base(m)?,
            Inst::Custom(_) => em.emit_custom(m)?,
        }
    }

    // Output drives (aliases).
    let mut tail: Vec<String> = Vec::new();
    if p.gpr_output.is_some() {
        let anchor = *p.members.last().expect("non-empty pattern");
        let out_idx = dag.nodes[anchor]
            .defs
            .iter()
            .position(|d| matches!(d, Def::Gpr(_)))
            .ok_or_else(|| "anchor has no GPR def".to_owned())?;
        tail.push(format!("d = {};", em.val[&(anchor, out_idx)]));
    }
    for (oi, (_, member, out)) in p.state_outputs.iter().enumerate() {
        tail.push(format!("o{oi} = {};", em.val[&(*member, *out)]));
    }

    // Assemble the extension text.
    let mut text = String::new();
    let _ = writeln!(text, "extension {name} {{");
    for sname in &used_states {
        let _ = writeln!(text, "    state {sname} : {};", state_width(sname)?);
    }
    for (ti, (entries, w)) in em.tables.iter().enumerate() {
        let vals: Vec<String> = entries.iter().map(u64::to_string).collect();
        let _ = writeln!(
            text,
            "    table t{ti}[{}] : {w} = {{ {} }};",
            entries.len(),
            vals.join(", ")
        );
    }
    let _ = writeln!(text, "    inst {name}({}) {{", params.join(", "));
    for s in em.stmts.iter().chain(tail.iter()) {
        let _ = writeln!(text, "        {s}");
    }
    let _ = writeln!(text, "    }}");
    text.push('}');
    Ok(text)
}

/// Width to declare for an external GPR parameter: the widest width any
/// member consumes it at (32 whenever a base instruction reads it;
/// narrower only when every consumer is a custom-graph input).
fn gpr_param_width(
    dag: &BlockDag,
    p: &SitePattern,
    ext: &ExtensionSet,
    src: &Src,
) -> Result<u8, String> {
    let mut w = 0u8;
    for &m in &p.members {
        for (k, op) in dag.nodes[m].ops.iter().enumerate() {
            if op != src {
                continue;
            }
            let need = match &dag.nodes[m].inst {
                Inst::Base(_) => 32,
                Inst::Custom(slot) => {
                    let spec = ext
                        .get(slot.id)
                        .ok_or_else(|| format!("unknown custom id {}", slot.id))?;
                    let g = spec.graph();
                    g.width(g.input_ids()[k])
                }
            };
            w = w.max(need);
        }
    }
    if w == 0 {
        return Err("external GPR input is never consumed".to_owned());
    }
    Ok(w)
}

/// Emits, compiles and measures one pattern.
///
/// # Errors
///
/// Returns a message when emission or TIE compilation fails; callers
/// count these in the funnel as `rejected_synth`.
pub fn synthesize(
    dag: &BlockDag,
    p: &SitePattern,
    ext: &ExtensionSet,
) -> Result<Synthesized, String> {
    let tie = emit_tie(dag, p, ext, CANON_NAME)?;
    let set = lang::parse_extension(&tie).map_err(|e| e.to_string())?;
    let inst = set
        .by_name(CANON_NAME)
        .ok_or_else(|| "compiled extension lost its instruction".to_owned())?;
    Ok(Synthesized {
        latency: inst.latency(),
        op_nodes: inst.graph().op_nodes().len(),
        area: emx_dse::area_cost(&set),
        tie,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;
    use emx_tie::ExtensionSet;

    use crate::mine::{mine_block, Funnel, MineConfig};

    fn mine(src: &str, ext: &ExtensionSet) -> (BlockDag, Vec<SitePattern>) {
        let mut asm = Assembler::new();
        ext.register_mnemonics(&mut asm);
        let p = asm.assemble(src).unwrap();
        let blocks = crate::cfg::basic_blocks(&p, ext, &vec![1; p.len()]);
        let dag = crate::dag::build(&p, ext, &blocks[0]);
        let mut funnel = Funnel::default();
        let found = mine_block(&dag, &MineConfig::default(), &mut funnel);
        (dag, found)
    }

    #[test]
    fn fused_base_chain_computes_the_same_function() {
        let ext = ExtensionSet::empty();
        let (dag, found) = mine("and a4, a2, a3\nxor a5, a4, a3\ns32i a5, 0(a1)\nhalt", &ext);
        let p = found.iter().find(|p| p.members == vec![0, 1]).unwrap();
        let s = synthesize(&dag, p, &ext).unwrap();
        let set = lang::parse_extension(&s.tie).unwrap();
        let inst = set.by_name(CANON_NAME).unwrap();
        let mut st = set.initial_state();
        let got = inst.execute(0xffff_00ff, 0x0f0f_0f0f, 0, &mut st).unwrap();
        assert_eq!(got.gpr, Some((0xffff_00ff & 0x0f0f_0f0f) ^ 0x0f0f_0f0f));
    }

    #[test]
    fn gfmul_identity_pattern_is_isomorphic_to_gf16() {
        let ext = emx_workloads::exts::gf16();
        let (dag, found) = mine("gfmul a4, a2, a3\ns32i a4, 0(a1)\nhalt", &ext);
        let p = found.iter().find(|p| p.members == vec![0]).unwrap();
        let s = synthesize(&dag, p, &ext).unwrap();
        let hand = ext.by_name("gfmul").unwrap();
        let mined = lang::parse_extension(&s.tie).unwrap();
        let inst = mined.by_name(CANON_NAME).unwrap();
        assert_eq!(inst.latency(), hand.latency());
        assert_eq!(inst.resource_vector(), hand.resource_vector());
        assert_eq!(s.area, emx_dse::area_cost(&ext));
        // Same function, too.
        let mut st = mined.initial_state();
        for a in 0..16u32 {
            for b in 0..16u32 {
                let got = inst.execute(a, b, 0, &mut st).unwrap().gpr;
                let want = u64::from(emx_workloads::gf::mul(a as u8, b as u8));
                assert_eq!(got, Some(want), "gf16 {a}*{b}");
            }
        }
    }

    #[test]
    fn mac_identity_pattern_matches_mac16() {
        let ext = emx_workloads::exts::mac16();
        let (dag, found) = mine("mac a2, a3\nhalt", &ext);
        let p = found.iter().find(|p| p.members == vec![0]).unwrap();
        let s = synthesize(&dag, p, &ext).unwrap();
        let hand = ext.by_name("mac").unwrap();
        let mined = lang::parse_extension(&s.tie).unwrap();
        let inst = mined.by_name(CANON_NAME).unwrap();
        assert_eq!(inst.latency(), hand.latency());
        assert_eq!(inst.resource_vector(), hand.resource_vector());
    }

    #[test]
    fn rename_swaps_both_name_sites() {
        let t =
            "extension cand {\n    inst cand(g0: gpr(32), out d: gpr) {\n        d = g0;\n    }\n}";
        let r = rename(t, "ci1");
        assert!(r.contains("extension ci1 {"));
        assert!(r.contains("inst ci1(g0"));
        assert!(!r.contains("cand"));
    }
}
