//! Basic-block recovery and register liveness over an assembled program.
//!
//! Discovery replays a workload once to obtain per-instruction execution
//! counts ([`emx_sim::observe::exec_counts`]), then partitions the text
//! into basic blocks here. Each block carries its dynamic execution
//! weight (how often it was entered) and the set of registers live at
//! its exit, which the miner needs to decide whether an instruction's
//! result is observable outside a candidate pattern.
//!
//! Liveness is a standard backward fixpoint over the block graph. Blocks
//! whose successors cannot be resolved statically (`jx`, `callx`, `ret`,
//! and calls, whose eventual return path is not modeled) are treated as
//! having every register live at exit — conservative, never unsound.

use emx_isa::{BaseClass, Inst, Opcode, Program, Reg};
use emx_tie::ExtensionSet;

/// Bitmask over the 16 general-purpose registers.
pub type RegSet = u16;

/// Every register live — the conservative bottom for unknown successors.
pub const ALL_LIVE: RegSet = 0xffff;

/// One basic block of the program text.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction (inclusive).
    pub start: usize,
    /// Index one past the last instruction (exclusive).
    pub end: usize,
    /// Dynamic entry count: how many times the block leader retired.
    pub weight: u64,
    /// Registers live at block exit.
    pub live_out: RegSet,
}

fn bit(r: Reg) -> RegSet {
    1 << r.index()
}

/// Registers read / written by one instruction, resolving custom slots
/// through the extension set's operand signatures.
pub fn uses_defs(inst: &Inst, ext: &ExtensionSet) -> (RegSet, RegSet) {
    match inst {
        Inst::Base(b) => {
            let mut uses = 0;
            for r in b.reads() {
                uses |= bit(r);
            }
            (uses, b.writes().map_or(0, bit))
        }
        Inst::Custom(c) => {
            let Some(spec) = ext.get(c.id) else {
                return (0, 0);
            };
            let sig = spec.signature();
            let mut uses = 0;
            if sig.gpr_reads >= 1 {
                uses |= bit(c.rs);
            }
            if sig.gpr_reads >= 2 {
                uses |= bit(c.rt);
            }
            (uses, if sig.writes_gpr { bit(c.rd) } else { 0 })
        }
    }
}

fn ends_block(inst: &Inst) -> bool {
    match inst {
        Inst::Base(b) => {
            matches!(b.op.base_class(), BaseClass::Jump | BaseClass::Branch) || b.op == Opcode::Halt
        }
        Inst::Custom(_) => false,
    }
}

/// Successors of a block ending with `last`, or `None` when they cannot
/// be resolved statically (indirect jumps, calls, returns).
fn successors(program: &Program, end: usize) -> Option<Vec<usize>> {
    let index_of = |target: u32| -> Option<usize> {
        let base = program.text_base();
        if target < base || !(target - base).is_multiple_of(emx_isa::program::layout::INST_BYTES) {
            return None;
        }
        let i = ((target - base) / emx_isa::program::layout::INST_BYTES) as usize;
        (i < program.len()).then_some(i)
    };
    let Inst::Base(b) = &program.text()[end - 1] else {
        // A block can only end on a custom instruction by running into
        // the next leader; fall through.
        return Some(if end < program.len() {
            vec![end]
        } else {
            vec![]
        });
    };
    match b.op {
        Opcode::Halt => Some(vec![]),
        Opcode::J => Some(index_of(b.target).into_iter().collect()),
        Opcode::Jx | Opcode::Callx | Opcode::Ret | Opcode::Call => None,
        _ if b.op.base_class() == BaseClass::Branch => {
            let mut s: Vec<usize> = index_of(b.target).into_iter().collect();
            if end < program.len() {
                s.push(end);
            }
            Some(s)
        }
        // Block ended because the next instruction is a leader.
        _ => Some(if end < program.len() {
            vec![end]
        } else {
            vec![]
        }),
    }
}

/// Partitions `program` into basic blocks, attaching dynamic weights from
/// `counts` (per-instruction retired execution counts, indexed like the
/// text) and live-out register sets.
pub fn basic_blocks(program: &Program, ext: &ExtensionSet, counts: &[u64]) -> Vec<Block> {
    let n = program.len();
    if n == 0 {
        return Vec::new();
    }

    // Leaders: entry, control-transfer targets, and fall-through points.
    let mut leader = vec![false; n];
    leader[0] = true;
    let entry =
        ((program.entry() - program.text_base()) / emx_isa::program::layout::INST_BYTES) as usize;
    if entry < n {
        leader[entry] = true;
    }
    for (i, inst) in program.text().iter().enumerate() {
        if let Inst::Base(b) = inst {
            if matches!(b.op.base_class(), BaseClass::Jump | BaseClass::Branch) {
                let base = program.text_base();
                if b.target >= base {
                    let t = ((b.target - base) / emx_isa::program::layout::INST_BYTES) as usize;
                    if t < n {
                        leader[t] = true;
                    }
                }
            }
        }
        if ends_block(inst) && i + 1 < n {
            leader[i + 1] = true;
        }
    }

    let mut blocks = Vec::new();
    let mut start = 0usize;
    for i in 0..n {
        let end_here = ends_block(&program.text()[i]) || i + 1 == n || leader[i + 1];
        if end_here {
            blocks.push(Block {
                start,
                end: i + 1,
                weight: counts.get(start).copied().unwrap_or(0),
                live_out: 0,
            });
            start = i + 1;
        }
    }

    // Backward liveness fixpoint over the block graph.
    let block_of: Vec<usize> = {
        let mut m = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut m[b.start..b.end] {
                *slot = bi;
            }
        }
        m
    };
    let mut use_set = vec![0 as RegSet; blocks.len()];
    let mut def_set = vec![0 as RegSet; blocks.len()];
    let mut succs: Vec<Option<Vec<usize>>> = Vec::with_capacity(blocks.len());
    for (bi, b) in blocks.iter().enumerate() {
        for i in b.start..b.end {
            let (u, d) = uses_defs(&program.text()[i], ext);
            use_set[bi] |= u & !def_set[bi];
            def_set[bi] |= d;
        }
        succs
            .push(successors(program, b.end).map(|s| s.into_iter().map(|i| block_of[i]).collect()));
    }
    let mut live_in = vec![0 as RegSet; blocks.len()];
    let mut live_out = vec![0 as RegSet; blocks.len()];
    loop {
        let mut changed = false;
        for bi in (0..blocks.len()).rev() {
            let out = match &succs[bi] {
                None => ALL_LIVE,
                Some(s) => s.iter().fold(0, |acc, &j| acc | live_in[j]),
            };
            let inn = use_set[bi] | (out & !def_set[bi]);
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (bi, b) in blocks.iter_mut().enumerate() {
        b.live_out = live_out[bi];
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    #[test]
    fn splits_a_counted_loop_into_blocks() {
        let p = Assembler::new()
            .assemble("movi a2, 10\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let counts = [1u64, 10, 10, 1];
        let blocks = basic_blocks(&p, &ext, &counts);
        assert_eq!(blocks.len(), 3);
        assert_eq!(
            (blocks[0].start, blocks[0].end, blocks[0].weight),
            (0, 1, 1)
        );
        assert_eq!(
            (blocks[1].start, blocks[1].end, blocks[1].weight),
            (1, 3, 10)
        );
        assert_eq!(
            (blocks[2].start, blocks[2].end, blocks[2].weight),
            (3, 4, 1)
        );
    }

    #[test]
    fn liveness_flows_backward_through_the_loop() {
        let p = Assembler::new()
            .assemble("movi a2, 10\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let blocks = basic_blocks(&p, &ext, &[0; 4]);
        // a2 is live out of the first block (the loop reads it) and out
        // of the loop body (the back edge re-reads it).
        assert_ne!(blocks[0].live_out & (1 << 2), 0);
        assert_ne!(blocks[1].live_out & (1 << 2), 0);
        // Nothing is live after halt.
        assert_eq!(blocks[2].live_out, 0);
    }

    #[test]
    fn unknown_successors_are_all_live() {
        let p = Assembler::new()
            .assemble("movi a2, 1\njx a2\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let blocks = basic_blocks(&p, &ext, &[0; 3]);
        assert_eq!(blocks[0].live_out, ALL_LIVE);
    }
}
