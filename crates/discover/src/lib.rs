//! # emx-discover — automatic custom-instruction discovery
//!
//! The paper's flow assumes someone already *chose* the candidate
//! extension units; its contribution is pricing them quickly. This crate
//! closes the remaining loop — it derives the candidates from the
//! workload itself, in the style of automatic instruction-set extension
//! (Atasu/Pozzi/Ienne; Kavvadias & Nikolaidis):
//!
//! * [`mod@cfg`] — recovers basic blocks from the assembled program and
//!   weights them with dynamic execution counts from one micro-op ISS
//!   replay ([`emx_sim::observe::exec_counts`]),
//! * [`dag`] — lifts each block into a def-use DAG whose nodes are
//!   instructions (custom instructions stay single nodes, so discovery
//!   composes with hand-written extensions),
//! * [`mine`] — enumerates every *legal* connected pattern: convex,
//!   within the encoding's two GPR read ports and one visible GPR def
//!   (at the anchor), with no memory/control members and no observable
//!   reordering of state effects,
//! * [`synth`] — lowers each pattern to TIE surface text, compiles it
//!   with the production [`emx_tie`] compiler, and prices it with the
//!   Eq.-4 area model ([`emx_dse::area_cost`]); the canonical text doubles
//!   as the isomorphism key that merges equivalent patterns found at
//!   different sites,
//! * [`report`] — the versioned `emx.discover-report/1` artifact,
//! * [`bridge`] — rewrites the workload (fused members deleted, anchors
//!   replaced by custom slots, code targets re-laid-out) and wraps the
//!   ranked candidates as an [`emx_dse::CandidateSpace`], so `emx-dse
//!   --candidates` prices discovered instructions exactly like
//!   hand-written ones.
//!
//! The pipeline is deterministic end to end: mining visits node sets in
//! a fixed order, dedup and ranking break ties on canonical text, and
//! parallel mining (`jobs`) partitions by block with a merge in block
//! order — the report is byte-identical for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod cfg;
pub mod dag;
pub mod mine;
pub mod report;
pub mod synth;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use emx_isa::Inst;
use emx_sim::{observe, Interp, ProcConfig, SimError};
use emx_tie::ExtensionSet;
use emx_workloads::Workload;

use crate::cfg::Block;
use crate::dag::{BlockDag, Def, Src};
use crate::mine::{ExternalInput, Funnel, MineConfig, SitePattern};
use crate::report::{Candidate, Report, Site};
use crate::synth::Synthesized;

/// A discovery run's knobs.
#[derive(Debug, Clone)]
pub struct DiscoverConfig {
    /// Mining limits (pattern size, GPR ports, per-block cap).
    pub mine: MineConfig,
    /// Cycle budget for the counting replay and each self-check run.
    pub max_cycles: u64,
    /// Worker threads for per-block mining. The report is byte-identical
    /// for any value.
    pub jobs: usize,
    /// Re-simulate each candidate's rewritten workload and drop any that
    /// fails functional verification. Costs one ISS run per candidate.
    pub selfcheck: bool,
}

impl Default for DiscoverConfig {
    fn default() -> Self {
        DiscoverConfig {
            mine: MineConfig::default(),
            max_cycles: 50_000_000,
            jobs: 1,
            selfcheck: true,
        }
    }
}

/// Why a discovery run failed.
#[derive(Debug)]
pub enum DiscoverError {
    /// The named workload is not in the registry (an input error).
    UnknownWorkload(String),
    /// A report artifact was malformed (an input error).
    Report(String),
    /// The counting replay failed — the workload did not halt within
    /// budget or hit a simulator fault.
    Sim(SimError),
    /// An invariant the pipeline relies on broke (a bug, not an input
    /// error).
    Internal(String),
}

impl fmt::Display for DiscoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscoverError::UnknownWorkload(name) => write!(f, "unknown workload `{name}`"),
            DiscoverError::Report(msg) => write!(f, "bad discover report: {msg}"),
            DiscoverError::Sim(e) => write!(f, "workload replay failed: {e}"),
            DiscoverError::Internal(msg) => write!(f, "internal discovery error: {msg}"),
        }
    }
}

impl Error for DiscoverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DiscoverError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

/// Everything mining one block yields: its funnel counters and, per
/// legal-and-synthesizable pattern, the canonical text (dedup key), the
/// compiled metrics and the concrete site.
struct BlockOut {
    funnel: Funnel,
    found: Vec<Found>,
}

struct Found {
    key: String,
    synth: Synthesized,
    site: Site,
    base_cost: u64,
    has_custom: bool,
}

fn reg_of_input(dag: &BlockDag, src: &Src) -> u8 {
    match src {
        Src::LiveGpr(r) => r.index() as u8,
        Src::Node { node, out } => match &dag.nodes[*node].defs[*out] {
            Def::Gpr(r) => r.index() as u8,
            Def::State(_) => unreachable!("GPR input classified by producing def"),
        },
        Src::LiveState(_) | Src::Imm(_) => unreachable!("not a GPR source"),
    }
}

fn site_of(dag: &BlockDag, ext: &ExtensionSet, block: &Block, pat: &SitePattern) -> Found {
    let mut gprs = pat.inputs.iter().filter_map(|i| match i {
        ExternalInput::Gpr(src) => Some(reg_of_input(dag, src)),
        ExternalInput::State(_) => None,
    });
    let rs = gprs.next().unwrap_or(0);
    let rt = gprs.next().unwrap_or(0);
    let rd = pat.gpr_output.map_or(0, |r| r.index() as u8);
    let base_cost: u64 = pat
        .members
        .iter()
        .map(|&m| match &dag.nodes[m].inst {
            Inst::Base(_) => 1,
            Inst::Custom(c) => u64::from(ext.get(c.id).expect("lifted from this set").latency()),
        })
        .sum();
    let has_custom = pat
        .members
        .iter()
        .any(|&m| matches!(dag.nodes[m].inst, Inst::Custom(_)));
    Found {
        key: String::new(),
        synth: Synthesized {
            tie: String::new(),
            latency: 0,
            area: 0.0,
            op_nodes: 0,
        },
        site: Site {
            members: pat.members.iter().map(|m| block.start + m).collect(),
            rs,
            rt,
            rd,
            weight: block.weight,
        },
        base_cost,
        has_custom,
    }
}

fn mine_one(
    program: &emx_isa::Program,
    ext: &ExtensionSet,
    block: &Block,
    config: &MineConfig,
) -> BlockOut {
    let dag = dag::build(program, ext, block);
    let mut funnel = Funnel::default();
    let pats = mine::mine_block(&dag, config, &mut funnel);
    let mut found = Vec::with_capacity(pats.len());
    for pat in &pats {
        match synth::synthesize(&dag, pat, ext) {
            Ok(synth) => {
                let mut f = site_of(&dag, ext, block, pat);
                f.key = synth.tie.clone();
                f.synth = synth;
                found.push(f);
            }
            Err(_) => funnel.rejected_synth += 1,
        }
    }
    BlockOut { funnel, found }
}

/// Per-canonical-pattern aggregation across all sites.
struct Agg {
    synth: Synthesized,
    base_cost: u64,
    has_custom: bool,
    weight: u64,
    saved: u64,
    sites: Vec<Site>,
}

/// Runs the full discovery pipeline over one workload.
///
/// Replays the workload once to weight its basic blocks, mines every
/// block for legal patterns, synthesizes and deduplicates them, ranks
/// by estimated dynamic cycles saved, and (unless disabled)
/// re-simulates each survivor's rewritten workload as a functional
/// self-check. The result is deterministic — byte-identical across runs
/// and across `jobs` values.
///
/// # Errors
///
/// [`DiscoverError::Sim`] if the counting replay fails (the workload
/// must halt within `config.max_cycles`).
pub fn discover(workload: &Workload, config: &DiscoverConfig) -> Result<Report, DiscoverError> {
    let program = workload.program();
    let ext = workload.ext();
    let (_, counts) = observe::exec_counts(program, ext, ProcConfig::default(), config.max_cycles)
        .map_err(DiscoverError::Sim)?;
    let blocks = cfg::basic_blocks(program, ext, &counts);

    // Mine blocks — independently, so worker count cannot affect the
    // result: outputs land in a slot per block and merge in block order.
    let jobs = config.jobs.max(1).min(blocks.len().max(1));
    let outs: Vec<BlockOut> = if jobs <= 1 {
        blocks
            .iter()
            .map(|b| mine_one(program, ext, b, &config.mine))
            .collect()
    } else {
        let slots: Mutex<Vec<Option<BlockOut>>> =
            Mutex::new((0..blocks.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= blocks.len() {
                        break;
                    }
                    let out = mine_one(program, ext, &blocks[i], &config.mine);
                    slots.lock().expect("mining worker panicked")[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .expect("mining worker panicked")
            .into_iter()
            .map(|o| o.expect("every block mined"))
            .collect()
    };

    // Merge: dedup isomorphic patterns on canonical text, accumulate
    // weights and per-site savings estimates.
    let mut funnel = Funnel::default();
    let mut legal: u64 = 0;
    let mut aggs: BTreeMap<String, Agg> = BTreeMap::new();
    for out in outs {
        funnel.absorb(&out.funnel);
        legal += out.found.len() as u64;
        for f in out.found {
            let saving = f.base_cost.saturating_sub(u64::from(f.synth.latency));
            let agg = aggs.entry(f.key).or_insert_with(|| Agg {
                synth: f.synth,
                base_cost: 0,
                has_custom: false,
                weight: 0,
                saved: 0,
                sites: Vec::new(),
            });
            agg.base_cost = agg.base_cost.max(f.base_cost);
            agg.has_custom |= f.has_custom;
            agg.weight += f.site.weight;
            agg.saved += f.site.weight * saving;
            agg.sites.push(f.site);
        }
    }

    // Rank: biggest estimated saving first, then bigger fused patterns,
    // then canonical text. Keep anything that saves cycles, plus
    // identity rediscoveries of existing custom instructions (saving 0
    // by construction — they're the ground-truth check, not noise).
    let mut ranked: Vec<(String, Agg)> = aggs
        .into_iter()
        .filter(|(_, a)| a.saved > 0 || a.has_custom)
        .collect();
    ranked.sort_by(|(ka, a), (kb, b)| {
        b.saved
            .cmp(&a.saved)
            .then(b.synth.op_nodes.cmp(&a.synth.op_nodes))
            .then(ka.cmp(kb))
    });

    // Self-check: the rewrite must preserve the workload's verified
    // results. Catches the one statically undetectable hazard (computed
    // text addresses) and any pipeline bug, at one ISS run per
    // candidate.
    let mut survivors: Vec<(String, Agg)> = Vec::with_capacity(ranked.len());
    for (key, agg) in ranked {
        if config.selfcheck && !selfcheck_ok(workload, config.max_cycles, &key, &agg) {
            funnel.rejected_check += 1;
            continue;
        }
        survivors.push((key, agg));
    }

    let candidates = survivors
        .into_iter()
        .enumerate()
        .map(|(i, (key, agg))| {
            let name = format!("ci{}", i + 1);
            let tie = synth::rename(&key, &name);
            Candidate {
                name,
                tie,
                latency: agg.synth.latency,
                area: agg.synth.area,
                op_nodes: agg.synth.op_nodes,
                base_cost: agg.base_cost,
                weight: agg.weight,
                saved_cycles_est: agg.saved,
                sites: agg.sites,
            }
        })
        .collect();

    Ok(Report {
        workload: workload.name().to_owned(),
        config: config.mine.clone(),
        max_cycles: config.max_cycles,
        funnel,
        legal,
        candidates,
    })
}

fn selfcheck_ok(workload: &Workload, max_cycles: u64, key: &str, agg: &Agg) -> bool {
    let cand = Candidate {
        name: synth::CANON_NAME.to_owned(),
        tie: key.to_owned(),
        latency: agg.synth.latency,
        area: agg.synth.area,
        op_nodes: agg.synth.op_nodes,
        base_cost: agg.base_cost,
        weight: agg.weight,
        saved_cycles_est: agg.saved,
        sites: agg.sites.clone(),
    };
    let Ok(rewritten) = bridge::apply(workload, &[&cand]) else {
        return false;
    };
    let mut sim = Interp::new(rewritten.program(), rewritten.ext(), ProcConfig::default());
    match sim.run(max_cycles) {
        Ok(r) if r.halted => rewritten.verify(sim.state()).is_ok(),
        _ => false,
    }
}
