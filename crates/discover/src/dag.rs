//! Per-block def-use DAGs over instructions.
//!
//! Each executed basic block is lifted into a dataflow DAG whose nodes
//! are the block's instructions. Operands resolve to the producing node
//! (an in-block def), to a live-in register or custom-state value, or to
//! an immediate baked into the instruction encoding. Custom instructions
//! appear as *single* nodes — their internal [`emx_hwlib::DfGraph`] is
//! only expanded at synthesis time — so mining over an already-extended
//! processor rediscovers (and can grow) the extensions it ships with.
//!
//! Memory operations, control transfers and the handful of base ops the
//! synthesizer has no TIE expression for (signed shifts, sign extension,
//! conditional moves, …) are kept in the DAG as *barrier* nodes: their
//! defs participate in dependence edges, but they can never join a
//! candidate pattern.

use emx_isa::{BaseInst, CustomSlot, Inst, Opcode, Reg};
use emx_tie::{CompiledInst, ExtensionSet, InputBind, OutputBind};

use crate::cfg::Block;

/// Base opcodes the synthesizer can lower into TIE dataflow. Everything
/// else is a barrier node.
pub fn base_op_allowed(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Sltu
            | Opcode::Mul
            | Opcode::Mul16u
            | Opcode::Addi
            | Opcode::Addmi
            | Opcode::Andi
            | Opcode::Ori
            | Opcode::Xori
            | Opcode::Sltiu
            | Opcode::Slli
            | Opcode::Srli
            | Opcode::Extui
            | Opcode::Neg
            | Opcode::Not
            | Opcode::Mov
            | Opcode::Movi
    )
}

/// Can the synthesizer re-express this compiled custom instruction? The
/// TIE surface language has no form for signed multiply or arithmetic
/// shift, so graphs containing them cannot round-trip through synthesis.
pub fn custom_allowed(spec: &CompiledInst) -> bool {
    use emx_hwlib::{NodeDesc, PrimOp};
    let g = spec.graph();
    g.ids().all(|id| {
        !matches!(
            g.node_desc(id),
            NodeDesc::Op {
                op: PrimOp::MulS | PrimOp::Sar,
                ..
            }
        )
    })
}

/// One value source of a node operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Src {
    /// Output `out` of in-block node `node` (block-local index).
    Node {
        /// Block-local producer index.
        node: usize,
        /// Which of the producer's outputs (base defs have one; custom
        /// instructions enumerate outputs in `output_binds` order).
        out: usize,
    },
    /// Register value live into the block.
    LiveGpr(Reg),
    /// Custom-state value live into the block (state name).
    LiveState(String),
    /// Immediate operand baked into the encoding (custom `Imm` binds).
    Imm(i64),
}

/// One output (definition) of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Def {
    /// Writes a general-purpose register.
    Gpr(Reg),
    /// Writes a custom state register (by name).
    State(String),
}

/// One instruction lifted into the block DAG.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Absolute index into the program text.
    pub index: usize,
    /// The instruction itself.
    pub inst: Inst,
    /// May this node join a candidate pattern?
    pub allowed: bool,
    /// Value operands, in the instruction's semantic order (for custom
    /// nodes: `input_binds` order, with `Imm` inline).
    pub ops: Vec<Src>,
    /// Definitions, in output order.
    pub defs: Vec<Def>,
}

impl DagNode {
    /// The GPR this node writes, if any.
    pub fn gpr_def(&self) -> Option<Reg> {
        self.defs.iter().find_map(|d| match d {
            Def::Gpr(r) => Some(*r),
            Def::State(_) => None,
        })
    }

    /// Names of the states this node reads or writes.
    pub fn touched_states(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .ops
            .iter()
            .filter_map(|s| match s {
                Src::LiveState(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        out.extend(self.defs.iter().filter_map(|d| match d {
            Def::State(n) => Some(n.as_str()),
            _ => None,
        }));
        out
    }
}

/// A dense bitset sized to one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bits(Vec<u64>);

impl Bits {
    /// The empty set over `n` slots.
    pub fn empty(n: usize) -> Self {
        Bits(vec![0; n.div_ceil(64)])
    }

    /// Inserts `i`.
    pub fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Bits) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    /// Does `self ∩ other` contain anything?
    pub fn intersects(&self, other: &Bits) -> bool {
        self.0.iter().zip(&other.0).any(|(a, b)| a & b != 0)
    }

    /// Iterates set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| (bits & (1 << b) != 0).then_some(w * 64 + b))
        })
    }
}

/// A basic block lifted to a def-use DAG.
#[derive(Debug, Clone)]
pub struct BlockDag {
    /// The source block (absolute indices, weight, live-out).
    pub block: Block,
    /// Nodes; block-local index `i` is instruction `block.start + i`.
    pub nodes: Vec<DagNode>,
    /// Transitive dataflow predecessors of each node (block-local).
    pub deps: Vec<Bits>,
    /// Undirected dataflow adjacency (direct edges only).
    pub adj: Vec<Bits>,
}

fn base_operand_regs(b: &BaseInst) -> Vec<Reg> {
    // `BaseInst::reads` already yields operands in semantic order.
    b.reads()
}

fn custom_node(slot: &CustomSlot, spec: &CompiledInst, ext: &ExtensionSet) -> (Vec<Src>, Vec<Def>) {
    let state_name = |sid: emx_tie::StateId| ext.states()[sid.index()].name().to_owned();
    let mut ops = Vec::new();
    for bind in spec.input_binds() {
        ops.push(match bind {
            InputBind::GprS => Src::LiveGpr(slot.rs),
            InputBind::GprT => Src::LiveGpr(slot.rt),
            InputBind::Imm => Src::Imm(i64::from(slot.imm)),
            InputBind::State(sid) => Src::LiveState(state_name(*sid)),
        });
    }
    let defs = spec
        .output_binds()
        .iter()
        .map(|bind| match bind {
            OutputBind::Gpr => Def::Gpr(slot.rd),
            OutputBind::State(sid) => Def::State(state_name(*sid)),
        })
        .collect();
    (ops, defs)
}

/// Lifts one block of `program` into its def-use DAG.
pub fn build(program: &emx_isa::Program, ext: &ExtensionSet, block: &Block) -> BlockDag {
    let n = block.end - block.start;
    let mut nodes: Vec<DagNode> = Vec::with_capacity(n);
    let mut last_gpr: [Option<(usize, usize)>; 16] = [None; 16];
    let mut last_state: std::collections::HashMap<String, (usize, usize)> =
        std::collections::HashMap::new();

    for local in 0..n {
        let index = block.start + local;
        let inst = program.text()[index];
        let (mut ops, defs, allowed) = match &inst {
            Inst::Base(b) => {
                let ops: Vec<Src> = base_operand_regs(b).into_iter().map(Src::LiveGpr).collect();
                let defs = b.writes().map(Def::Gpr).into_iter().collect();
                (ops, defs, base_op_allowed(b.op))
            }
            Inst::Custom(c) => match ext.get(c.id) {
                Some(spec) => {
                    let (ops, defs) = custom_node(c, spec, ext);
                    (ops, defs, custom_allowed(spec))
                }
                None => (Vec::new(), Vec::new(), false),
            },
        };
        // Resolve the placeholder live-in sources against in-block defs.
        for op in &mut ops {
            match op {
                Src::LiveGpr(r) => {
                    if let Some((node, out)) = last_gpr[r.index()] {
                        *op = Src::Node { node, out };
                    }
                }
                Src::LiveState(s) => {
                    if let Some(&(node, out)) = last_state.get(s.as_str()) {
                        *op = Src::Node { node, out };
                    }
                }
                _ => {}
            }
        }
        for (out, def) in defs.iter().enumerate() {
            match def {
                Def::Gpr(r) => last_gpr[r.index()] = Some((local, out)),
                Def::State(s) => {
                    last_state.insert(s.clone(), (local, out));
                }
            }
        }
        nodes.push(DagNode {
            index,
            inst,
            allowed,
            ops,
            defs,
        });
    }

    let mut deps: Vec<Bits> = Vec::with_capacity(n);
    let mut adj: Vec<Bits> = vec![Bits::empty(n); n];
    for (i, node) in nodes.iter().enumerate() {
        let mut d = Bits::empty(n);
        for op in &node.ops {
            if let Src::Node { node: j, .. } = op {
                d.set(*j);
                let pred = deps[*j].clone();
                d.union_with(&pred);
                adj[i].set(*j);
                adj[*j].set(i);
            }
        }
        deps.push(d);
    }

    BlockDag {
        block: block.clone(),
        nodes,
        deps,
        adj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    fn dag_of(src: &str) -> BlockDag {
        let p = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let blocks = crate::cfg::basic_blocks(&p, &ext, &vec![1; p.len()]);
        build(&p, &ext, &blocks[0])
    }

    #[test]
    fn chains_defs_to_uses() {
        let d = dag_of("add a2, a3, a4\nxor a5, a2, a3\nhalt");
        assert_eq!(
            d.nodes[0].ops,
            vec![Src::LiveGpr(Reg::new(3)), Src::LiveGpr(Reg::new(4))]
        );
        assert_eq!(
            d.nodes[1].ops,
            vec![Src::Node { node: 0, out: 0 }, Src::LiveGpr(Reg::new(3))]
        );
        assert!(d.deps[1].get(0));
        assert!(d.adj[0].get(1));
    }

    #[test]
    fn barriers_are_tracked_but_not_allowed() {
        let d = dag_of("l32i a2, 0(a1)\nadd a3, a2, a2\nhalt");
        assert!(!d.nodes[0].allowed);
        assert!(d.nodes[1].allowed);
        // The load's def still feeds the add.
        assert_eq!(d.nodes[1].ops[0], Src::Node { node: 0, out: 0 });
    }

    #[test]
    fn custom_nodes_carry_state_edges() {
        let ext = emx_workloads::exts::mac16();
        let mut asm = Assembler::new();
        ext.register_mnemonics(&mut asm);
        let p = asm
            .assemble("mac a2, a3\nmac a4, a5\nrdacc a6\nhalt")
            .unwrap();
        let blocks = crate::cfg::basic_blocks(&p, &ext, &[1; 4]);
        let d = build(&p, &ext, &blocks[0]);
        // Second mac reads the first mac's accumulator write.
        assert_eq!(d.nodes[1].ops[2], Src::Node { node: 0, out: 0 });
        assert_eq!(d.nodes[2].ops[0], Src::Node { node: 1, out: 0 });
        assert_eq!(d.nodes[0].defs, vec![Def::State("acc".to_owned())]);
        assert!(d.nodes[0].allowed && d.nodes[2].allowed);
    }
}
