//! The versioned `emx.discover-report/1` artifact.
//!
//! A discovery run serializes to one JSON document: the workload it was
//! mined from, the mining configuration, the enumeration funnel (what
//! was enumerated and why candidates were dropped), and the ranked
//! candidate list. Each candidate carries its complete TIE-language
//! source, its compiled metrics (latency, Eq.-4 area, component count)
//! and every concrete site it can be applied at — everything `emx-dse
//! --candidates` needs to rebuild the design space without re-mining.
//!
//! The document is fully deterministic: candidates are ranked by
//! (estimated saved cycles, canonical text), sites by text index, and
//! the writer emits keys in a fixed order, so byte-identical runs
//! produce byte-identical reports.

use emx_obs::json::Value;

use crate::mine::{Funnel, MineConfig};

/// Schema identifier of the report artifact.
pub const SCHEMA: &str = "emx.discover-report/1";

/// One concrete application site of a candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Absolute text indices of the fused instructions, ascending. The
    /// last member is the anchor the custom instruction replaces.
    pub members: Vec<usize>,
    /// First GPR operand register (`rs`) at this site.
    pub rs: u8,
    /// Second GPR operand register (`rt`); 0 when unused.
    pub rt: u8,
    /// Destination register (`rd`); 0 when the pattern writes no GPR.
    pub rd: u8,
    /// Dynamic execution count of the site's block.
    pub weight: u64,
}

impl Site {
    /// The anchor instruction index (the site's last member).
    pub fn anchor(&self) -> usize {
        *self.members.last().expect("sites are non-empty")
    }
}

/// One ranked discovered candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Rank-derived name (`ci1`, `ci2`, …) — also the TIE mnemonic.
    pub name: String,
    /// Complete TIE-language extension source for this candidate.
    pub tie: String,
    /// Compiler-derived latency in cycles.
    pub latency: u8,
    /// Eq.-4-derived area in net-equivalents.
    pub area: f64,
    /// Combinational components in the compiled graph.
    pub op_nodes: usize,
    /// Cycles one pattern execution costs on the base machine (sum of
    /// member costs).
    pub base_cost: u64,
    /// Summed dynamic weight over all sites.
    pub weight: u64,
    /// Estimated dynamic cycles saved: `weight × (base_cost − latency)`
    /// summed per site.
    pub saved_cycles_est: u64,
    /// Every site the candidate applies at, ascending by anchor.
    pub sites: Vec<Site>,
}

/// A full discovery run, ready for serialization.
#[derive(Debug, Clone)]
pub struct Report {
    /// Full name of the mined workload (e.g. `reed_solomon_rs1`).
    pub workload: String,
    /// Mining limits the run used.
    pub config: MineConfig,
    /// Simulation budget used for the counting replay.
    pub max_cycles: u64,
    /// Enumeration/drop counters.
    pub funnel: Funnel,
    /// Legal patterns found (pre-dedup).
    pub legal: u64,
    /// Ranked candidates (post-dedup).
    pub candidates: Vec<Candidate>,
}

impl Report {
    /// Serializes the report to its canonical JSON document.
    pub fn to_json(&self) -> Value {
        let mut root = Value::object();
        root.set("schema", SCHEMA);
        root.set("workload", self.workload.as_str());

        let mut config = Value::object();
        config.set("max_nodes", self.config.max_nodes);
        config.set("max_gpr_inputs", self.config.max_gpr_inputs);
        config.set("block_cap", self.config.block_cap);
        config.set("max_cycles", self.max_cycles);
        root.set("config", config);

        let mut funnel = Value::object();
        funnel.set("blocks", self.funnel.blocks);
        funnel.set("enumerated", self.funnel.enumerated);
        funnel.set("rejected_convex", self.funnel.rejected_convex);
        funnel.set("rejected_io", self.funnel.rejected_io);
        funnel.set("rejected_order", self.funnel.rejected_order);
        funnel.set("rejected_dead", self.funnel.rejected_dead);
        funnel.set("rejected_synth", self.funnel.rejected_synth);
        funnel.set("rejected_check", self.funnel.rejected_check);
        funnel.set("capped_blocks", self.funnel.capped_blocks);
        funnel.set("legal", self.legal);
        funnel.set("unique", self.candidates.len());
        root.set("funnel", funnel);

        let mut list = Value::array();
        for c in &self.candidates {
            let mut jc = Value::object();
            jc.set("name", c.name.as_str());
            jc.set("tie", c.tie.as_str());
            jc.set("latency", u64::from(c.latency));
            jc.set("area", c.area);
            jc.set("op_nodes", c.op_nodes);
            jc.set("base_cost", c.base_cost);
            jc.set("weight", c.weight);
            jc.set("saved_cycles_est", c.saved_cycles_est);
            let mut sites = Value::array();
            for s in &c.sites {
                let mut js = Value::object();
                let mut members = Value::array();
                for &m in &s.members {
                    members.push(m);
                }
                js.set("members", members);
                js.set("anchor", s.anchor());
                js.set("rs", u64::from(s.rs));
                js.set("rt", u64::from(s.rt));
                js.set("rd", u64::from(s.rd));
                js.set("weight", s.weight);
                sites.push(js);
            }
            jc.set("sites", sites);
            list.push(jc);
        }
        root.set("candidates", list);
        root
    }

    /// Parses a serialized report, validating the schema tag.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn parse(text: &str) -> Result<Report, String> {
        let v = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let str_field = |v: &Value, k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let u64_field = |v: &Value, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing numeric field `{k}`"))
        };
        let schema = str_field(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!("schema is `{schema}`, expected `{SCHEMA}`"));
        }
        let config_v = v.get("config").ok_or("missing `config`")?;
        let config = MineConfig {
            max_nodes: u64_field(config_v, "max_nodes")? as usize,
            max_gpr_inputs: u64_field(config_v, "max_gpr_inputs")? as usize,
            block_cap: u64_field(config_v, "block_cap")? as usize,
        };
        let funnel_v = v.get("funnel").ok_or("missing `funnel`")?;
        let funnel = Funnel {
            blocks: u64_field(funnel_v, "blocks")?,
            enumerated: u64_field(funnel_v, "enumerated")?,
            rejected_convex: u64_field(funnel_v, "rejected_convex")?,
            rejected_io: u64_field(funnel_v, "rejected_io")?,
            rejected_order: u64_field(funnel_v, "rejected_order")?,
            rejected_dead: u64_field(funnel_v, "rejected_dead")?,
            rejected_synth: u64_field(funnel_v, "rejected_synth")?,
            rejected_check: u64_field(funnel_v, "rejected_check")?,
            capped_blocks: u64_field(funnel_v, "capped_blocks")?,
        };
        let mut candidates = Vec::new();
        for jc in v
            .get("candidates")
            .and_then(Value::as_array)
            .ok_or("missing `candidates` array")?
        {
            let mut sites = Vec::new();
            for js in jc
                .get("sites")
                .and_then(Value::as_array)
                .ok_or("candidate missing `sites`")?
            {
                let members = js
                    .get("members")
                    .and_then(Value::as_array)
                    .ok_or("site missing `members`")?
                    .iter()
                    .map(|m| m.as_u64().map(|x| x as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or("non-numeric site member")?;
                if members.is_empty() {
                    return Err("site with no members".to_owned());
                }
                sites.push(Site {
                    members,
                    rs: u64_field(js, "rs")? as u8,
                    rt: u64_field(js, "rt")? as u8,
                    rd: u64_field(js, "rd")? as u8,
                    weight: u64_field(js, "weight")?,
                });
            }
            candidates.push(Candidate {
                name: str_field(jc, "name")?,
                tie: str_field(jc, "tie")?,
                latency: u64_field(jc, "latency")? as u8,
                area: jc
                    .get("area")
                    .and_then(Value::as_f64)
                    .ok_or("missing numeric field `area`")?,
                op_nodes: u64_field(jc, "op_nodes")? as usize,
                base_cost: u64_field(jc, "base_cost")?,
                weight: u64_field(jc, "weight")?,
                saved_cycles_est: u64_field(jc, "saved_cycles_est")?,
                sites,
            });
        }
        Ok(Report {
            workload: str_field(&v, "workload")?,
            config,
            max_cycles: u64_field(v.get("config").ok_or("missing `config`")?, "max_cycles")?,
            funnel,
            legal: u64_field(funnel_v, "legal")?,
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            workload: "reed_solomon_rs1".to_owned(),
            config: MineConfig::default(),
            max_cycles: 1_000_000,
            funnel: Funnel {
                blocks: 7,
                enumerated: 100,
                rejected_convex: 5,
                rejected_io: 10,
                rejected_order: 3,
                rejected_dead: 2,
                rejected_synth: 1,
                rejected_check: 0,
                capped_blocks: 0,
            },
            legal: 79,
            candidates: vec![Candidate {
                name: "ci1".to_owned(),
                tie: "extension ci1 { inst ci1(g0: gpr(32), out d: gpr) { d = g0; } }".to_owned(),
                latency: 1,
                area: 123.5,
                op_nodes: 2,
                base_cost: 3,
                weight: 400,
                saved_cycles_est: 800,
                sites: vec![Site {
                    members: vec![10, 12, 13],
                    rs: 2,
                    rt: 3,
                    rd: 5,
                    weight: 400,
                }],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let text = r.to_json().to_string();
        let back = Report::parse(&text).unwrap();
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.funnel.enumerated, r.funnel.enumerated);
        assert_eq!(back.legal, r.legal);
        assert_eq!(back.candidates.len(), 1);
        assert_eq!(back.candidates[0].tie, r.candidates[0].tie);
        assert_eq!(back.candidates[0].sites, r.candidates[0].sites);
        assert_eq!(back.candidates[0].sites[0].anchor(), 13);
        // Serialization is stable byte-for-byte.
        assert_eq!(Report::parse(&text).unwrap().to_json().to_string(), text);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let mut v = sample().to_json();
        v.set("schema", "emx.other/9");
        let err = Report::parse(&v.to_string()).unwrap_err();
        assert!(err.contains("emx.discover-report/1"));
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(Report::parse("{}").is_err());
        assert!(Report::parse("not json").is_err());
    }
}
