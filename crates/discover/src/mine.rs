//! Convex-subgraph enumeration under I/O-port and legality constraints.
//!
//! The miner grows connected induced subgraphs of a block DAG from every
//! allowed seed node, keeping each candidate that can be implemented as
//! a *single* custom instruction:
//!
//! * **convex** — no dataflow path leaves the pattern and re-enters it,
//!   so the pattern can issue as one atomic operation;
//! * **I/O-bounded** — at most two distinct external GPR value inputs
//!   (the `rs`/`rt` operand buses) and at most one externally observable
//!   GPR result, which must be produced by the pattern's last member
//!   (the *anchor*, where the fused instruction is placed);
//! * **order-safe** — deferring the pattern's input reads and state
//!   effects to the anchor must not change what any instruction outside
//!   the pattern observes (no clobbered inputs, no state observers in
//!   the pattern's index window);
//! * **memory/control-free** — loads, stores and branches never join a
//!   pattern (they are barrier nodes in the DAG).
//!
//! Enumeration is exhaustive up to `max_nodes` members and a per-block
//! candidate cap; the funnel counters report exactly what was dropped
//! where, so a capped run is visible rather than silent.

use std::collections::BTreeSet;

use emx_isa::Reg;

use crate::dag::{Bits, BlockDag, Def, Src};

/// Mining limits and ports.
#[derive(Debug, Clone)]
pub struct MineConfig {
    /// Maximum pattern size in instructions.
    pub max_nodes: usize,
    /// Maximum distinct external GPR value inputs (operand buses).
    pub max_gpr_inputs: usize,
    /// Maximum candidate sets enumerated per block before capping.
    pub block_cap: usize,
}

impl Default for MineConfig {
    fn default() -> Self {
        MineConfig {
            max_nodes: 6,
            max_gpr_inputs: 2,
            block_cap: 20_000,
        }
    }
}

/// Drop counters for one mining run — the report's `funnel` section.
#[derive(Debug, Clone, Copy, Default)]
pub struct Funnel {
    /// Basic blocks considered (weight > 0).
    pub blocks: u64,
    /// Candidate node sets enumerated.
    pub enumerated: u64,
    /// Dropped: not convex.
    pub rejected_convex: u64,
    /// Dropped: too many GPR inputs or outputs.
    pub rejected_io: u64,
    /// Dropped: reordering would be observable (clobbered input, state
    /// observer in the window, output not at the anchor).
    pub rejected_order: u64,
    /// Dropped: no externally observable result at all.
    pub rejected_dead: u64,
    /// Dropped later: TIE synthesis or compilation failed.
    pub rejected_synth: u64,
    /// Dropped last: the rewritten workload failed re-simulation (see
    /// `crate::bridge` on computed text addresses).
    pub rejected_check: u64,
    /// Blocks whose enumeration hit `block_cap`.
    pub capped_blocks: u64,
}

impl Funnel {
    /// Accumulates another funnel into this one.
    pub fn absorb(&mut self, other: &Funnel) {
        self.blocks += other.blocks;
        self.enumerated += other.enumerated;
        self.rejected_convex += other.rejected_convex;
        self.rejected_io += other.rejected_io;
        self.rejected_order += other.rejected_order;
        self.rejected_dead += other.rejected_dead;
        self.rejected_synth += other.rejected_synth;
        self.rejected_check += other.rejected_check;
        self.capped_blocks += other.capped_blocks;
    }
}

/// An external input of a legal pattern, in first-use order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternalInput {
    /// A GPR value: live-in register or a non-member's in-block def.
    Gpr(Src),
    /// A custom-state value (current architectural state at the anchor).
    State(String),
}

/// A legal pattern instance at one site (one block).
#[derive(Debug, Clone)]
pub struct SitePattern {
    /// Block-local member indices, ascending. The last is the anchor.
    pub members: Vec<usize>,
    /// External inputs in first-use order (GPR inputs become the
    /// `rs`/`rt` operand buses in that order).
    pub inputs: Vec<ExternalInput>,
    /// The externally observable GPR result, if any: always produced by
    /// the anchor.
    pub gpr_output: Option<Reg>,
    /// For each state the pattern writes: `(state, member, out)` of the
    /// final write, in first-write order.
    pub state_outputs: Vec<(String, usize, usize)>,
}

enum Reject {
    Convex,
    Io,
    Order,
    Dead,
}

/// Validates the member set `s` (ascending block-local indices) and, if
/// legal, describes its interface.
fn check(dag: &BlockDag, s: &[usize], max_gpr_inputs: usize) -> Result<SitePattern, Reject> {
    let n = dag.nodes.len();
    let anchor = *s.last().expect("non-empty candidate");
    let in_s = {
        let mut b = Bits::empty(n);
        for &i in s {
            b.set(i);
        }
        b
    };

    // Convexity: no external node may sit on a path between two members.
    let mut ancestors = Bits::empty(n);
    for &k in s {
        ancestors.union_with(&dag.deps[k]);
    }
    for j in ancestors.iter() {
        if !in_s.get(j) && dag.deps[j].intersects(&in_s) {
            return Err(Reject::Convex);
        }
    }

    // External inputs, in first-use order over members and operands.
    let mut inputs: Vec<ExternalInput> = Vec::new();
    let mut gpr_inputs = 0usize;
    for &m in s {
        for op in &dag.nodes[m].ops {
            let ext_input = match op {
                Src::Node { node, out } if !in_s.get(*node) => match &dag.nodes[*node].defs[*out] {
                    Def::Gpr(_) => ExternalInput::Gpr(op.clone()),
                    Def::State(name) => ExternalInput::State(name.clone()),
                },
                Src::Node { .. } | Src::Imm(_) => continue,
                Src::LiveGpr(_) => ExternalInput::Gpr(op.clone()),
                Src::LiveState(name) => ExternalInput::State(name.clone()),
            };
            if !inputs.contains(&ext_input) {
                if matches!(ext_input, ExternalInput::Gpr(_)) {
                    gpr_inputs += 1;
                }
                inputs.push(ext_input);
            }
        }
    }

    // Externally observable GPR defs: consumed by a non-member, or the
    // block's final def of a live-out register.
    let mut last_gpr_def: [Option<usize>; 16] = [None; 16];
    for (i, node) in dag.nodes.iter().enumerate() {
        if let Some(r) = node.gpr_def() {
            last_gpr_def[r.index()] = Some(i);
        }
    }
    let mut visible_gpr: Option<(usize, Reg)> = None;
    let mut visible_count = 0usize;
    for &m in s {
        let Some(r) = dag.nodes[m].gpr_def() else {
            continue;
        };
        let consumed_outside = dag.nodes.iter().enumerate().any(|(i, node)| {
            !in_s.get(i)
                && node.ops.iter().any(
                    |op| matches!(op, Src::Node { node, out } if *node == m && matches!(dag.nodes[m].defs[*out], Def::Gpr(_))),
                )
        });
        let live_out =
            last_gpr_def[r.index()] == Some(m) && dag.block.live_out & (1 << r.index()) != 0;
        if consumed_outside || live_out {
            visible_count += 1;
            visible_gpr = Some((m, r));
        }
    }
    if visible_count > 1 {
        return Err(Reject::Io);
    }
    if let Some((m, _)) = visible_gpr {
        if m != anchor {
            return Err(Reject::Order);
        }
    }

    // State interface: the final member write of each state becomes an
    // output; no non-member in the pattern's index window may touch any
    // state the pattern touches.
    let mut state_outputs: Vec<(String, usize, usize)> = Vec::new();
    let mut touched: BTreeSet<String> = BTreeSet::new();
    for &m in s {
        for name in dag.nodes[m].touched_states() {
            touched.insert(name.to_owned());
        }
        for (out, def) in dag.nodes[m].defs.iter().enumerate() {
            if let Def::State(name) = def {
                if let Some(slot) = state_outputs.iter_mut().find(|(n, ..)| n == name) {
                    *slot = (name.clone(), m, out);
                } else {
                    state_outputs.push((name.clone(), m, out));
                }
            }
        }
    }
    if !touched.is_empty() {
        let lo = s[0];
        for (i, node) in dag.nodes.iter().enumerate() {
            if i > lo
                && i < anchor
                && !in_s.get(i)
                && node
                    .touched_states()
                    .iter()
                    .any(|name| touched.contains(*name))
            {
                return Err(Reject::Order);
            }
        }
    }

    // Deferred input reads: the register feeding each external GPR input
    // must not be rewritten by a non-member before the anchor.
    for input in &inputs {
        let ExternalInput::Gpr(src) = input else {
            continue;
        };
        let (reg, from) = match src {
            Src::LiveGpr(r) => (*r, 0usize),
            Src::Node { node, out } => match &dag.nodes[*node].defs[*out] {
                Def::Gpr(r) => (*r, node + 1),
                Def::State(_) => unreachable!("gpr input from a state def"),
            },
            _ => unreachable!("gpr input is always a register source"),
        };
        for (i, node) in dag.nodes.iter().enumerate() {
            if i >= from && i < anchor && !in_s.get(i) && node.gpr_def() == Some(reg) {
                return Err(Reject::Order);
            }
        }
    }

    // The encoding has two GPR read ports; a tighter configured limit
    // models narrower operand buses.
    if gpr_inputs > max_gpr_inputs.min(2) {
        return Err(Reject::Io);
    }
    if visible_gpr.is_none() && state_outputs.is_empty() {
        return Err(Reject::Dead);
    }

    Ok(SitePattern {
        members: s.to_vec(),
        inputs,
        gpr_output: visible_gpr.map(|(_, r)| r),
        state_outputs,
    })
}

/// Enumerates every legal pattern in one block DAG, up to the config's
/// caps. Results are in deterministic (seed, growth) order.
pub fn mine_block(dag: &BlockDag, config: &MineConfig, funnel: &mut Funnel) -> Vec<SitePattern> {
    let n = dag.nodes.len();
    funnel.blocks += 1;
    let mut found = Vec::new();
    let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut budget = config.block_cap;
    let mut capped = false;

    let mut stack: Vec<Vec<usize>> = Vec::new();
    for seed in 0..n {
        if dag.nodes[seed].allowed {
            stack.push(vec![seed]);
        }
    }
    // LIFO over candidate sets; `visited` dedups sets reachable from
    // several seeds, so exploration order cannot change the result set.
    while let Some(s) = stack.pop() {
        if !visited.insert(s.clone()) {
            continue;
        }
        if budget == 0 {
            capped = true;
            break;
        }
        budget -= 1;
        funnel.enumerated += 1;

        match check(dag, &s, config.max_gpr_inputs) {
            Ok(p) => found.push(p),
            Err(Reject::Convex) => funnel.rejected_convex += 1,
            Err(Reject::Io) => funnel.rejected_io += 1,
            Err(Reject::Order) => funnel.rejected_order += 1,
            Err(Reject::Dead) => funnel.rejected_dead += 1,
        }

        if s.len() >= config.max_nodes {
            continue;
        }
        // Grow by every allowed dataflow neighbor.
        let mut frontier = Bits::empty(n);
        for &m in &s {
            frontier.union_with(&dag.adj[m]);
        }
        for j in frontier.iter() {
            if dag.nodes[j].allowed && !s.contains(&j) {
                let mut grown = s.clone();
                let pos = grown.partition_point(|&x| x < j);
                grown.insert(pos, j);
                if !visited.contains(&grown) {
                    stack.push(grown);
                }
            }
        }
    }
    if capped {
        funnel.capped_blocks += 1;
    }
    // Deterministic output order independent of stack discipline.
    found.sort_by(|a, b| a.members.cmp(&b.members));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;
    use emx_tie::ExtensionSet;

    fn mine_first_block(src: &str) -> (Vec<SitePattern>, Funnel) {
        let p = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let blocks = crate::cfg::basic_blocks(&p, &ext, &vec![1; p.len()]);
        let dag = crate::dag::build(&p, &ext, &blocks[0]);
        let mut funnel = Funnel::default();
        let found = mine_block(&dag, &MineConfig::default(), &mut funnel);
        (found, funnel)
    }

    #[test]
    fn fuses_a_two_op_chain_with_two_inputs() {
        // xor(a3, and(a2, a3)) — two external inputs, one live-out def.
        let (found, _) = mine_first_block("and a4, a2, a3\nxor a5, a4, a3\ns32i a5, 0(a1)\nhalt");
        let fused = found
            .iter()
            .find(|p| p.members == vec![0, 1])
            .expect("the and+xor chain is legal");
        assert_eq!(fused.gpr_output, Some(Reg::new(5)));
        assert_eq!(fused.inputs.len(), 2);
    }

    #[test]
    fn rejects_three_input_patterns() {
        let (found, funnel) =
            mine_first_block("and a5, a2, a3\nxor a6, a5, a4\ns32i a6, 0(a1)\nhalt");
        // {and, xor} needs a2, a3 and a4 — over the two-bus limit.
        assert!(found.iter().all(|p| p.members != vec![0, 1]));
        assert!(funnel.rejected_io >= 1);
    }

    #[test]
    fn rejects_non_convex_sets() {
        // add → (load) → xor: the pair {add, xor} has an external node on
        // an internal path.
        let (found, funnel) = mine_first_block(
            "add a4, a2, a3\nl32i a5, 0(a4)\nxor a6, a5, a4\ns32i a6, 0(a1)\nhalt",
        );
        assert!(found.iter().all(|p| p.members != vec![0, 2]));
        assert!(funnel.rejected_convex >= 1);
    }

    #[test]
    fn intermediate_def_with_external_consumer_is_rejected() {
        // a4 is consumed by the store, so {and, xor} would erase a value
        // the store still needs.
        let (found, _) = mine_first_block(
            "and a4, a2, a3\nxor a5, a4, a3\ns32i a4, 0(a1)\ns32i a5, 4(a1)\nhalt",
        );
        assert!(found.iter().all(|p| p.members != vec![0, 1]));
    }

    #[test]
    fn input_clobbered_before_anchor_is_rejected() {
        // The load rewrites a2 between the and (which read it) and the
        // xor anchor, so the deferred read would see the wrong value.
        let (found, _) = mine_first_block(
            "and a4, a2, a3\nl32i a2, 0(a1)\nxor a5, a4, a2\ns32i a5, 0(a1)\nhalt",
        );
        assert!(found.iter().all(|p| p.members != vec![0, 2]));
    }
}
