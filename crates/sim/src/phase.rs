//! Phase-attribution profiling for the ISS hot path.
//!
//! [`Interp::step_counted`] walks five fixed sections per retired
//! instruction — fetch, decode, execute, data memory, and observation
//! (hazard/statistics/activity bookkeeping). A [`PhaseRecorder`]
//! attributes host wall-clock time to each section so the bench report
//! can show *where* simulator time goes, not just how much there is.
//!
//! The design mirrors [`ActivitySink`](crate::ActivitySink): the
//! recorder is a generic parameter with a `const ACTIVE` flag, so the
//! disabled path ([`NullPhases`]) compiles to the exact instruction
//! stream the un-instrumented simulator had — no `Instant::now()`
//! calls, no branches, nothing for the neutrality test to measure.

use std::fmt;
use std::time::Instant;

use emx_obs::json::Value;
use emx_obs::Collector;

/// One section of the ISS per-instruction loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Instruction fetch: I-cache lookup / uncached-fetch accounting.
    Fetch,
    /// Instruction lookup in the pre-decoded text segment.
    Decode,
    /// Architectural execution plus interlock detection and per-class
    /// cycle accounting.
    Execute,
    /// Data-memory access and D-cache simulation.
    Memory,
    /// Hazard bookkeeping, statistics totals, and the activity record.
    Observe,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Fetch,
        Phase::Decode,
        Phase::Execute,
        Phase::Memory,
        Phase::Observe,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name, used as the JSON key and counter suffix.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fetch => "fetch",
            Phase::Decode => "decode",
            Phase::Execute => "execute",
            Phase::Memory => "memory",
            Phase::Observe => "observe",
        }
    }

    /// Dense index into [`Phase::ALL`].
    pub fn index(self) -> usize {
        match self {
            Phase::Fetch => 0,
            Phase::Decode => 1,
            Phase::Execute => 2,
            Phase::Memory => 3,
            Phase::Observe => 4,
        }
    }
}

/// Consumer of per-phase host-time attributions.
///
/// Mirrors [`ActivitySink`](crate::ActivitySink): implementations with
/// `ACTIVE = false` guarantee the simulator takes zero timestamps.
pub trait PhaseRecorder {
    /// `false` for recorders that ignore attributions; lets the
    /// simulator skip reading the clock entirely.
    const ACTIVE: bool = true;

    /// Attributes `nanos` of host time to `phase`.
    fn add(&mut self, phase: Phase, nanos: u64);

    /// Called once per retired instruction, after its last phase.
    fn retire(&mut self) {}
}

/// A recorder that discards everything; the compiler removes both the
/// calls and the surrounding clock reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullPhases;

impl PhaseRecorder for NullPhases {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn add(&mut self, _phase: Phase, _nanos: u64) {}
}

/// Accumulated per-phase host time over a profiled run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    ns: [u64; Phase::COUNT],
    steps: u64,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Host nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total attributed host nanoseconds across all phases.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Retired instructions observed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Share of total attributed time spent in `phase`, in percent
    /// (0 when nothing was attributed).
    pub fn percent(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            100.0 * self.nanos(phase) as f64 / total as f64
        }
    }

    /// Folds the profile into `collector` as monotone counters named
    /// `iss.phase.<name>_ns` plus `iss.phase.steps`.
    pub fn export_to(&self, collector: &mut Collector) {
        for phase in Phase::ALL {
            collector.add(
                format!("iss.phase.{}_ns", phase.name()),
                self.nanos(phase) as f64,
            );
        }
        collector.add("iss.phase.steps", self.steps as f64);
    }

    /// Deterministic JSON object: `{"steps": n, "total_ns": n,
    /// "fetch_ns": n, ..., "observe_ns": n}`.
    pub fn to_json(&self) -> Value {
        let mut obj = vec![
            ("steps".to_owned(), Value::Num(self.steps as f64)),
            ("total_ns".to_owned(), Value::Num(self.total_ns() as f64)),
        ];
        for phase in Phase::ALL {
            obj.push((
                format!("{}_ns", phase.name()),
                Value::Num(self.nanos(phase) as f64),
            ));
        }
        Value::Obj(obj)
    }

    /// Parses a document produced by [`PhaseProfile::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(doc: &Value) -> Result<Self, String> {
        let field = |name: &str| -> Result<u64, String> {
            let v = doc
                .get(name)
                .ok_or_else(|| format!("phase profile: missing field `{name}`"))?;
            let n = v
                .as_f64()
                .ok_or_else(|| format!("phase profile: field `{name}` is not a number"))?;
            if !(0.0..=u64::MAX as f64).contains(&n) {
                return Err(format!("phase profile: field `{name}` out of range"));
            }
            Ok(n as u64)
        };
        let mut profile = PhaseProfile {
            steps: field("steps")?,
            ..PhaseProfile::default()
        };
        for phase in Phase::ALL {
            profile.ns[phase.index()] = field(&format!("{}_ns", phase.name()))?;
        }
        Ok(profile)
    }
}

impl PhaseRecorder for PhaseProfile {
    #[inline(always)]
    fn add(&mut self, phase: Phase, nanos: u64) {
        self.ns[phase.index()] += nanos;
    }

    #[inline(always)]
    fn retire(&mut self) {
        self.steps += 1;
    }
}

impl fmt::Display for PhaseProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<10} {:>14} {:>7}", "phase", "host ns", "share")?;
        for phase in Phase::ALL {
            writeln!(
                f,
                "{:<10} {:>14} {:>6.1}%",
                phase.name(),
                self.nanos(phase),
                self.percent(phase)
            )?;
        }
        write!(
            f,
            "{:<10} {:>14} {:>6.1}%",
            "total",
            self.total_ns(),
            if self.total_ns() == 0 { 0.0 } else { 100.0 }
        )
    }
}

/// Advances the lap clock: attributes the time since `*last` to
/// `phase` and restarts the lap. Compiles to nothing when the recorder
/// is inactive.
#[inline(always)]
pub(crate) fn lap<P: PhaseRecorder>(phases: &mut P, phase: Phase, last: &mut Option<Instant>) {
    if P::ACTIVE {
        let now = Instant::now();
        if let Some(prev) = *last {
            phases.add(phase, now.duration_since(prev).as_nanos() as u64);
        }
        *last = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut p = PhaseProfile::new();
        p.add(Phase::Fetch, 10);
        p.add(Phase::Execute, 60);
        p.add(Phase::Observe, 30);
        p.retire();
        let sum: f64 = Phase::ALL.iter().map(|&ph| p.percent(ph)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(p.total_ns(), 100);
        assert_eq!(p.steps(), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut p = PhaseProfile::new();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            p.add(*phase, (i as u64 + 1) * 1000);
        }
        p.retire();
        p.retire();
        let text = p.to_json().to_string();
        let doc = Value::parse(&text).unwrap();
        assert_eq!(PhaseProfile::from_json(&doc).unwrap(), p);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let doc = Value::parse(r#"{"steps": 1, "total_ns": 0}"#).unwrap();
        let err = PhaseProfile::from_json(&doc).unwrap_err();
        assert!(err.contains("fetch_ns"), "{err}");
    }

    #[test]
    fn export_writes_counters() {
        let mut p = PhaseProfile::new();
        p.add(Phase::Memory, 42);
        p.retire();
        let mut c = Collector::new();
        p.export_to(&mut c);
        assert_eq!(c.counter("iss.phase.memory_ns"), 42.0);
        assert_eq!(c.counter("iss.phase.steps"), 1.0);
        assert_eq!(c.counter("iss.phase.fetch_ns"), 0.0);
    }
}
