use crate::cache::CacheConfig;

/// Configuration of the (fixed) base processor.
///
/// The default mirrors the paper's characterized Xtensa T1040
/// configuration: 187 MHz, a 32-bit multiplication instruction, 4-way
/// 16 KB instruction and data caches, a 32-bit system bus and a 64-entry
/// 32-bit physical register file.
///
/// Timing parameters are exposed so ablation studies can vary the
/// micro-architecture; the macro-model methodology itself never reads
/// them — it observes their effects through simulation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Stall cycles charged per instruction-cache miss.
    pub icache_miss_penalty: u32,
    /// Stall cycles charged per data-cache miss.
    pub dcache_miss_penalty: u32,
    /// Stall cycles charged per uncached instruction fetch.
    pub uncached_fetch_penalty: u32,
    /// Pipeline cycles occupied by a taken branch (issue + flushed
    /// bubbles; branches resolve in EX).
    pub branch_taken_cycles: u32,
    /// Pipeline cycles occupied by an unconditional jump/call/return
    /// (jumps resolve in ID, so one bubble).
    pub jump_cycles: u32,
    /// Number of physical registers backing the architectural window
    /// (affects register-file energy in the reference model only).
    pub physical_regs: u32,
    /// Core clock in MHz (used only to convert energy to power in
    /// reports).
    pub clock_mhz: f64,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            icache: CacheConfig::paper_default(),
            dcache: CacheConfig::paper_default(),
            icache_miss_penalty: 14,
            dcache_miss_penalty: 14,
            uncached_fetch_penalty: 10,
            branch_taken_cycles: 3,
            jump_cycles: 2,
            physical_regs: 64,
            clock_mhz: 187.0,
        }
    }
}

impl ProcConfig {
    /// The paper's characterized configuration (same as `Default`).
    pub fn t1040() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let c = ProcConfig::default();
        assert_eq!(c.icache.total_bytes(), 16 * 1024);
        assert_eq!(c.icache.ways, 4);
        assert_eq!(c.dcache.total_bytes(), 16 * 1024);
        assert_eq!(c.physical_regs, 64);
        assert_eq!(c.clock_mhz, 187.0);
    }

    #[test]
    fn t1040_is_default() {
        assert_eq!(ProcConfig::t1040(), ProcConfig::default());
    }
}
