use std::collections::HashMap;

use emx_isa::Program;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, paged byte-addressable memory covering the full 32-bit address
/// space.
///
/// Pages are allocated on first touch (reads of untouched memory return
/// zero, like zero-initialized RAM). Multi-byte accesses are
/// little-endian.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory image with a program's data segment loaded.
    pub fn with_program(program: &Program) -> Self {
        let mut mem = Memory::new();
        mem.write_bytes(program.data_base(), program.data());
        mem
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian 16-bit value (no alignment requirement; the
    /// executor enforces alignment as an architectural rule).
    pub fn read_u16(&self, addr: u32) -> u16 {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 2 <= PAGE_SIZE {
            // Fast path: both bytes on one page, one page lookup.
            match self.page(addr) {
                Some(p) => u16::from_le_bytes([p[offset], p[offset + 1]]),
                None => 0,
            }
        } else {
            u16::from(self.read_u8(addr)) | (u16::from(self.read_u8(addr.wrapping_add(1))) << 8)
        }
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 2 <= PAGE_SIZE {
            let p = self.page_mut(addr);
            p[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_u8(addr, value as u8);
            self.write_u8(addr.wrapping_add(1), (value >> 8) as u8);
        }
    }

    /// Reads a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 4 <= PAGE_SIZE {
            match self.page(addr) {
                Some(p) => {
                    u32::from_le_bytes([p[offset], p[offset + 1], p[offset + 2], p[offset + 3]])
                }
                None => 0,
            }
        } else {
            u32::from(self.read_u16(addr)) | (u32::from(self.read_u16(addr.wrapping_add(2))) << 16)
        }
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let offset = (addr as usize) & (PAGE_SIZE - 1);
        if offset + 4 <= PAGE_SIZE {
            let p = self.page_mut(addr);
            p[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            self.write_u16(addr, value as u16);
            self.write_u16(addr.wrapping_add(2), (value >> 16) as u16);
        }
    }

    /// Writes a byte slice starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Number of touched (allocated) pages — a rough working-set metric.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0x1234), 0);
        assert_eq!(m.touched_pages(), 0);
    }

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x1122_3344);
        assert_eq!(m.read_u8(0x100), 0x44);
        assert_eq!(m.read_u8(0x103), 0x11);
        assert_eq!(m.read_u16(0x100), 0x3344);
        assert_eq!(m.read_u32(0x100), 0x1122_3344);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 2;
        m.write_u32(addr, 0xdead_beef);
        assert_eq!(m.read_u32(addr), 0xdead_beef);
        assert_eq!(m.touched_pages(), 2);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = Memory::new();
        m.write_bytes(0x40, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(0x40, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn high_addresses_work() {
        let mut m = Memory::new();
        m.write_u32(0xffff_fff0, 7);
        assert_eq!(m.read_u32(0xffff_fff0), 7);
    }
}
