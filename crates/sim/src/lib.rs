//! Simulators for the emx extensible processor.
//!
//! Two simulation paths mirror the two sides of the paper's methodology:
//!
//! * [`Interp`] — a fast **functional instruction-set simulator** (the
//!   stand-in for the Xtensa ISS). It executes programs, models the caches
//!   and the hazard scoreboard just enough to count the macro-model's
//!   instruction-level variables (per-class cycles, cache misses, uncached
//!   fetches, interlocks, custom-instruction side-effect cycles) and to
//!   perform the dynamic resource-usage analysis for the structural
//!   variables. This is the *only* simulation the macro-model needs
//!   (steps 9–10 of the paper's flow).
//! * [`PipelineSim`] — a **cycle-accounted micro-architectural simulator**
//!   that additionally reconstructs, for every retired instruction, the
//!   full stage-level activity of the five-stage pipeline (fetched
//!   encoding bits, operand/result bus values, functional-unit operands,
//!   cache array accesses, custom-datapath node values, stall/flush
//!   cycles). Its activity stream feeds the RTL-level reference energy
//!   estimator in `emx-rtlpower`, playing the role of the paper's
//!   ModelSim trace generation for WattWatcher.
//!
//! Both paths share one executor ([`exec`]) and one timing rule set, so
//! their cycle accounting agrees exactly; the pipeline path is slower
//! because it materializes per-instruction activity.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_isa::asm::Assembler;
//! use emx_sim::{Interp, ProcConfig};
//! use emx_tie::ExtensionSet;
//!
//! let program = Assembler::new().assemble(
//!     "movi a2, 10\nmovi a3, 0\nloop: add a3, a3, a2\naddi a2, a2, -1\nbnez a2, loop\nhalt",
//! )?;
//! let ext = ExtensionSet::empty();
//! let mut sim = Interp::new(&program, &ext, ProcConfig::default());
//! let run = sim.run(1_000_000)?;
//! assert_eq!(sim.state().reg(emx_isa::Reg::new(3)), 55);
//! assert!(run.stats.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod error;
pub mod exec;
mod iss;
mod mem;
pub mod observe;
mod phase;
mod pipeline;
mod record;
mod stats;
pub mod trace;
mod uop;

pub use cache::{Cache, CacheAccess, CacheConfig};
pub use config::ProcConfig;
pub use error::SimError;
pub use exec::CoreState;
pub use iss::{Interp, RunResult};
pub use mem::Memory;
pub use phase::{NullPhases, Phase, PhaseProfile, PhaseRecorder};
pub use pipeline::PipelineSim;
pub use record::{ActivitySink, CustomActivity, InstKind, InstRecord, MemAccess};
pub use stats::ExecStats;
