use emx_isa::Program;
use emx_tie::ExtensionSet;

use crate::record::ActivitySink;
use crate::{ExecStats, Interp, ProcConfig, RunResult, SimError};

/// The detailed micro-architectural simulation path.
///
/// `PipelineSim` runs the same executor and timing rules as the functional
/// ISS, but materializes a full per-instruction activity record — fetched
/// encoding bits, operand/result bus values, cache array behaviour,
/// custom-datapath node values, stall and flush cycles — and streams it to
/// an [`ActivitySink`]. This is the trace the RTL-level reference energy
/// estimator integrates, playing the role of the paper's
/// "RTL description … simulated with the memory images of the test
/// programs using ModelSim to generate the simulation traces needed by the
/// RTL power estimator".
///
/// Because both paths share one engine, the statistics it produces are
/// bit-identical to [`Interp`]'s — the difference is the activity stream
/// and its cost.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use emx_isa::asm::Assembler;
/// use emx_sim::{InstRecord, PipelineSim, ProcConfig};
/// use emx_tie::ExtensionSet;
///
/// let program = Assembler::new().assemble("movi a2, 3\nhalt")?;
/// let ext = ExtensionSet::empty();
/// let mut cycles = 0u64;
/// let mut sink = |r: &InstRecord<'_>| cycles += u64::from(r.cycles);
/// let mut sim = PipelineSim::new(&program, &ext, ProcConfig::default());
/// let run = sim.run(&mut sink, 1_000)?;
/// assert_eq!(cycles, run.stats.total_cycles);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PipelineSim<'a> {
    inner: Interp<'a>,
}

impl<'a> PipelineSim<'a> {
    /// Creates a pipeline simulator at the program's entry point.
    pub fn new(program: &'a Program, ext: &'a ExtensionSet, config: ProcConfig) -> Self {
        PipelineSim {
            inner: Interp::new(program, ext, config),
        }
    }

    /// Runs to `halt`, streaming activity records into `sink`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`].
    pub fn run<S: ActivitySink>(
        &mut self,
        sink: &mut S,
        max_cycles: u64,
    ) -> Result<RunResult, SimError> {
        self.inner.run_with_sink(sink, max_cycles)
    }

    /// The architectural state.
    pub fn state(&self) -> &crate::CoreState {
        self.inner.state()
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &ExecStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstRecord;
    use emx_isa::asm::Assembler;

    #[test]
    fn record_cycles_sum_to_total() {
        let program = Assembler::new()
            .assemble(
                ".data\nv: .word 1,2,3,4\n.text\nmovi a2, v\nmovi a3, 4\nmovi a5, 0\n\
                 l: l32i a4, 0(a2)\nadd a5, a5, a4\naddi a2, a2, 4\naddi a3, a3, -1\n\
                 bnez a3, l\nhalt",
            )
            .unwrap();
        let ext = ExtensionSet::empty();
        let mut sum = 0u64;
        let mut stalls = 0u64;
        let mut sink = |r: &InstRecord<'_>| {
            sum += u64::from(r.cycles);
            stalls += u64::from(r.stall_cycles);
        };
        let mut sim = PipelineSim::new(&program, &ext, ProcConfig::default());
        let run = sim.run(&mut sink, 100_000).unwrap();
        assert_eq!(sum, run.stats.total_cycles);
        assert_eq!(stalls, run.stats.interlocks);
        assert_eq!(sim.state().reg(emx_isa::Reg::new(5)), 10);
    }

    #[test]
    fn fetch_flags_in_records() {
        let program = Assembler::new().assemble("nop\nnop\nhalt").unwrap();
        let ext = ExtensionSet::empty();
        let mut hits = Vec::new();
        let mut sink = |r: &InstRecord<'_>| hits.push(r.fetch_hit);
        PipelineSim::new(&program, &ext, ProcConfig::default())
            .run(&mut sink, 1_000)
            .unwrap();
        // First fetch misses the cold cache, the rest of the line hits.
        assert_eq!(hits, vec![false, true, true]);
    }
}
