/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// The paper's configuration: 16 KB, 4-way, 32-byte lines → 128 sets.
    pub fn paper_default() -> Self {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 32,
        }
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// `true` if the line was already present.
    pub hit: bool,
    /// `true` if a dirty line had to be written back to fill this one.
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back/write-allocate cache model with true LRU
/// replacement.
///
/// Only the tag state is modeled — data contents live in [`crate::Memory`]
/// — which is exactly what hit/miss statistics and energy accounting need.
///
/// # Example
///
/// ```
/// use emx_sim::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::paper_default());
/// assert!(!c.access(0x1000, false).hit); // cold miss
/// assert!(c.access(0x1000, false).hit);  // now resident
/// assert!(c.access(0x1004, false).hit);  // same 32-byte line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or any
    /// geometry field is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "ways must be nonzero");
        Cache {
            config,
            lines: vec![Line::default(); (config.sets * config.ways) as usize],
            tick: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr / self.config.line_bytes) & (self.config.sets - 1)
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.config.line_bytes / self.config.sets
    }

    /// Performs one access; on a miss the line is filled (allocated),
    /// evicting the LRU way.
    ///
    /// `write` marks the line dirty (write-back policy: a later eviction of
    /// a dirty line reports `writeback`).
    pub fn access(&mut self, addr: u32, write: bool) -> CacheAccess {
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;
        let set_lines = &mut self.lines[base..base + ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= write;
            return CacheAccess {
                hit: true,
                writeback: false,
            };
        }

        // Miss: pick an invalid way, else the LRU way. A zero-way
        // configuration has nowhere to fill — degrade to an uncached miss
        // rather than panicking on a hostile config.
        let Some(victim) = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
        else {
            return CacheAccess {
                hit: false,
                writeback: false,
            };
        };
        let writeback = victim.valid && victim.dirty;
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Returns `true` if the address is currently resident (without
    /// touching LRU state).
    pub fn probe(&self, addr: u32) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = (set * self.config.ways) as usize;
        self.lines[base..base + self.config.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates all lines (dirty contents are discarded; this is a
    /// simulation reset, not a flush).
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 16-byte lines.
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x00, false).hit);
        assert!(c.access(0x00, false).hit);
        assert!(c.access(0x0f, false).hit); // same line
        assert!(!c.access(0x10, false).hit); // next line, other set
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [4]=0: 0x00, 0x20, 0x40 map to set 0.
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x00, false); // touch 0x00 → 0x20 becomes LRU
        c.access(0x40, false); // evicts 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        assert!(!c.access(0x00, true).hit); // dirty fill
        c.access(0x20, false);
        let out = c.access(0x40, false); // evicts dirty 0x00
        assert!(!out.hit);
        assert!(out.writeback);
        // Refill 0x00 clean, evicting clean 0x20 → no writeback.
        let out = c.access(0x00, false);
        assert!(!out.writeback);
    }

    #[test]
    fn occupancy_bounded_by_associativity() {
        let mut c = tiny();
        // Four lines mapping to set 0; only 2 can be resident.
        for addr in [0x00u32, 0x20, 0x40, 0x60] {
            c.access(addr, false);
        }
        let resident = [0x00u32, 0x20, 0x40, 0x60]
            .iter()
            .filter(|&&a| c.probe(a))
            .count();
        assert_eq!(resident, 2);
    }

    #[test]
    fn paper_geometry() {
        let c = Cache::new(CacheConfig::paper_default());
        assert_eq!(c.config().total_bytes(), 16 * 1024);
    }

    #[test]
    fn clear_resets() {
        let mut c = tiny();
        c.access(0x00, true);
        c.clear();
        assert!(!c.probe(0x00));
        assert!(!c.access(0x00, false).hit);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 16,
        });
    }
}
