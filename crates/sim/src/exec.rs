//! The shared instruction executor.
//!
//! Both the functional ISS ([`crate::Interp`]) and the pipeline simulator
//! ([`crate::PipelineSim`]) drive this single-step executor, so the two
//! paths can never disagree about architectural semantics.

use emx_isa::program::layout;
use emx_isa::{BaseInst, CustomId, Inst, Opcode, Program, Reg};
use emx_tie::ExtensionSet;

use crate::{Memory, SimError};

/// Architectural state of the core: GPRs, PC, memory and custom
/// (extension) state.
#[derive(Debug, Clone)]
pub struct CoreState {
    regs: [u32; 16],
    pc: u32,
    /// Data memory (public so tests and workloads can inspect results).
    pub mem: Memory,
    ext_state: Vec<u64>,
    /// Scratch buffer holding the dataflow node values of the most recent
    /// custom-instruction execution (reused to avoid allocation).
    pub(crate) scratch: Vec<u64>,
}

impl CoreState {
    /// Creates the reset state for a program + extension set: PC at the
    /// entry point, stack pointer at the top of the stack region, data
    /// segment loaded, custom state zeroed.
    pub fn new(program: &Program, ext: &ExtensionSet) -> Self {
        let mut regs = [0u32; 16];
        regs[Reg::SP.index()] = layout::STACK_TOP;
        CoreState {
            regs,
            pc: program.entry(),
            mem: Memory::with_program(program),
            ext_state: ext.initial_state(),
            scratch: Vec::new(),
        }
    }

    /// Reads a GPR.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a GPR.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Overrides the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// The extension state vector (custom registers), indexable by
    /// [`emx_tie::StateId::index`].
    pub fn ext_state(&self) -> &[u64] {
        &self.ext_state
    }

    /// Node values of the most recent custom-instruction execution.
    pub fn last_custom_nodes(&self) -> &[u64] {
        &self.scratch
    }
}

/// A data-memory access performed by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Byte address.
    pub addr: u32,
    /// Access size in bytes (1, 2 or 4).
    pub size: u32,
    /// `true` for stores.
    pub write: bool,
    /// The value loaded or stored (zero-extended).
    pub value: u32,
}

/// Everything one retired instruction did, as reported by [`step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The executed instruction.
    pub inst: Inst,
    /// Its address.
    pub pc: u32,
    /// Address of the next instruction.
    pub next_pc: u32,
    /// For branches: whether the branch was taken.
    pub taken: bool,
    /// `true` after `halt`.
    pub halted: bool,
    /// First EX-stage operand value (operand bus A).
    pub operand_a: u32,
    /// Second EX-stage operand value (operand bus B).
    pub operand_b: u32,
    /// GPR writeback, if any.
    pub result: Option<(Reg, u32)>,
    /// Data-memory access, if any.
    pub mem: Option<DataAccess>,
    /// Custom instruction id, if this was a custom instruction (its node
    /// values are left in [`CoreState::last_custom_nodes`]).
    pub custom: Option<CustomId>,
}

fn check_aligned(addr: u32, size: u32) -> Result<(), SimError> {
    if !addr.is_multiple_of(size) {
        Err(SimError::Unaligned { addr, size })
    } else {
        Ok(())
    }
}

/// Executes the instruction at the current PC, updating `state`.
///
/// # Errors
///
/// * [`SimError::InvalidPc`] — PC outside the text segment,
/// * [`SimError::UnknownCustom`] — custom id not in `ext`,
/// * [`SimError::Unaligned`] — misaligned data access,
/// * [`SimError::Graph`] — custom datapath evaluation failure.
pub fn step(
    state: &mut CoreState,
    program: &Program,
    ext: &ExtensionSet,
) -> Result<StepOutcome, SimError> {
    let pc = state.pc;
    let inst = decode(program, pc)?;
    execute(state, ext, inst, pc)
}

/// Looks up the (already statically decoded) instruction at `pc`.
///
/// Exposed separately from [`execute`] so the ISS can attribute
/// decode-lookup time to its own profiling phase.
///
/// # Errors
///
/// [`SimError::InvalidPc`] — PC outside the text segment.
#[inline]
pub fn decode(program: &Program, pc: u32) -> Result<Inst, SimError> {
    program.fetch(pc).copied().ok_or(SimError::InvalidPc(pc))
}

/// Executes one decoded instruction at `pc`, updating `state`.
///
/// # Errors
///
/// * [`SimError::UnknownCustom`] — custom id not in `ext`,
/// * [`SimError::Unaligned`] — misaligned data access,
/// * [`SimError::Graph`] — custom datapath evaluation failure.
pub fn execute(
    state: &mut CoreState,
    ext: &ExtensionSet,
    inst: Inst,
    pc: u32,
) -> Result<StepOutcome, SimError> {
    match inst {
        Inst::Base(b) => step_base(state, b, pc, inst),
        Inst::Custom(c) => {
            let spec = ext.get(c.id).ok_or(SimError::UnknownCustom(c.id))?;
            let (rs, rt, result) = execute_custom(state, spec, &c)?;
            let next_pc = pc.wrapping_add(layout::INST_BYTES);
            state.pc = next_pc;
            Ok(StepOutcome {
                inst,
                pc,
                next_pc,
                taken: false,
                halted: false,
                operand_a: rs,
                operand_b: rt,
                result,
                mem: None,
                custom: Some(c.id),
            })
        }
    }
}

/// What one custom execution exposes to stats accounting: the two
/// operand values and the GPR writeback (register, value), if any.
pub(crate) type CustomOutcome = (u32, u32, Option<(Reg, u32)>);

/// Executes one custom instruction against an already-resolved spec,
/// returning the operand values and the GPR writeback (if any). Shared by
/// the single-step executor and the micro-op engine so custom semantics —
/// including the scratch-buffer handling on datapath errors — can never
/// diverge between the two.
#[inline]
pub(crate) fn execute_custom(
    state: &mut CoreState,
    spec: &emx_tie::CompiledInst,
    c: &emx_isa::CustomSlot,
) -> Result<CustomOutcome, SimError> {
    let rs = state.reg(c.rs);
    let rt = state.reg(c.rt);
    let mut scratch = std::mem::take(&mut state.scratch);
    let gpr = spec.execute_into(rs, rt, c.imm, &mut state.ext_state, &mut scratch)?;
    state.scratch = scratch;
    let result = gpr.map(|v| {
        let v = v as u32;
        state.set_reg(c.rd, v);
        (c.rd, v)
    });
    Ok((rs, rt, result))
}

#[allow(clippy::too_many_lines)] // one arm per opcode: flat is clearest
fn step_base(
    state: &mut CoreState,
    b: BaseInst,
    pc: u32,
    inst: Inst,
) -> Result<StepOutcome, SimError> {
    use Opcode::*;

    let rs = state.reg(b.rs);
    let rt = state.reg(b.rt);
    let imm = b.imm;
    let seq = pc.wrapping_add(layout::INST_BYTES);

    let mut out = StepOutcome {
        inst,
        pc,
        next_pc: seq,
        taken: false,
        halted: false,
        operand_a: rs,
        operand_b: rt,
        result: None,
        mem: None,
        custom: None,
    };

    // Arithmetic helper: write rd.
    macro_rules! wr {
        ($v:expr) => {{
            let v: u32 = $v;
            state.set_reg(b.rd, v);
            out.result = Some((b.rd, v));
        }};
    }

    match b.op {
        // --- arithmetic ----------------------------------------------------
        Add => wr!(rs.wrapping_add(rt)),
        Sub => wr!(rs.wrapping_sub(rt)),
        And => wr!(rs & rt),
        Or => wr!(rs | rt),
        Xor => wr!(rs ^ rt),
        Sll => wr!(rs.wrapping_shl(rt & 31)),
        Srl => wr!(rs.wrapping_shr(rt & 31)),
        Sra => wr!(((rs as i32).wrapping_shr(rt & 31)) as u32),
        Ror => wr!(rs.rotate_right(rt & 31)),
        Slt => wr!(u32::from((rs as i32) < (rt as i32))),
        Sltu => wr!(u32::from(rs < rt)),
        Min => wr!((rs as i32).min(rt as i32) as u32),
        Max => wr!((rs as i32).max(rt as i32) as u32),
        Minu => wr!(rs.min(rt)),
        Maxu => wr!(rs.max(rt)),
        Moveqz => {
            if rt == 0 {
                wr!(rs);
            }
        }
        Movnez => {
            if rt != 0 {
                wr!(rs);
            }
        }
        Movltz => {
            if (rt as i32) < 0 {
                wr!(rs);
            }
        }
        Movgez => {
            if (rt as i32) >= 0 {
                wr!(rs);
            }
        }
        Mul => wr!(rs.wrapping_mul(rt)),
        Mulh => wr!(((i64::from(rs as i32) * i64::from(rt as i32)) >> 32) as u32),
        Muluh => wr!(((u64::from(rs) * u64::from(rt)) >> 32) as u32),
        Mul16s => wr!((i32::from(rs as i16).wrapping_mul(i32::from(rt as i16))) as u32),
        Mul16u => wr!((rs & 0xffff).wrapping_mul(rt & 0xffff)),
        Addi => wr!(rs.wrapping_add(imm as u32)),
        Addmi => wr!(rs.wrapping_add((imm as u32) << 8)),
        Andi => wr!(rs & imm as u32),
        Ori => wr!(rs | imm as u32),
        Xori => wr!(rs ^ imm as u32),
        Slti => wr!(u32::from((rs as i32) < imm)),
        Sltiu => wr!(u32::from(rs < imm as u32)),
        Slli => wr!(rs.wrapping_shl(imm as u32 & 31)),
        Srli => wr!(rs.wrapping_shr(imm as u32 & 31)),
        Srai => wr!(((rs as i32).wrapping_shr(imm as u32 & 31)) as u32),
        Rori => wr!(rs.rotate_right(imm as u32 & 31)),
        Extui => {
            let sa = imm as u32 & 31;
            let len = u32::from(b.len).clamp(1, 32);
            let mask = if len == 32 {
                u32::MAX
            } else {
                (1u32 << len) - 1
            };
            wr!((rs >> sa) & mask);
        }
        Neg => wr!((rs as i32).wrapping_neg() as u32),
        Abs => wr!((rs as i32).wrapping_abs() as u32),
        Not => wr!(!rs),
        Mov => wr!(rs),
        Sext8 => wr!(i32::from(rs as i8) as u32),
        Sext16 => wr!(i32::from(rs as i16) as u32),
        Clz => wr!(rs.leading_zeros()),
        Movi => wr!(imm as u32),
        Nop => {}
        // --- loads -----------------------------------------------------------
        L8ui | L8si | L16ui | L16si | L32i => {
            let addr = rs.wrapping_add(imm as u32);
            let (size, raw) = match b.op {
                L8ui | L8si => (1, u32::from(state.mem.read_u8(addr))),
                L16ui | L16si => {
                    check_aligned(addr, 2)?;
                    (2, u32::from(state.mem.read_u16(addr)))
                }
                _ => {
                    check_aligned(addr, 4)?;
                    (4, state.mem.read_u32(addr))
                }
            };
            let value = match b.op {
                L8si => i32::from(raw as u8 as i8) as u32,
                L16si => i32::from(raw as u16 as i16) as u32,
                _ => raw,
            };
            out.mem = Some(DataAccess {
                addr,
                size,
                write: false,
                value: raw,
            });
            wr!(value);
        }
        L32r => {
            let addr = b.target;
            check_aligned(addr, 4)?;
            let value = state.mem.read_u32(addr);
            out.mem = Some(DataAccess {
                addr,
                size: 4,
                write: false,
                value,
            });
            wr!(value);
        }
        // --- stores ----------------------------------------------------------
        S8i | S16i | S32i => {
            let addr = rs.wrapping_add(imm as u32);
            let value = rt;
            let size = match b.op {
                S8i => {
                    state.mem.write_u8(addr, value as u8);
                    1
                }
                S16i => {
                    check_aligned(addr, 2)?;
                    state.mem.write_u16(addr, value as u16);
                    2
                }
                _ => {
                    check_aligned(addr, 4)?;
                    state.mem.write_u32(addr, value);
                    4
                }
            };
            out.mem = Some(DataAccess {
                addr,
                size,
                write: true,
                value,
            });
        }
        // --- jumps -----------------------------------------------------------
        J => out.next_pc = b.target,
        Jx => out.next_pc = rs,
        Call => {
            state.set_reg(Reg::LINK, seq);
            out.result = Some((Reg::LINK, seq));
            out.next_pc = b.target;
        }
        Callx => {
            state.set_reg(Reg::LINK, seq);
            out.result = Some((Reg::LINK, seq));
            out.next_pc = rs;
        }
        Ret => out.next_pc = state.reg(Reg::LINK),
        // --- branches ---------------------------------------------------------
        Beq | Bne | Blt | Bge | Bltu | Bgeu | Ball | Bnall | Bany | Bnone | Beqz | Bnez | Bltz
        | Bgez | Beqi | Bnei | Blti | Bgei | Bltui | Bgeui => {
            let taken = match b.op {
                Beq => rs == rt,
                Bne => rs != rt,
                Blt => (rs as i32) < (rt as i32),
                Bge => (rs as i32) >= (rt as i32),
                Bltu => rs < rt,
                Bgeu => rs >= rt,
                Ball => (!rs & rt) == 0,
                Bnall => (!rs & rt) != 0,
                Bany => (rs & rt) != 0,
                Bnone => (rs & rt) == 0,
                Beqz => rs == 0,
                Bnez => rs != 0,
                Bltz => (rs as i32) < 0,
                Bgez => (rs as i32) >= 0,
                Beqi => rs == imm as u32,
                Bnei => rs != imm as u32,
                Blti => (rs as i32) < imm,
                Bgei => (rs as i32) >= imm,
                Bltui => rs < imm as u32,
                Bgeui => rs >= imm as u32,
                _ => unreachable!(),
            };
            out.taken = taken;
            if taken {
                out.next_pc = b.target;
            }
        }
        // --- system ------------------------------------------------------------
        Halt => {
            out.halted = true;
            out.next_pc = pc;
        }
    }

    state.pc = out.next_pc;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn run_to_halt(src: &str) -> Result<CoreState, Box<dyn std::error::Error>> {
        let program = Assembler::new().assemble(src)?;
        let ext = ExtensionSet::empty();
        let mut state = CoreState::new(&program, &ext);
        for _ in 0..10_000 {
            let out = step(&mut state, &program, &ext)?;
            if out.halted {
                return Ok(state);
            }
        }
        Err("program did not halt".into())
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn arithmetic_semantics() -> TestResult {
        let s = run_to_halt(
            "movi a2, 7\nmovi a3, -3\nadd a4, a2, a3\nsub a5, a2, a3\nmul a6, a2, a3\n\
             neg a7, a3\nabs a8, a3\nclz a9, a2\nmax a10, a2, a3\nminu a11, a2, a3\nhalt",
        )?;
        assert_eq!(s.reg(r(4)), 4);
        assert_eq!(s.reg(r(5)), 10);
        assert_eq!(s.reg(r(6)) as i32, -21);
        assert_eq!(s.reg(r(7)), 3);
        assert_eq!(s.reg(r(8)), 3);
        assert_eq!(s.reg(r(9)), 29);
        assert_eq!(s.reg(r(10)), 7);
        assert_eq!(s.reg(r(11)), 7); // unsigned: -3 is huge
        Ok(())
    }

    #[test]
    fn shift_semantics() -> TestResult {
        let s = run_to_halt(
            "movi a2, 0x80000001\nslli a3, a2, 1\nsrli a4, a2, 1\nsrai a5, a2, 1\n\
             rori a6, a2, 1\nmovi a7, 4\nsll a8, a2, a7\nhalt",
        )?;
        assert_eq!(s.reg(r(3)), 2);
        assert_eq!(s.reg(r(4)), 0x4000_0000);
        assert_eq!(s.reg(r(5)), 0xc000_0000);
        assert_eq!(s.reg(r(6)), 0xc000_0000);
        assert_eq!(s.reg(r(8)), 0x10);
        Ok(())
    }

    #[test]
    fn mul_variants() -> TestResult {
        let s = run_to_halt(
            "movi a2, 0x10000\nmovi a3, 0x10000\nmulh a4, a2, a3\nmuluh a5, a2, a3\n\
             movi a6, -2\nmovi a7, 3\nmul16s a8, a6, a7\nmul16u a9, a6, a7\nhalt",
        )?;
        assert_eq!(s.reg(r(4)), 1);
        assert_eq!(s.reg(r(5)), 1);
        assert_eq!(s.reg(r(8)) as i32, -6);
        assert_eq!(s.reg(r(9)), 0xfffe * 3);
        Ok(())
    }

    #[test]
    fn extui_and_sext() -> TestResult {
        let s = run_to_halt(
            "movi a2, 0x12345678\nextui a3, a2, 8, 12\nmovi a4, 0x80\nsext8 a5, a4\n\
             movi a6, 0x8000\nsext16 a7, a6\nhalt",
        )?;
        assert_eq!(s.reg(r(3)), 0x456);
        assert_eq!(s.reg(r(5)), 0xffff_ff80);
        assert_eq!(s.reg(r(7)), 0xffff_8000);
        Ok(())
    }

    #[test]
    fn conditional_moves() -> TestResult {
        let s = run_to_halt(
            "movi a2, 5\nmovi a3, 0\nmovi a4, 99\nmoveqz a4, a2, a3\n\
             movi a5, 99\nmovnez a5, a2, a3\nmovi a6, -1\nmovi a7, 99\nmovltz a7, a2, a6\nhalt",
        )?;
        assert_eq!(s.reg(r(4)), 5); // a3 == 0 → moved
        assert_eq!(s.reg(r(5)), 99); // a3 == 0 → not moved
        assert_eq!(s.reg(r(7)), 5); // a6 < 0 → moved
        Ok(())
    }

    #[test]
    fn memory_round_trip() -> TestResult {
        let s = run_to_halt(
            ".data\nbuf: .space 16\n.text\nmovi a2, buf\nmovi a3, 0x1234abcd\n\
             s32i a3, 0(a2)\nl32i a4, 0(a2)\nl16ui a5, 0(a2)\nl16si a6, 2(a2)\n\
             l8ui a7, 3(a2)\ns8i a3, 8(a2)\nl8si a8, 8(a2)\nhalt",
        )?;
        assert_eq!(s.reg(r(4)), 0x1234_abcd);
        assert_eq!(s.reg(r(5)), 0xabcd);
        assert_eq!(s.reg(r(6)), 0x1234);
        assert_eq!(s.reg(r(7)), 0x12);
        assert_eq!(s.reg(r(8)), 0xffff_ffcd);
        Ok(())
    }

    #[test]
    fn unaligned_access_faults() -> TestResult {
        let program = Assembler::new().assemble("movi a2, 1\nl32i a3, 0(a2)\nhalt")?;
        let ext = ExtensionSet::empty();
        let mut state = CoreState::new(&program, &ext);
        step(&mut state, &program, &ext)?;
        assert_eq!(
            step(&mut state, &program, &ext),
            Err(SimError::Unaligned { addr: 1, size: 4 })
        );
        Ok(())
    }

    #[test]
    fn calls_and_returns() -> TestResult {
        let s = run_to_halt("movi a2, 1\ncall fn\nmovi a4, 7\nhalt\nfn: movi a3, 6\nret")?;
        assert_eq!(s.reg(r(3)), 6);
        assert_eq!(s.reg(r(4)), 7);
        Ok(())
    }

    #[test]
    fn computed_jump() -> TestResult {
        let s = run_to_halt("movi a2, tgt\njx a2\nmovi a3, 1\nhalt\ntgt: movi a3, 2\nhalt")?;
        assert_eq!(s.reg(r(3)), 2);
        Ok(())
    }

    #[test]
    fn branch_taken_and_untaken() -> TestResult {
        let program = Assembler::new()
            .assemble("movi a2, 0\nbeqz a2, yes\nnop\nyes: bnez a2, no\nhalt\nno: nop\nhalt")?;
        let ext = ExtensionSet::empty();
        let mut state = CoreState::new(&program, &ext);
        step(&mut state, &program, &ext)?;
        let b1 = step(&mut state, &program, &ext)?;
        assert!(b1.taken);
        let b2 = step(&mut state, &program, &ext)?;
        assert!(!b2.taken);
        Ok(())
    }

    #[test]
    fn mask_branches() -> TestResult {
        let s = run_to_halt(
            "movi a2, 0b1110\nmovi a3, 0b0110\nmovi a4, 0\n\
             ball a2, a3, t1\nj end\nt1: addi a4, a4, 1\n\
             bany a2, a3, t2\nj end\nt2: addi a4, a4, 1\n\
             movi a5, 0b0001\nbnone a2, a5, t3\nj end\nt3: addi a4, a4, 1\n\
             end: halt",
        )?;
        assert_eq!(s.reg(r(4)), 3);
        Ok(())
    }

    #[test]
    fn invalid_pc_detected() -> TestResult {
        let program = Assembler::new().assemble("nop\nnop\n")?;
        let ext = ExtensionSet::empty();
        let mut state = CoreState::new(&program, &ext);
        step(&mut state, &program, &ext)?;
        step(&mut state, &program, &ext)?;
        assert_eq!(
            step(&mut state, &program, &ext),
            Err(SimError::InvalidPc(8))
        );
        Ok(())
    }

    #[test]
    fn l32r_reads_literal() -> TestResult {
        let s = run_to_halt(".data\nk: .word 0xcafef00d\n.text\nl32r a2, k\nhalt")?;
        assert_eq!(s.reg(r(2)), 0xcafe_f00d);
        Ok(())
    }
}
