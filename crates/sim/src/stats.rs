use std::fmt;

use emx_isa::DynClass;
use emx_obs::json::Value;

/// Execution statistics gathered by instruction-set simulation — the raw
/// material of the macro-model's independent variables (steps 6/7 and 9/10
/// of the paper's flow).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecStats {
    /// Cycles spent by each dynamic base-instruction class
    /// (`n_A, n_L, n_S, n_J, n_Bt, n_Bu`), indexed by
    /// [`DynClass::index`]. Includes the pipeline cycles architecturally
    /// attributed to the class (e.g. taken-branch flush bubbles) but not
    /// stall/miss penalties, which have their own variables.
    pub class_cycles: [u64; 6],
    /// Dynamic instruction count per class.
    pub class_counts: [u64; 6],
    /// Instruction-cache misses (`n_icm`).
    pub icache_misses: u64,
    /// Data-cache misses (`n_dcm`), including uncached data accesses.
    pub dcache_misses: u64,
    /// Uncached instruction fetches (`n_ucf`).
    pub uncached_fetches: u64,
    /// Pipeline interlocks (`n_ilk`): load-use, multiplier-use and
    /// custom-result hazards, one stall cycle each.
    pub interlocks: u64,
    /// Cycles spent by custom instructions that access the general-purpose
    /// register file (`n_CI`, the base-processor side-effect variable).
    pub ci_gpr_cycles: u64,
    /// Total cycles spent by custom instructions (whether or not they
    /// touch the GPR file).
    pub custom_cycles: u64,
    /// Executions of each custom instruction, indexed by
    /// [`emx_isa::CustomId`] value.
    pub custom_counts: Vec<u64>,
    /// Structural activity per hardware-library category: the accumulated
    /// `Σ_j f(C_ij) · activations(i,j)` of Eq. (4), indexed by
    /// [`emx_hwlib::Category::index`]. This is the output of the dynamic
    /// resource-usage analysis.
    pub struct_activity: [f64; 10],
    /// Raw (complexity-unweighted) component activations per category —
    /// kept alongside [`ExecStats::struct_activity`] so ablation studies
    /// can quantify the value of the `f(C)` bit-width weighting.
    pub struct_activations: [f64; 10],
    /// Cycles attributed to each base opcode, indexed by
    /// [`emx_isa::Opcode::index`] — enables finer-than-class model
    /// granularity in ablation studies.
    pub opcode_cycles: Vec<u64>,
    /// Total cycles, including all penalties.
    pub total_cycles: u64,
    /// Total retired instructions.
    pub inst_count: u64,
}

impl ExecStats {
    /// Creates zeroed statistics sized for an extension set with
    /// `num_custom` instructions.
    pub fn new(num_custom: usize) -> Self {
        ExecStats {
            custom_counts: vec![0; num_custom],
            opcode_cycles: vec![0; emx_isa::Opcode::ALL.len()],
            ..Default::default()
        }
    }

    /// Cycles attributed to one dynamic class.
    pub fn cycles_of(&self, class: DynClass) -> u64 {
        self.class_cycles[class.index()]
    }

    /// Dynamic count of one class.
    pub fn count_of(&self, class: DynClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Sum of all per-class cycles (base instructions only).
    pub fn base_class_cycles(&self) -> u64 {
        self.class_cycles.iter().sum()
    }

    /// Serializes the statistics as JSON with a stable, versioned schema
    /// (`emx-run --stats-json` emits exactly this document).
    ///
    /// Schema `emx.exec-stats/1`:
    ///
    /// ```text
    /// {
    ///   "schema": "emx.exec-stats/1",
    ///   "instructions": u64,            // total retired instructions
    ///   "total_cycles": u64,            // including all penalties
    ///   "classes": {                    // one entry per dynamic class,
    ///     "arithmetic":     { "count": u64, "cycles": u64 },
    ///     "load":           { ... },    // keys are DynClass names:
    ///     ...                           // arithmetic, load, store, jump,
    ///   },                              // branch-taken, branch-untaken
    ///   "icache_misses": u64,           // n_icm
    ///   "dcache_misses": u64,           // n_dcm (incl. uncached data)
    ///   "uncached_fetches": u64,        // n_ucf
    ///   "interlocks": u64,              // n_ilk
    ///   "ci_gpr_cycles": u64,           // n_CI
    ///   "custom_cycles": u64,
    ///   "custom_counts": [u64, ...],    // indexed by CustomId
    ///   "structural": {                 // one entry per hwlib category
    ///     "multiplier": { "activity": f64, "activations": f64 },
    ///     ...                           // keys are Category names
    ///   },
    ///   "opcode_cycles": { "add": u64, ... }  // nonzero opcodes only
    /// }
    /// ```
    ///
    /// Additions will bump the schema suffix; existing keys never change
    /// meaning within a version.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("schema", "emx.exec-stats/1");
        doc.set("instructions", self.inst_count);
        doc.set("total_cycles", self.total_cycles);

        let mut classes = Value::object();
        for class in DynClass::ALL {
            let mut entry = Value::object();
            entry.set("count", self.count_of(class));
            entry.set("cycles", self.cycles_of(class));
            classes.set(&class.to_string(), entry);
        }
        doc.set("classes", classes);

        doc.set("icache_misses", self.icache_misses);
        doc.set("dcache_misses", self.dcache_misses);
        doc.set("uncached_fetches", self.uncached_fetches);
        doc.set("interlocks", self.interlocks);
        doc.set("ci_gpr_cycles", self.ci_gpr_cycles);
        doc.set("custom_cycles", self.custom_cycles);
        doc.set(
            "custom_counts",
            Value::from(
                self.custom_counts
                    .iter()
                    .map(|&n| Value::from(n))
                    .collect::<Vec<Value>>(),
            ),
        );

        let mut structural = Value::object();
        for category in emx_hwlib::Category::ALL {
            let mut entry = Value::object();
            entry.set("activity", self.struct_activity[category.index()]);
            entry.set("activations", self.struct_activations[category.index()]);
            structural.set(&category.to_string(), entry);
        }
        doc.set("structural", structural);

        let mut opcodes = Value::object();
        for opcode in emx_isa::Opcode::ALL {
            let cycles = self.opcode_cycles[opcode.index()];
            if cycles > 0 {
                opcodes.set(opcode.mnemonic(), cycles);
            }
        }
        doc.set("opcode_cycles", opcodes);
        doc
    }

    /// Parses a document written by [`ExecStats::to_json`] back into
    /// statistics. Returns `None` when the schema differs or any
    /// required field is missing or malformed.
    ///
    /// The round trip is **exact**: `obs::json` prints floats in
    /// shortest-round-trip form and every counter fits `f64` losslessly
    /// under the 2³²-cycle simulation budget, so
    /// `ExecStats::from_json(&s.to_json()) == Some(s)`. The DSE
    /// extraction cache relies on this to re-price persisted counts
    /// byte-identically to a fresh simulation.
    pub fn from_json(doc: &Value) -> Option<ExecStats> {
        if doc.get("schema").and_then(Value::as_str) != Some("emx.exec-stats/1") {
            return None;
        }
        let mut s = ExecStats::new(0);
        s.inst_count = doc.get("instructions").and_then(Value::as_u64)?;
        s.total_cycles = doc.get("total_cycles").and_then(Value::as_u64)?;
        let classes = doc.get("classes")?;
        for class in DynClass::ALL {
            let entry = classes.get(&class.to_string())?;
            s.class_counts[class.index()] = entry.get("count").and_then(Value::as_u64)?;
            s.class_cycles[class.index()] = entry.get("cycles").and_then(Value::as_u64)?;
        }
        s.icache_misses = doc.get("icache_misses").and_then(Value::as_u64)?;
        s.dcache_misses = doc.get("dcache_misses").and_then(Value::as_u64)?;
        s.uncached_fetches = doc.get("uncached_fetches").and_then(Value::as_u64)?;
        s.interlocks = doc.get("interlocks").and_then(Value::as_u64)?;
        s.ci_gpr_cycles = doc.get("ci_gpr_cycles").and_then(Value::as_u64)?;
        s.custom_cycles = doc.get("custom_cycles").and_then(Value::as_u64)?;
        s.custom_counts = doc
            .get("custom_counts")
            .and_then(Value::as_array)?
            .iter()
            .map(Value::as_u64)
            .collect::<Option<Vec<u64>>>()?;
        let structural = doc.get("structural")?;
        for category in emx_hwlib::Category::ALL {
            let entry = structural.get(&category.to_string())?;
            s.struct_activity[category.index()] = entry.get("activity").and_then(Value::as_f64)?;
            s.struct_activations[category.index()] =
                entry.get("activations").and_then(Value::as_f64)?;
        }
        let opcodes = doc.get("opcode_cycles")?;
        for opcode in emx_isa::Opcode::ALL {
            if let Some(cycles) = opcodes.get(opcode.mnemonic()).and_then(Value::as_u64) {
                s.opcode_cycles[opcode.index()] = cycles;
            }
        }
        Some(s)
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instructions: {}", self.inst_count)?;
        writeln!(f, "cycles:       {}", self.total_cycles)?;
        for class in DynClass::ALL {
            writeln!(
                f,
                "  {:<16} {:>10} insts {:>10} cycles",
                class.to_string(),
                self.count_of(class),
                self.cycles_of(class)
            )?;
        }
        writeln!(f, "  icache misses   {:>10}", self.icache_misses)?;
        writeln!(f, "  dcache misses   {:>10}", self.dcache_misses)?;
        writeln!(f, "  uncached fetch  {:>10}", self.uncached_fetches)?;
        writeln!(f, "  interlocks      {:>10}", self.interlocks)?;
        writeln!(
            f,
            "  custom cycles   {:>10} (GPR-coupled: {})",
            self.custom_cycles, self.ci_gpr_cycles
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let s = ExecStats::new(3);
        assert_eq!(s.custom_counts, vec![0, 0, 0]);
        assert_eq!(s.total_cycles, 0);
        assert_eq!(s.base_class_cycles(), 0);
    }

    #[test]
    fn class_accessors() {
        let mut s = ExecStats::new(0);
        s.class_cycles[DynClass::Load.index()] = 7;
        s.class_counts[DynClass::Load.index()] = 5;
        assert_eq!(s.cycles_of(DynClass::Load), 7);
        assert_eq!(s.count_of(DynClass::Load), 5);
        assert_eq!(s.base_class_cycles(), 7);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let mut s = ExecStats::new(2);
        s.inst_count = 1234;
        s.total_cycles = 5678;
        s.class_counts[DynClass::Load.index()] = 100;
        s.class_cycles[DynClass::Load.index()] = 250;
        s.icache_misses = 7;
        s.custom_counts = vec![3, 9];
        s.struct_activity[0] = 1.5;
        s.opcode_cycles[emx_isa::Opcode::ALL[0].index()] = 42;

        let text = s.to_json().to_string();
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("emx.exec-stats/1")
        );
        assert_eq!(doc.get("instructions").and_then(Value::as_u64), Some(1234));
        assert_eq!(doc.get("total_cycles").and_then(Value::as_u64), Some(5678));
        let load = doc.get("classes").unwrap().get("load").unwrap();
        assert_eq!(load.get("count").and_then(Value::as_u64), Some(100));
        assert_eq!(load.get("cycles").and_then(Value::as_u64), Some(250));
        assert_eq!(
            doc.get("custom_counts")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(2)
        );
        // Every dynamic class and every structural category is present.
        for class in DynClass::ALL {
            assert!(doc
                .get("classes")
                .unwrap()
                .get(&class.to_string())
                .is_some());
        }
        for category in emx_hwlib::Category::ALL {
            assert!(doc
                .get("structural")
                .unwrap()
                .get(&category.to_string())
                .is_some());
        }
    }

    #[test]
    fn from_json_round_trip_is_exact() {
        // A stats value with every field group populated, including
        // non-integral structural activity, must survive the JSON round
        // trip bit-for-bit — the extraction cache's core invariant.
        let mut s = ExecStats::new(3);
        s.inst_count = 987_654;
        s.total_cycles = 1_234_567;
        for (i, c) in s.class_counts.iter_mut().enumerate() {
            *c = 11 * (i as u64 + 1);
        }
        for (i, c) in s.class_cycles.iter_mut().enumerate() {
            *c = 17 * (i as u64 + 1);
        }
        s.icache_misses = 41;
        s.dcache_misses = 42;
        s.uncached_fetches = 43;
        s.interlocks = 44;
        s.ci_gpr_cycles = 45;
        s.custom_cycles = 46;
        s.custom_counts = vec![5, 0, 7];
        for (i, a) in s.struct_activity.iter_mut().enumerate() {
            *a = 0.1 + i as f64 / 3.0; // deliberately non-representable
        }
        for (i, a) in s.struct_activations.iter_mut().enumerate() {
            *a = i as f64 * 7.0;
        }
        s.opcode_cycles[0] = 9;
        s.opcode_cycles[emx_isa::Opcode::ALL.len() - 1] = 3;

        let text = s.to_json().to_string();
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(ExecStats::from_json(&doc), Some(s));
    }

    #[test]
    fn from_json_rejects_foreign_and_malformed_documents() {
        let other = Value::parse("{\"schema\":\"emx.exec-stats/2\"}").unwrap();
        assert_eq!(ExecStats::from_json(&other), None);
        // Dropping a required field fails the parse instead of zeroing
        // a counter silently.
        let mut doc = ExecStats::new(0).to_json();
        doc.set("interlocks", Value::Null);
        assert_eq!(ExecStats::from_json(&doc), None);
    }

    #[test]
    fn display_mentions_all_classes() {
        let s = ExecStats::new(0);
        let text = s.to_string();
        for class in DynClass::ALL {
            assert!(text.contains(&class.to_string()));
        }
    }
}
