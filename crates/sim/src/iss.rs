use emx_isa::program::layout;
use emx_isa::{encode, DynClass, Inst, Opcode, Program, Reg};
use emx_tie::ExtensionSet;

use crate::phase::{lap, NullPhases, Phase, PhaseProfile, PhaseRecorder};
use crate::record::{ActivitySink, CustomActivity, InstKind, InstRecord, MemAccess, NullSink};
use crate::{Cache, CoreState, ExecStats, ProcConfig, SimError};

/// What kind of delayed-result hazard the previous instruction left
/// behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HazKind {
    Load,
    Mul,
    Custom,
}

/// Result of a completed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The gathered execution statistics.
    pub stats: ExecStats,
    /// `true` if the program reached `halt` (always true on `Ok`; kept for
    /// symmetry with partial-run extensions).
    pub halted: bool,
}

/// The functional instruction-set simulator (the paper's "instruction set
/// simulation" step).
///
/// Executes a program on a base-plus-extension processor configuration,
/// modeling exactly the micro-architectural effects the macro-model
/// variables observe: per-class cycles, I/D-cache misses, uncached
/// fetches, pipeline interlocks, custom-instruction latencies and GPR
/// coupling, and the dynamic resource usage of the custom hardware.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Interp<'a> {
    pub(crate) program: &'a Program,
    pub(crate) ext: &'a ExtensionSet,
    pub(crate) config: ProcConfig,
    pub(crate) state: CoreState,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) stats: ExecStats,
    pub(crate) hazard: Option<(Reg, HazKind)>,
}

impl<'a> Interp<'a> {
    /// Creates a simulator at the program's entry point.
    pub fn new(program: &'a Program, ext: &'a ExtensionSet, config: ProcConfig) -> Self {
        Interp {
            program,
            ext,
            state: CoreState::new(program, ext),
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            stats: ExecStats::new(ext.len()),
            config,
            hazard: None,
        }
    }

    /// The architectural state (registers, memory, custom state).
    pub fn state(&self) -> &CoreState {
        &self.state
    }

    /// Statistics gathered so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The processor configuration in use.
    pub fn config(&self) -> &ProcConfig {
        &self.config
    }

    /// Runs until `halt`, or until `max_cycles` simulated cycles have
    /// elapsed.
    ///
    /// This is the fast path: it executes over a pre-decoded micro-op
    /// table (see the `uop` module) and is observationally identical —
    /// statistics, architectural state, and errors — to the legacy
    /// single-step interpreter, which remains available as
    /// [`Interp::run_legacy`] for differential testing.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if the budget is exhausted, plus any
    /// executor error ([`SimError::InvalidPc`], [`SimError::Unaligned`],
    /// …).
    pub fn run(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        crate::uop::run(self, max_cycles)
    }

    /// Runs like [`Interp::run`] (micro-op engine) while counting retired
    /// executions of each static instruction into `counts`, indexed like
    /// `Program::text`. `counts` is resized to the program length; a
    /// caller-provided buffer lets repeated runs reuse one allocation.
    ///
    /// This is the observation hook behind
    /// [`observe::exec_counts`](crate::observe::exec_counts), which
    /// custom-instruction discovery uses to weight basic blocks by how
    /// often they executed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`]; on error, `counts` covers the
    /// instructions retired before the error fired.
    pub fn run_with_exec_counts(
        &mut self,
        max_cycles: u64,
        counts: &mut Vec<u64>,
    ) -> Result<RunResult, SimError> {
        counts.clear();
        counts.resize(self.program.len(), 0);
        crate::uop::run_counting(self, max_cycles, counts)
    }

    /// Runs like [`Interp::run`] on the legacy single-step interpreter
    /// instead of the micro-op engine. The two paths are byte-identical
    /// in statistics, state and errors; this one exists as the
    /// differential-testing reference (and is what the activity-streaming
    /// [`Interp::run_with_sink`] path uses internally).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`].
    pub fn run_legacy(&mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        self.run_with_sink(&mut NullSink, max_cycles)
    }

    /// Runs like [`Interp::run`] while streaming per-instruction activity
    /// records into `sink`. This is the slow, detailed path used by the
    /// RTL-level energy estimator.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`].
    pub fn run_with_sink<S: ActivitySink>(
        &mut self,
        sink: &mut S,
        max_cycles: u64,
    ) -> Result<RunResult, SimError> {
        self.run_with_phases(sink, &mut NullPhases, max_cycles)
    }

    /// Runs like [`Interp::run_with_sink`] while attributing host time
    /// to the five per-instruction phases via `phases`.
    ///
    /// With [`NullPhases`] this is exactly [`Interp::run_with_sink`] —
    /// the `const ACTIVE` flag removes every clock read at compile time.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`].
    pub fn run_with_phases<S: ActivitySink, P: PhaseRecorder>(
        &mut self,
        sink: &mut S,
        phases: &mut P,
        max_cycles: u64,
    ) -> Result<RunResult, SimError> {
        loop {
            if self.stats.total_cycles >= max_cycles {
                return Err(SimError::CycleLimit(max_cycles));
            }
            if self.step_counted(sink, phases)? {
                return Ok(RunResult {
                    stats: self.stats.clone(),
                    halted: true,
                });
            }
        }
    }

    /// Runs with phase profiling enabled and folds the result into
    /// `collector` (as `iss.phase.*` counters) when it is enabled.
    ///
    /// A disabled collector selects the un-instrumented fast path — the
    /// returned profile is then empty, and the run is bit-identical to
    /// [`Interp::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interp::run`].
    pub fn run_profiled(
        &mut self,
        max_cycles: u64,
        collector: &mut emx_obs::Collector,
    ) -> Result<(RunResult, PhaseProfile), SimError> {
        if !collector.is_enabled() {
            let run = self.run(max_cycles)?;
            return Ok((run, PhaseProfile::new()));
        }
        let mut profile = PhaseProfile::new();
        let run = self.run_with_phases(&mut NullSink, &mut profile, max_cycles)?;
        profile.export_to(collector);
        Ok((run, profile))
    }

    /// Executes one instruction with full cycle accounting; returns `true`
    /// on `halt`.
    fn step_counted<S: ActivitySink, P: PhaseRecorder>(
        &mut self,
        sink: &mut S,
        phases: &mut P,
    ) -> Result<bool, SimError> {
        let mut clock = None;
        lap(phases, Phase::Fetch, &mut clock); // starts the lap clock
        let pc = self.state.pc();

        // ---- instruction fetch ------------------------------------------------
        let fetch_uncached = layout::is_uncached(pc);
        let mut penalty_cycles: u32 = 0;
        let mut fetch_hit = true;
        if fetch_uncached {
            self.stats.uncached_fetches += 1;
            penalty_cycles += self.config.uncached_fetch_penalty;
            fetch_hit = false;
        } else if !self.icache.access(pc, false).hit {
            self.stats.icache_misses += 1;
            penalty_cycles += self.config.icache_miss_penalty;
            fetch_hit = false;
        }

        lap(phases, Phase::Fetch, &mut clock);

        // ---- decode ------------------------------------------------------------
        let inst = crate::exec::decode(self.program, pc)?;
        lap(phases, Phase::Decode, &mut clock);

        // ---- execute -----------------------------------------------------------
        let out = crate::exec::execute(&mut self.state, self.ext, inst, pc)?;

        // ---- interlock detection ------------------------------------------------
        let (read_a, read_b) = match &out.inst {
            Inst::Base(b) => b.read_regs(),
            Inst::Custom(c) => {
                // exec::step validated the id, but re-check instead of
                // panicking so a future desync stays a recoverable error.
                let spec = self.ext.get(c.id).ok_or(SimError::UnknownCustom(c.id))?;
                let sig = spec.signature();
                (
                    (sig.gpr_reads >= 1).then_some(c.rs),
                    (sig.gpr_reads >= 2).then_some(c.rt),
                )
            }
        };
        let mut stall_cycles = 0u32;
        if let Some((hreg, _)) = self.hazard {
            if read_a == Some(hreg) || read_b == Some(hreg) {
                stall_cycles = 1;
                self.stats.interlocks += 1;
            }
        }

        // ---- per-kind cycle accounting -------------------------------------------
        let (kind, base_cycles, flush_cycles) = match &out.inst {
            Inst::Base(b) => {
                let class = DynClass::from_base(b.op.base_class(), out.taken);
                let cost = match class {
                    DynClass::BranchTaken => self.config.branch_taken_cycles,
                    DynClass::Jump if b.op != Opcode::Halt => self.config.jump_cycles,
                    _ => 1,
                };
                self.stats.class_cycles[class.index()] += u64::from(cost);
                self.stats.class_counts[class.index()] += 1;
                self.stats.opcode_cycles[b.op.index()] += u64::from(cost);
                // `saturating_sub`: a zero-cost branch/jump config (legal,
                // if unusual) must yield zero flush cycles, not underflow.
                (
                    InstKind::Base(class, b.op.exec_unit()),
                    cost,
                    cost.saturating_sub(1),
                )
            }
            Inst::Custom(c) => {
                let spec = self.ext.get(c.id).ok_or(SimError::UnknownCustom(c.id))?;
                let cost = u32::from(spec.latency());
                self.stats.custom_cycles += u64::from(cost);
                if spec.uses_gpr() {
                    self.stats.ci_gpr_cycles += u64::from(cost);
                }
                self.stats.custom_counts[c.id.0 as usize] += 1;
                for (acc, add) in self
                    .stats
                    .struct_activity
                    .iter_mut()
                    .zip(spec.resource_vector())
                {
                    *acc += add;
                }
                for (acc, add) in self
                    .stats
                    .struct_activations
                    .iter_mut()
                    .zip(spec.resource_counts())
                {
                    *acc += add;
                }
                (InstKind::Custom(c.id), cost, 0)
            }
        };
        lap(phases, Phase::Execute, &mut clock);

        // ---- data memory ------------------------------------------------------------
        let mem = out.mem.map(|d| {
            let uncached = layout::is_uncached(d.addr);
            let (hit, writeback) = if uncached {
                self.stats.dcache_misses += 1;
                penalty_cycles += self.config.uncached_fetch_penalty;
                (false, false)
            } else {
                let acc = self.dcache.access(d.addr, d.write);
                if !acc.hit {
                    self.stats.dcache_misses += 1;
                    penalty_cycles += self.config.dcache_miss_penalty;
                }
                (acc.hit, acc.writeback)
            };
            MemAccess {
                addr: d.addr,
                size: d.size,
                write: d.write,
                value: d.value,
                hit,
                writeback,
                uncached,
            }
        });
        lap(phases, Phase::Memory, &mut clock);

        // ---- hazard bookkeeping for the next instruction ----------------------------
        self.hazard = match &out.inst {
            Inst::Base(b) if b.op.base_class() == emx_isa::BaseClass::Load => {
                out.result.map(|(r, _)| (r, HazKind::Load))
            }
            Inst::Base(b) if b.op.is_multiply() => out.result.map(|(r, _)| (r, HazKind::Mul)),
            Inst::Custom(_) => out.result.map(|(r, _)| (r, HazKind::Custom)),
            _ => None,
        };

        // ---- totals --------------------------------------------------------------------
        let cycles = base_cycles + stall_cycles + penalty_cycles;
        self.stats.total_cycles += u64::from(cycles);
        self.stats.inst_count += 1;

        // ---- activity record (skipped entirely on the fast path) -------------------------
        if S::ACTIVE {
            let custom = match (&out.inst, out.custom) {
                (Inst::Custom(_), Some(id)) => {
                    let spec = self.ext.get(id).ok_or(SimError::UnknownCustom(id))?;
                    Some(CustomActivity {
                        id,
                        latency: spec.latency(),
                        uses_gpr: spec.uses_gpr(),
                        node_values: self.state.last_custom_nodes(),
                    })
                }
                _ => None,
            };
            let record = InstRecord {
                pc,
                word: encode(&out.inst),
                inst: out.inst,
                kind,
                operand_a: out.operand_a,
                operand_b: out.operand_b,
                result: out.result,
                cycles,
                stall_cycles,
                flush_cycles,
                fetch_hit,
                fetch_uncached,
                mem,
                custom,
            };
            sink.record(&record);
        }
        lap(phases, Phase::Observe, &mut clock);
        if P::ACTIVE {
            phases.retire();
        }

        Ok(out.halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::asm::Assembler;

    fn sim(src: &str) -> (ExecStats, u32) {
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let mut interp = Interp::new(&program, &ext, ProcConfig::default());
        let run = interp.run(10_000_000).unwrap();
        let a2 = interp.state().reg(Reg::new(2));
        (run.stats, a2)
    }

    #[test]
    fn counts_classes() {
        let (stats, _) =
            sim("movi a2, 3\nmovi a3, 0\nl: addi a3, a3, 1\naddi a2, a2, -1\nbnez a2, l\nhalt");
        // movi×2 + (addi,addi)×3 = 8 arithmetic instructions.
        assert_eq!(stats.count_of(DynClass::Arithmetic), 8);
        assert_eq!(stats.count_of(DynClass::BranchTaken), 2);
        assert_eq!(stats.count_of(DynClass::BranchUntaken), 1);
        // halt counts as one jump-class instruction at 1 cycle.
        assert_eq!(stats.count_of(DynClass::Jump), 1);
        assert_eq!(stats.cycles_of(DynClass::Jump), 1);
        // Taken branches occupy 3 cycles each by default.
        assert_eq!(stats.cycles_of(DynClass::BranchTaken), 6);
    }

    #[test]
    fn load_use_interlock_detected() {
        let (with, _) =
            sim(".data\nv: .word 5\n.text\nmovi a2, v\nl32i a3, 0(a2)\nadd a4, a3, a3\nhalt");
        let (without, _) =
            sim(".data\nv: .word 5\n.text\nmovi a2, v\nl32i a3, 0(a2)\nnop\nadd a4, a3, a3\nhalt");
        assert_eq!(with.interlocks, 1);
        assert_eq!(without.interlocks, 0);
    }

    #[test]
    fn mul_result_interlock() {
        let (stats, _) = sim("movi a2, 3\nmovi a3, 4\nmul a4, a2, a3\nadd a5, a4, a4\nhalt");
        assert_eq!(stats.interlocks, 1);
        let (stats2, _) = sim("movi a2, 3\nmovi a3, 4\nmul a4, a2, a3\nadd a5, a2, a3\nhalt");
        assert_eq!(stats2.interlocks, 0);
    }

    #[test]
    fn icache_misses_counted() {
        // 6 instructions fit in a single 32-byte line starting at 0.
        let (stats, _) = sim("nop\nnop\nnop\nnop\nnop\nhalt");
        assert_eq!(stats.icache_misses, 1);
        assert_eq!(stats.uncached_fetches, 0);
    }

    #[test]
    fn uncached_fetch_counted() {
        let (stats, _) = sim(".uncached\nnop\nnop\nhalt");
        assert_eq!(stats.uncached_fetches, 3);
        assert_eq!(stats.icache_misses, 0);
        // Each uncached fetch costs its penalty on top of the base cycle.
        let cfg = ProcConfig::default();
        assert_eq!(
            stats.total_cycles,
            3 + 3 * u64::from(cfg.uncached_fetch_penalty)
        );
    }

    #[test]
    fn dcache_misses_counted() {
        // Two loads from the same line: one miss, one hit.
        let (stats, _) =
            sim(".data\nv: .word 1, 2\n.text\nmovi a2, v\nl32i a3, 0(a2)\nl32i a4, 4(a2)\nhalt");
        assert_eq!(stats.dcache_misses, 1);
    }

    #[test]
    fn cycle_limit_enforced() {
        let program = Assembler::new().assemble("l: j l\n").unwrap();
        let ext = ExtensionSet::empty();
        let mut interp = Interp::new(&program, &ext, ProcConfig::default());
        assert_eq!(interp.run(100), Err(SimError::CycleLimit(100)));
    }

    #[test]
    fn total_cycles_decompose() {
        let (stats, _) = sim("movi a2, 2\nl: addi a2, a2, -1\nbnez a2, l\nhalt");
        let cfg = ProcConfig::default();
        let expected = stats.base_class_cycles()
            + stats.icache_misses * u64::from(cfg.icache_miss_penalty)
            + stats.dcache_misses * u64::from(cfg.dcache_miss_penalty)
            + stats.uncached_fetches * u64::from(cfg.uncached_fetch_penalty)
            + stats.interlocks
            + stats.custom_cycles;
        assert_eq!(stats.total_cycles, expected);
    }

    #[test]
    fn sink_sees_every_instruction() {
        let program = Assembler::new()
            .assemble("movi a2, 1\nadd a3, a2, a2\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let mut interp = Interp::new(&program, &ext, ProcConfig::default());
        let mut seen = Vec::new();
        let mut sink = |r: &InstRecord<'_>| seen.push((r.pc, r.cycles));
        interp.run_with_sink(&mut sink, 1_000).unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 4);
    }

    #[test]
    fn profiled_run_attributes_time_and_matches_plain_stats() {
        let src = "movi a2, 50\nmovi a3, 0\nl: add a3, a3, a2\naddi a2, a2, -1\nbnez a2, l\nhalt";
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();

        let mut plain = Interp::new(&program, &ext, ProcConfig::default());
        let plain_stats = plain.run(1_000_000).unwrap().stats;

        let mut collector = emx_obs::Collector::new();
        let mut profiled = Interp::new(&program, &ext, ProcConfig::default());
        let (run, profile) = profiled.run_profiled(1_000_000, &mut collector).unwrap();
        assert_eq!(run.stats, plain_stats);
        assert_eq!(profile.steps(), plain_stats.inst_count);
        // Every retired instruction crosses all five checkpoints, so
        // some time must have been attributed overall.
        assert!(profile.total_ns() > 0);
        assert_eq!(
            collector.counter("iss.phase.steps"),
            plain_stats.inst_count as f64
        );

        // A disabled collector selects the fast path: identical stats,
        // empty profile, nothing recorded.
        let mut off = emx_obs::Collector::disabled();
        let mut fast = Interp::new(&program, &ext, ProcConfig::default());
        let (run, profile) = fast.run_profiled(1_000_000, &mut off).unwrap();
        assert_eq!(run.stats, plain_stats);
        assert_eq!(profile, PhaseProfile::new());
        assert!(off.counters().is_empty());
    }

    #[test]
    fn zero_cost_branch_config_does_not_underflow() {
        // Regression: flush_cycles was computed as `cost - 1`, which
        // panicked in debug builds when branch_taken_cycles or
        // jump_cycles was configured to 0. The sinked path is the one
        // that materializes flush_cycles.
        let src = "movi a2, 2\nl: addi a2, a2, -1\nbnez a2, l\nj done\ndone: halt";
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let config = ProcConfig {
            branch_taken_cycles: 0,
            jump_cycles: 0,
            ..ProcConfig::default()
        };
        let mut flushes = Vec::new();
        let mut sink = |r: &InstRecord<'_>| flushes.push(r.flush_cycles);
        let mut interp = Interp::new(&program, &ext, config.clone());
        let run = interp.run_with_sink(&mut sink, 10_000).unwrap();
        assert!(run.halted);
        assert!(flushes.iter().all(|&f| f == 0));
        // The micro-op fast path accepts the same config and agrees.
        let mut fast = Interp::new(&program, &ext, config);
        assert_eq!(fast.run(10_000).unwrap().stats, run.stats);
    }

    #[test]
    fn uop_and_legacy_agree_on_error_paths() {
        // Errors must leave byte-identical partial stats and state on
        // both engines: invalid pc (fall off the end), unaligned access,
        // and the cycle limit.
        for src in [
            "nop\nnop\n",                       // falls off the text segment
            "movi a2, 1\nl32i a3, 0(a2)\nhalt", // unaligned load
            "l: j l\n",                         // spins into the cycle limit
        ] {
            let program = Assembler::new().assemble(src).unwrap();
            let ext = ExtensionSet::empty();
            let mut fast = Interp::new(&program, &ext, ProcConfig::default());
            let fast_err = fast.run(100).unwrap_err();
            let mut slow = Interp::new(&program, &ext, ProcConfig::default());
            let slow_err = slow.run_legacy(100).unwrap_err();
            assert_eq!(fast_err, slow_err, "{src:?}");
            assert_eq!(fast.stats(), slow.stats(), "{src:?}");
            assert_eq!(fast.state().pc(), slow.state().pc(), "{src:?}");
        }
    }

    #[test]
    fn stats_match_between_fast_and_sinked_runs() {
        let src = "movi a2, 50\nmovi a3, 0\nl: add a3, a3, a2\naddi a2, a2, -1\nbnez a2, l\nhalt";
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let mut fast = Interp::new(&program, &ext, ProcConfig::default());
        let fast_stats = fast.run(1_000_000).unwrap().stats;
        let mut slow = Interp::new(&program, &ext, ProcConfig::default());
        let mut sink = |_: &InstRecord<'_>| {};
        let slow_stats = slow.run_with_sink(&mut sink, 1_000_000).unwrap().stats;
        assert_eq!(fast_stats, slow_stats);
    }
}
