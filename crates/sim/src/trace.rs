//! Human-readable execution tracing.
//!
//! [`Tracer`] is an [`ActivitySink`] that renders each retired instruction
//! as one formatted line — disassembly, operand values, writeback, cache
//! and stall annotations — the classic ISS debugging view:
//!
//! ```text
//!       4 │ 0x000004  movi a3, 0             → a3=0x00000000
//!       5 │ 0x000008  add a3, a3, a2         a=0x0,b=0xa → a3=0x0000000a
//!      23 │ 0x000010  l32i a4, 0(a2)         [0x40000 miss] → a4=0x00000003
//! ```

use std::fmt::Write as _;

use crate::record::{ActivitySink, InstRecord};

/// Collects a formatted execution trace, optionally bounded.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use emx_isa::asm::Assembler;
/// use emx_sim::{trace::Tracer, Interp, ProcConfig};
/// use emx_tie::ExtensionSet;
///
/// let program = Assembler::new().assemble("movi a2, 7\naddi a2, a2, 1\nhalt")?;
/// let ext = ExtensionSet::empty();
/// let mut tracer = Tracer::new();
/// let mut sim = Interp::new(&program, &ext, ProcConfig::default());
/// sim.run_with_sink(&mut tracer, 1_000)?;
/// assert_eq!(tracer.lines().len(), 3);
/// assert!(tracer.lines()[0].contains("movi a2, 7"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    lines: Vec<String>,
    limit: usize,
    cycle: u64,
    truncated: bool,
    suppressed: u64,
}

impl Tracer {
    /// A tracer with the default line limit (65 536).
    pub fn new() -> Self {
        Self::with_limit(65_536)
    }

    /// A tracer that keeps at most `limit` lines (and records whether it
    /// truncated).
    pub fn with_limit(limit: usize) -> Self {
        Tracer {
            lines: Vec::new(),
            limit,
            cycle: 0,
            truncated: false,
            suppressed: 0,
        }
    }

    /// The collected trace lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// `true` if the line limit was reached and later instructions were
    /// dropped.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// How many instructions retired after the limit was hit and were
    /// therefore not rendered (0 unless [`Tracer::is_truncated`]).
    pub fn suppressed_lines(&self) -> u64 {
        self.suppressed
    }

    /// The full trace as one newline-joined string.
    pub fn to_text(&self) -> String {
        let mut out = self.lines.join("\n");
        if self.truncated {
            let _ = write!(
                out,
                "\n… trace truncated: {} more instruction(s) not shown …",
                self.suppressed
            );
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl ActivitySink for Tracer {
    fn record(&mut self, r: &InstRecord<'_>) {
        self.cycle += u64::from(r.cycles);
        if self.lines.len() >= self.limit {
            self.truncated = true;
            self.suppressed += 1;
            return;
        }
        let mut line = format!(
            "{:>8} │ 0x{:06x}  {:<28}",
            self.cycle,
            r.pc,
            r.inst.to_string()
        );
        if let Some(m) = r.mem {
            let _ = write!(
                line,
                " [0x{:x} {}{}]",
                m.addr,
                if m.write { "write" } else { "read" },
                if m.uncached {
                    " uncached"
                } else if m.hit {
                    ""
                } else {
                    " miss"
                },
            );
        }
        if let Some((reg, value)) = r.result {
            let _ = write!(line, " → {reg}=0x{value:08x}");
        }
        if r.stall_cycles > 0 {
            let _ = write!(line, " (+{} stall)", r.stall_cycles);
        }
        if !r.fetch_hit && !r.fetch_uncached {
            line.push_str(" (icache miss)");
        }
        if let Some(c) = r.custom {
            let _ = write!(line, " [custom {} lat {}]", c.id, c.latency);
        }
        self.lines.push(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interp, ProcConfig};
    use emx_isa::asm::Assembler;
    use emx_tie::ExtensionSet;

    fn trace_of(src: &str) -> Tracer {
        let program = Assembler::new().assemble(src).unwrap();
        let ext = ExtensionSet::empty();
        let mut tracer = Tracer::new();
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        sim.run_with_sink(&mut tracer, 100_000).unwrap();
        tracer
    }

    #[test]
    fn traces_every_instruction() {
        let t = trace_of("movi a2, 1\nadd a3, a2, a2\nhalt");
        assert_eq!(t.lines().len(), 3);
        assert!(t.lines()[1].contains("add a3, a2, a2"));
        assert!(t.lines()[1].contains("a3=0x00000002"));
        assert!(!t.is_truncated());
    }

    #[test]
    fn annotates_memory_and_stalls() {
        let t =
            trace_of(".data\nv: .word 42\n.text\nmovi a2, v\nl32i a3, 0(a2)\nadd a4, a3, a3\nhalt");
        let load = &t.lines()[1];
        assert!(load.contains("read miss"), "{load}");
        let dependent = &t.lines()[2];
        assert!(dependent.contains("stall"), "{dependent}");
    }

    #[test]
    fn respects_the_line_limit() {
        let program = Assembler::new()
            .assemble("movi a2, 100\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt")
            .unwrap();
        let ext = ExtensionSet::empty();
        let mut tracer = Tracer::with_limit(10);
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        sim.run_with_sink(&mut tracer, 100_000).unwrap();
        assert_eq!(tracer.lines().len(), 10);
        assert!(tracer.is_truncated());
        // 100 loop iterations × 2 instructions + movi + halt = 202
        // retired instructions; 10 were kept.
        assert_eq!(tracer.suppressed_lines(), 192);
        assert!(tracer.to_text().contains("truncated: 192 more"));
    }
}
