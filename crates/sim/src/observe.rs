//! Bridging the simulator's activity stream into `emx-obs`.
//!
//! [`CounterTraceSink`] is an [`ActivitySink`] that down-samples the
//! per-instruction activity stream into windowed counter series on the
//! collector's simulated-time track — IPC, cache misses, interlocks,
//! custom-instruction cycles per window — which the Chrome trace export
//! renders as counter graphs against the cycle axis. The sink holds only
//! a handful of integers between flushes, so a billion-instruction run
//! produces `total_cycles / window` samples, not a billion.
//!
//! Because the collector is passed in explicitly (and a disabled
//! collector ignores every sample), the caller decides the cost; the
//! simulator itself never observes the difference — instrumentation
//! cannot change simulation results.

use emx_obs::Collector;

use crate::record::{ActivitySink, InstRecord};
use crate::{Interp, ProcConfig, RunResult, SimError};

/// Replays `program` on the micro-op engine and returns the run result
/// together with per-static-instruction retired execution counts
/// (indexed like `Program::text`).
///
/// This is the block-weight observation hook for custom-instruction
/// discovery: summing an index range gives a basic block's dynamic
/// execution weight, and the count at a block's leader is the number of
/// times the block was entered.
///
/// # Errors
///
/// Same conditions as [`Interp::run`].
pub fn exec_counts(
    program: &emx_isa::Program,
    ext: &emx_tie::ExtensionSet,
    config: ProcConfig,
    max_cycles: u64,
) -> Result<(RunResult, Vec<u64>), SimError> {
    let mut sim = Interp::new(program, ext, config);
    let mut counts = Vec::new();
    let run = sim.run_with_exec_counts(max_cycles, &mut counts)?;
    Ok((run, counts))
}

/// Default window width, in cycles.
pub const DEFAULT_WINDOW_CYCLES: u64 = 1024;

/// An [`ActivitySink`] that emits windowed counter samples into a
/// [`Collector`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use emx_isa::asm::Assembler;
/// use emx_obs::Collector;
/// use emx_sim::{observe::CounterTraceSink, Interp, ProcConfig};
/// use emx_tie::ExtensionSet;
///
/// let program = Assembler::new().assemble(
///     "movi a2, 100\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt",
/// )?;
/// let ext = ExtensionSet::empty();
/// let mut collector = Collector::new();
/// let mut sink = CounterTraceSink::new(&mut collector, 64);
/// let mut sim = Interp::new(&program, &ext, ProcConfig::default());
/// sim.run_with_sink(&mut sink, 1_000_000)?;
/// sink.finish();
/// assert!(collector.events().iter().any(|e| e.name == "sim.ipc"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CounterTraceSink<'c> {
    collector: &'c mut Collector,
    window: u64,
    cycle: u64,
    window_end: u64,
    instructions: u64,
    icache_misses: u64,
    dcache_misses: u64,
    interlocks: u64,
    stall_cycles: u64,
    custom_cycles: u64,
}

impl<'c> CounterTraceSink<'c> {
    /// A sink flushing one sample per `window_cycles` (0 is treated as
    /// [`DEFAULT_WINDOW_CYCLES`]).
    pub fn new(collector: &'c mut Collector, window_cycles: u64) -> Self {
        let window = if window_cycles == 0 {
            DEFAULT_WINDOW_CYCLES
        } else {
            window_cycles
        };
        CounterTraceSink {
            collector,
            window,
            cycle: 0,
            window_end: window,
            instructions: 0,
            icache_misses: 0,
            dcache_misses: 0,
            interlocks: 0,
            stall_cycles: 0,
            custom_cycles: 0,
        }
    }

    /// Cycles seen so far (sum of retired instructions' cycle costs).
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Flushes the final partial window. Call after the run completes.
    pub fn finish(&mut self) {
        if self.instructions > 0 {
            self.flush(self.cycle.max(1));
        }
    }

    fn flush(&mut self, ts: u64) {
        let c = &mut *self.collector;
        let window_cycles = self.window.min(ts) as f64;
        c.sample_at("sim.ipc", ts, self.instructions as f64 / window_cycles);
        c.sample_at("sim.icache_misses", ts, self.icache_misses as f64);
        c.sample_at("sim.dcache_misses", ts, self.dcache_misses as f64);
        c.sample_at("sim.interlocks", ts, self.interlocks as f64);
        c.sample_at("sim.stall_cycles", ts, self.stall_cycles as f64);
        c.sample_at("sim.custom_cycles", ts, self.custom_cycles as f64);
        self.instructions = 0;
        self.icache_misses = 0;
        self.dcache_misses = 0;
        self.interlocks = 0;
        self.stall_cycles = 0;
        self.custom_cycles = 0;
    }
}

impl ActivitySink for CounterTraceSink<'_> {
    fn record(&mut self, r: &InstRecord<'_>) {
        self.cycle += u64::from(r.cycles);
        self.instructions += 1;
        if !r.fetch_hit && !r.fetch_uncached {
            self.icache_misses += 1;
        }
        if let Some(m) = r.mem {
            if m.uncached || !m.hit {
                self.dcache_misses += 1;
            }
        }
        if r.stall_cycles > 0 {
            self.interlocks += 1;
        }
        self.stall_cycles += u64::from(r.stall_cycles);
        if let Some(c) = r.custom {
            self.custom_cycles += u64::from(c.latency);
        }
        self.collector
            .record("sim.inst_cycles", u64::from(r.cycles));
        if self.cycle >= self.window_end {
            let ts = self.window_end;
            self.flush(ts);
            // Skip whole empty windows after a long-latency instruction.
            while self.window_end <= self.cycle {
                self.window_end += self.window;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interp, ProcConfig};
    use emx_isa::asm::Assembler;
    use emx_obs::EventKind;
    use emx_tie::ExtensionSet;

    const LOOP: &str = "movi a2, 200\nl:\naddi a2, a2, -1\nbnez a2, l\nhalt";

    fn run_with_window(window: u64) -> (Collector, crate::ExecStats) {
        let program = Assembler::new().assemble(LOOP).unwrap();
        let ext = ExtensionSet::empty();
        let mut collector = Collector::new();
        let mut sink = CounterTraceSink::new(&mut collector, window);
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        let run = sim.run_with_sink(&mut sink, 1_000_000).unwrap();
        sink.finish();
        (collector, run.stats)
    }

    #[test]
    fn emits_windowed_samples_with_monotone_cycle_timestamps() {
        let (collector, stats) = run_with_window(64);
        let ipc: Vec<&emx_obs::Event> = collector
            .events()
            .iter()
            .filter(|e| e.name == "sim.ipc")
            .collect();
        assert!(
            ipc.len() >= 2,
            "a {}-cycle run must span several 64-cycle windows",
            stats.total_cycles
        );
        assert!(ipc.windows(2).all(|w| w[0].ts < w[1].ts));
        for e in &ipc {
            match e.kind {
                EventKind::Sample(v) => assert!(v > 0.0 && v <= 1.0, "ipc {v}"),
                _ => panic!("expected a sample"),
            }
        }
    }

    #[test]
    fn windowed_instruction_total_matches_stats() {
        let (collector, stats) = run_with_window(32);
        // IPC × window width summed over windows = retired instructions.
        // The last (partial) window uses the true remaining width, so the
        // total matches only approximately; count via the histogram
        // instead, which records every retired instruction once.
        let h = collector.histogram("sim.inst_cycles").unwrap();
        assert_eq!(h.count(), stats.inst_count);
    }

    #[test]
    fn instrumentation_does_not_change_results() {
        let program = Assembler::new().assemble(LOOP).unwrap();
        let ext = ExtensionSet::empty();

        let mut plain = Interp::new(&program, &ext, ProcConfig::default());
        let plain_stats = plain.run(1_000_000).unwrap().stats;

        let (_, sunk_stats) = run_with_window(64);
        assert_eq!(plain_stats, sunk_stats);

        // A disabled collector records nothing but also changes nothing.
        let mut collector = Collector::disabled();
        let mut sink = CounterTraceSink::new(&mut collector, 64);
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        let stats = sim.run_with_sink(&mut sink, 1_000_000).unwrap().stats;
        sink.finish();
        assert_eq!(stats, plain_stats);
        assert!(collector.events().is_empty());
    }
}
