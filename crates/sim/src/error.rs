use std::error::Error;
use std::fmt;

use emx_hwlib::GraphError;
use emx_isa::CustomId;

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program counter left the text segment (fell off the end, or a
    /// computed jump went wild).
    InvalidPc(u32),
    /// A custom instruction was fetched whose id is not in the active
    /// extension set (program assembled against a different extension).
    UnknownCustom(CustomId),
    /// A load or store address violated its natural alignment.
    Unaligned {
        /// The faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// The run exceeded the caller's cycle budget without halting.
    CycleLimit(u64),
    /// A custom-instruction dataflow graph failed to evaluate (indicates
    /// an extension-set bug).
    Graph(GraphError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidPc(pc) => write!(f, "invalid program counter 0x{pc:08x}"),
            SimError::UnknownCustom(id) => write!(f, "unknown custom instruction {id}"),
            SimError::Unaligned { addr, size } => {
                write!(f, "unaligned {size}-byte access at 0x{addr:08x}")
            }
            SimError::CycleLimit(n) => write!(f, "cycle limit of {n} exceeded without halt"),
            SimError::Graph(e) => write!(f, "custom datapath evaluation failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}
