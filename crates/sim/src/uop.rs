//! Pre-decoded micro-op execution engine — the ISS hot path.
//!
//! [`crate::Interp::run`] decodes each static instruction **once** into a
//! dense micro-op table (dynamic class, cycle cost, register read mask and
//! icache line resolved up front) and then drives execution by dispatching
//! over that table, keeping every counter in a register-resident local
//! that is flushed into [`crate::ExecStats`] only when the run exits.
//! Consecutive fetches from the same icache line are batched into a
//! single cache access (see the proof at [`run`]), which amortizes the
//! fetch bookkeeping over straight-line blocks.
//!
//! The engine is observationally identical to the legacy single-step
//! interpreter ([`crate::Interp::run_legacy`]): the final `ExecStats`,
//! architectural state and error (including which counters were already
//! bumped when an error fired) are byte-for-byte the same. The legacy
//! path stays behind `run_legacy`/`run_with_sink` for differential
//! testing and for the activity-streaming consumers.

use emx_isa::program::layout;
use emx_isa::{BaseClass, DynClass, Inst, Opcode, Program, Reg};
use emx_tie::{CompiledInst, ExtensionSet};

use crate::iss::{HazKind, Interp, RunResult};
use crate::SimError;

/// Sentinel icache line id for instructions in the uncached region.
/// Cached text addresses are below `layout::UNCACHED_BASE`, so their line
/// ids can never reach this value.
const UNCACHED_LINE: u32 = u32::MAX;

/// One pre-decoded instruction: the decoded form plus every per-step
/// quantity that is a pure function of the static instruction and the
/// processor configuration.
struct Uop {
    /// The decoded instruction (copied out of the program once).
    inst: Inst,
    /// icache line id of this instruction's fetch, or [`UNCACHED_LINE`].
    line: u32,
    /// [`DynClass::index`] the instruction retires as — for branches, the
    /// taken variant (base instructions only).
    class_taken: u8,
    /// Untaken-branch class; equals `class_taken` for everything else.
    class_untaken: u8,
    /// Base cycle cost when retiring as `class_taken`.
    cost_taken: u32,
    /// Base cycle cost when retiring as `class_untaken`.
    cost_untaken: u32,
    /// [`Opcode::index`] for per-opcode cycle attribution (base only).
    op_idx: u8,
    /// Bitmask of GPRs this instruction reads (hazard detection).
    read_mask: u32,
}

/// Per-custom-instruction constants, resolved once per run.
struct CustomMeta<'e> {
    spec: &'e CompiledInst,
    cost: u32,
    uses_gpr: bool,
    resource_vector: [f64; 10],
    resource_counts: [f64; 10],
}

fn reg_bit(r: Option<Reg>) -> u32 {
    r.map_or(0, |r| 1u32 << r.index())
}

fn build<'e>(
    program: &Program,
    ext: &'e ExtensionSet,
    config: &crate::ProcConfig,
) -> (Vec<Uop>, Vec<CustomMeta<'e>>) {
    let line_bytes = config.icache.line_bytes;
    let metas: Vec<CustomMeta<'e>> = ext
        .iter()
        .map(|spec| CustomMeta {
            spec,
            cost: u32::from(spec.latency()),
            uses_gpr: spec.uses_gpr(),
            resource_vector: *spec.resource_vector(),
            resource_counts: *spec.resource_counts(),
        })
        .collect();

    let uops = (0..program.len())
        .map(|i| {
            let pc = program.address_of(i);
            let line = if layout::is_uncached(pc) {
                UNCACHED_LINE
            } else {
                pc / line_bytes
            };
            let inst = *program.fetch(pc).expect("index within text segment");
            match inst {
                Inst::Base(b) => {
                    let (ra, rb) = b.read_regs();
                    let class = b.op.base_class();
                    let (cost_taken, cost_untaken, taken, untaken) = match class {
                        BaseClass::Branch => (
                            config.branch_taken_cycles,
                            1,
                            DynClass::BranchTaken,
                            DynClass::BranchUntaken,
                        ),
                        BaseClass::Jump if b.op != Opcode::Halt => (
                            config.jump_cycles,
                            config.jump_cycles,
                            DynClass::Jump,
                            DynClass::Jump,
                        ),
                        _ => {
                            let c = DynClass::from_base(class, false);
                            (1, 1, c, c)
                        }
                    };
                    Uop {
                        inst,
                        line,
                        class_taken: taken.index() as u8,
                        class_untaken: untaken.index() as u8,
                        cost_taken,
                        cost_untaken,
                        op_idx: b.op.index() as u8,
                        read_mask: reg_bit(ra) | reg_bit(rb),
                    }
                }
                Inst::Custom(c) => {
                    // An id outside the extension set builds a zero mask;
                    // execution errors with `UnknownCustom` before the mask
                    // is ever consulted, exactly like the legacy path.
                    let read_mask = ext.get(c.id).map_or(0, |spec| {
                        let sig = spec.signature();
                        reg_bit((sig.gpr_reads >= 1).then_some(c.rs))
                            | reg_bit((sig.gpr_reads >= 2).then_some(c.rt))
                    });
                    Uop {
                        inst,
                        line,
                        class_taken: 0,
                        class_untaken: 0,
                        cost_taken: 0,
                        cost_untaken: 0,
                        op_idx: 0,
                        read_mask,
                    }
                }
            }
        })
        .collect();
    (uops, metas)
}

/// Runs the micro-op engine until `halt` or `max_cycles`.
///
/// Fetch batching: the legacy interpreter performs one icache access per
/// dynamic instruction. Here, consecutive fetches from the same line
/// (with no other icache access in between) collapse into one. This is
/// stats-identical: the skipped accesses are guaranteed hits (the line
/// was just filled or touched, and nothing else entered its set since),
/// so no miss counter fires, and the skipped LRU refresh cannot change
/// any later victim choice because the line is already the most recently
/// used way of its set. Uncached fetches never touch the icache, so they
/// do not interrupt a same-line span.
///
/// # Errors
///
/// Same conditions (and byte-identical partial statistics) as the legacy
/// [`Interp::run_legacy`].
pub(crate) fn run<'a>(it: &mut Interp<'a>, max_cycles: u64) -> Result<RunResult, SimError> {
    run_impl::<false>(it, max_cycles, &mut [])
}

/// Runs like [`run`] while counting retired executions of each static
/// instruction into `counts` (indexed like `Program::text`). The counting
/// arm is monomorphized separately, so the plain [`run`] hot path is
/// unchanged.
///
/// # Errors
///
/// Same conditions as [`run`]; counts cover the instructions retired
/// before the error fired.
pub(crate) fn run_counting<'a>(
    it: &mut Interp<'a>,
    max_cycles: u64,
    counts: &mut [u64],
) -> Result<RunResult, SimError> {
    run_impl::<true>(it, max_cycles, counts)
}

#[allow(clippy::too_many_lines)] // one arm per opcode: flat is clearest
fn run_impl<'a, const COUNT: bool>(
    it: &mut Interp<'a>,
    max_cycles: u64,
    counts: &mut [u64],
) -> Result<RunResult, SimError> {
    let program: &'a Program = it.program;
    let ext: &'a ExtensionSet = it.ext;
    let (uops, metas) = build(program, ext, &it.config);
    let text_base = program.address_of(0);

    let Interp {
        config,
        state,
        icache,
        dcache,
        stats,
        hazard,
        ..
    } = it;

    let icm_pen = config.icache_miss_penalty;
    let dcm_pen = config.dcache_miss_penalty;
    let ucf_pen = config.uncached_fetch_penalty;

    // Register-resident counters, flushed into `stats` on every exit.
    let mut total = stats.total_cycles;
    let mut insts = stats.inst_count;
    let mut icm = stats.icache_misses;
    let mut dcm = stats.dcache_misses;
    let mut ucf = stats.uncached_fetches;
    let mut ilk = stats.interlocks;
    let mut ci = stats.ci_gpr_cycles;
    let mut custom_cy = stats.custom_cycles;
    let mut class_cycles = stats.class_cycles;
    let mut class_counts = stats.class_counts;
    let mut struct_activity = stats.struct_activity;
    let mut struct_activations = stats.struct_activations;
    let mut opcode_cycles = std::mem::take(&mut stats.opcode_cycles);
    let mut custom_counts = std::mem::take(&mut stats.custom_counts);

    let mut haz: Option<(Reg, HazKind)> = *hazard;
    let mut haz_mask: u32 = haz.map_or(0, |(r, _)| 1u32 << r.index());
    let mut pc = state.pc();
    let mut last_line: u64 = u64::MAX;

    macro_rules! flush {
        () => {{
            stats.total_cycles = total;
            stats.inst_count = insts;
            stats.icache_misses = icm;
            stats.dcache_misses = dcm;
            stats.uncached_fetches = ucf;
            stats.interlocks = ilk;
            stats.ci_gpr_cycles = ci;
            stats.custom_cycles = custom_cy;
            stats.class_cycles = class_cycles;
            stats.class_counts = class_counts;
            stats.struct_activity = struct_activity;
            stats.struct_activations = struct_activations;
            stats.opcode_cycles = opcode_cycles;
            stats.custom_counts = custom_counts;
            *hazard = haz;
            state.set_pc(pc);
        }};
    }

    loop {
        if total >= max_cycles {
            flush!();
            return Err(SimError::CycleLimit(max_cycles));
        }

        // ---- fetch + decode over the pre-decoded table ---------------------
        let idx = if pc >= text_base && pc.is_multiple_of(layout::INST_BYTES) {
            let i = ((pc - text_base) / layout::INST_BYTES) as usize;
            (i < uops.len()).then_some(i)
        } else {
            None
        };
        let Some(idx) = idx else {
            // The legacy path charges the fetch before discovering the
            // bad pc; keep those counter bumps on the error path.
            if layout::is_uncached(pc) {
                ucf += 1;
            } else if !icache.access(pc, false).hit {
                icm += 1;
            }
            flush!();
            return Err(SimError::InvalidPc(pc));
        };
        let uop = &uops[idx];

        let mut penalty: u32 = 0;
        if uop.line == UNCACHED_LINE {
            ucf += 1;
            penalty += ucf_pen;
        } else if u64::from(uop.line) != last_line {
            last_line = u64::from(uop.line);
            if !icache.access(pc, false).hit {
                icm += 1;
                penalty += icm_pen;
            }
        }

        // ---- execute + per-kind accounting ---------------------------------
        let mut next_pc = pc.wrapping_add(layout::INST_BYTES);
        let mut halted = false;

        match uop.inst {
            Inst::Base(b) => {
                use Opcode::*;
                let rs = state.reg(b.rs);
                let rt = state.reg(b.rt);
                let imm = b.imm;
                let mut class_idx = uop.class_taken as usize;
                let mut cost = uop.cost_taken;
                let mut haz_new: Option<(Reg, HazKind)> = None;
                let mut mem_access: Option<(u32, bool)> = None;

                macro_rules! wr {
                    ($v:expr) => {{
                        let v: u32 = $v;
                        state.set_reg(b.rd, v);
                    }};
                }
                macro_rules! aligned {
                    ($addr:expr, $size:expr) => {
                        if !$addr.is_multiple_of($size) {
                            flush!();
                            return Err(SimError::Unaligned {
                                addr: $addr,
                                size: $size,
                            });
                        }
                    };
                }

                match b.op {
                    // --- arithmetic --------------------------------------
                    Add => wr!(rs.wrapping_add(rt)),
                    Sub => wr!(rs.wrapping_sub(rt)),
                    And => wr!(rs & rt),
                    Or => wr!(rs | rt),
                    Xor => wr!(rs ^ rt),
                    Sll => wr!(rs.wrapping_shl(rt & 31)),
                    Srl => wr!(rs.wrapping_shr(rt & 31)),
                    Sra => wr!(((rs as i32).wrapping_shr(rt & 31)) as u32),
                    Ror => wr!(rs.rotate_right(rt & 31)),
                    Slt => wr!(u32::from((rs as i32) < (rt as i32))),
                    Sltu => wr!(u32::from(rs < rt)),
                    Min => wr!((rs as i32).min(rt as i32) as u32),
                    Max => wr!((rs as i32).max(rt as i32) as u32),
                    Minu => wr!(rs.min(rt)),
                    Maxu => wr!(rs.max(rt)),
                    Moveqz => {
                        if rt == 0 {
                            wr!(rs);
                        }
                    }
                    Movnez => {
                        if rt != 0 {
                            wr!(rs);
                        }
                    }
                    Movltz => {
                        if (rt as i32) < 0 {
                            wr!(rs);
                        }
                    }
                    Movgez => {
                        if (rt as i32) >= 0 {
                            wr!(rs);
                        }
                    }
                    Mul => {
                        wr!(rs.wrapping_mul(rt));
                        haz_new = Some((b.rd, HazKind::Mul));
                    }
                    Mulh => {
                        wr!(((i64::from(rs as i32) * i64::from(rt as i32)) >> 32) as u32);
                        haz_new = Some((b.rd, HazKind::Mul));
                    }
                    Muluh => {
                        wr!(((u64::from(rs) * u64::from(rt)) >> 32) as u32);
                        haz_new = Some((b.rd, HazKind::Mul));
                    }
                    Mul16s => {
                        wr!((i32::from(rs as i16).wrapping_mul(i32::from(rt as i16))) as u32);
                        haz_new = Some((b.rd, HazKind::Mul));
                    }
                    Mul16u => {
                        wr!((rs & 0xffff).wrapping_mul(rt & 0xffff));
                        haz_new = Some((b.rd, HazKind::Mul));
                    }
                    Addi => wr!(rs.wrapping_add(imm as u32)),
                    Addmi => wr!(rs.wrapping_add((imm as u32) << 8)),
                    Andi => wr!(rs & imm as u32),
                    Ori => wr!(rs | imm as u32),
                    Xori => wr!(rs ^ imm as u32),
                    Slti => wr!(u32::from((rs as i32) < imm)),
                    Sltiu => wr!(u32::from(rs < imm as u32)),
                    Slli => wr!(rs.wrapping_shl(imm as u32 & 31)),
                    Srli => wr!(rs.wrapping_shr(imm as u32 & 31)),
                    Srai => wr!(((rs as i32).wrapping_shr(imm as u32 & 31)) as u32),
                    Rori => wr!(rs.rotate_right(imm as u32 & 31)),
                    Extui => {
                        let sa = imm as u32 & 31;
                        let len = u32::from(b.len).clamp(1, 32);
                        let mask = if len == 32 {
                            u32::MAX
                        } else {
                            (1u32 << len) - 1
                        };
                        wr!((rs >> sa) & mask);
                    }
                    Neg => wr!((rs as i32).wrapping_neg() as u32),
                    Abs => wr!((rs as i32).wrapping_abs() as u32),
                    Not => wr!(!rs),
                    Mov => wr!(rs),
                    Sext8 => wr!(i32::from(rs as i8) as u32),
                    Sext16 => wr!(i32::from(rs as i16) as u32),
                    Clz => wr!(rs.leading_zeros()),
                    Movi => wr!(imm as u32),
                    Nop => {}
                    // --- loads -------------------------------------------
                    L8ui | L8si | L16ui | L16si | L32i => {
                        let addr = rs.wrapping_add(imm as u32);
                        let raw = match b.op {
                            L8ui | L8si => u32::from(state.mem.read_u8(addr)),
                            L16ui | L16si => {
                                aligned!(addr, 2);
                                u32::from(state.mem.read_u16(addr))
                            }
                            _ => {
                                aligned!(addr, 4);
                                state.mem.read_u32(addr)
                            }
                        };
                        let value = match b.op {
                            L8si => i32::from(raw as u8 as i8) as u32,
                            L16si => i32::from(raw as u16 as i16) as u32,
                            _ => raw,
                        };
                        wr!(value);
                        mem_access = Some((addr, false));
                        haz_new = Some((b.rd, HazKind::Load));
                    }
                    L32r => {
                        let addr = b.target;
                        aligned!(addr, 4);
                        wr!(state.mem.read_u32(addr));
                        mem_access = Some((addr, false));
                        haz_new = Some((b.rd, HazKind::Load));
                    }
                    // --- stores ------------------------------------------
                    S8i | S16i | S32i => {
                        let addr = rs.wrapping_add(imm as u32);
                        match b.op {
                            S8i => state.mem.write_u8(addr, rt as u8),
                            S16i => {
                                aligned!(addr, 2);
                                state.mem.write_u16(addr, rt as u16);
                            }
                            _ => {
                                aligned!(addr, 4);
                                state.mem.write_u32(addr, rt);
                            }
                        }
                        mem_access = Some((addr, true));
                    }
                    // --- jumps -------------------------------------------
                    J => next_pc = b.target,
                    Jx => next_pc = rs,
                    Call => {
                        state.set_reg(Reg::LINK, next_pc);
                        next_pc = b.target;
                    }
                    Callx => {
                        state.set_reg(Reg::LINK, next_pc);
                        next_pc = rs;
                    }
                    Ret => next_pc = state.reg(Reg::LINK),
                    // --- branches ----------------------------------------
                    Beq | Bne | Blt | Bge | Bltu | Bgeu | Ball | Bnall | Bany | Bnone | Beqz
                    | Bnez | Bltz | Bgez | Beqi | Bnei | Blti | Bgei | Bltui | Bgeui => {
                        let taken = match b.op {
                            Beq => rs == rt,
                            Bne => rs != rt,
                            Blt => (rs as i32) < (rt as i32),
                            Bge => (rs as i32) >= (rt as i32),
                            Bltu => rs < rt,
                            Bgeu => rs >= rt,
                            Ball => (!rs & rt) == 0,
                            Bnall => (!rs & rt) != 0,
                            Bany => (rs & rt) != 0,
                            Bnone => (rs & rt) == 0,
                            Beqz => rs == 0,
                            Bnez => rs != 0,
                            Bltz => (rs as i32) < 0,
                            Bgez => (rs as i32) >= 0,
                            Beqi => rs == imm as u32,
                            Bnei => rs != imm as u32,
                            Blti => (rs as i32) < imm,
                            Bgei => (rs as i32) >= imm,
                            Bltui => rs < imm as u32,
                            Bgeui => rs >= imm as u32,
                            _ => unreachable!(),
                        };
                        if taken {
                            next_pc = b.target;
                        } else {
                            class_idx = uop.class_untaken as usize;
                            cost = uop.cost_untaken;
                        }
                    }
                    // --- system ------------------------------------------
                    Halt => {
                        halted = true;
                        next_pc = pc;
                    }
                }

                let stall = u32::from(uop.read_mask & haz_mask != 0);
                ilk += u64::from(stall);

                class_cycles[class_idx] += u64::from(cost);
                class_counts[class_idx] += 1;
                opcode_cycles[uop.op_idx as usize] += u64::from(cost);

                if let Some((addr, write)) = mem_access {
                    if layout::is_uncached(addr) {
                        dcm += 1;
                        penalty += ucf_pen;
                    } else if !dcache.access(addr, write).hit {
                        dcm += 1;
                        penalty += dcm_pen;
                    }
                }

                haz = haz_new;
                haz_mask = haz_new.map_or(0, |(r, _)| 1u32 << r.index());
                total += u64::from(cost + stall + penalty);
            }
            Inst::Custom(c) => {
                let Some(meta) = metas.get(c.id.0 as usize) else {
                    flush!();
                    return Err(SimError::UnknownCustom(c.id));
                };
                let result = match crate::exec::execute_custom(state, meta.spec, &c) {
                    Ok((_, _, result)) => result,
                    Err(e) => {
                        flush!();
                        return Err(e);
                    }
                };

                let stall = u32::from(uop.read_mask & haz_mask != 0);
                ilk += u64::from(stall);

                custom_cy += u64::from(meta.cost);
                if meta.uses_gpr {
                    ci += u64::from(meta.cost);
                }
                custom_counts[c.id.0 as usize] += 1;
                for (acc, add) in struct_activity.iter_mut().zip(&meta.resource_vector) {
                    *acc += add;
                }
                for (acc, add) in struct_activations.iter_mut().zip(&meta.resource_counts) {
                    *acc += add;
                }

                haz = result.map(|(r, _)| (r, HazKind::Custom));
                haz_mask = haz.map_or(0, |(r, _)| 1u32 << r.index());
                total += u64::from(meta.cost + stall + penalty);
            }
        }

        if COUNT {
            counts[idx] += 1;
        }
        insts += 1;
        pc = next_pc;

        if halted {
            flush!();
            return Ok(RunResult {
                stats: stats.clone(),
                halted: true,
            });
        }
    }
}
