//! Per-instruction activity records — the simulator's equivalent of the
//! RTL simulation traces the paper feeds to its commercial power
//! estimator.

use emx_isa::op::ExecUnit;
use emx_isa::{CustomId, DynClass, Inst, Reg};

/// Classification of a retired instruction for energy purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstKind {
    /// A base-ISA instruction: its dynamic class and EX-stage unit.
    Base(DynClass, ExecUnit),
    /// A custom (extension) instruction.
    Custom(CustomId),
}

/// A data-memory access annotated with cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
    /// `true` for stores.
    pub write: bool,
    /// Value loaded or stored.
    pub value: u32,
    /// `true` if the access hit in the data cache.
    pub hit: bool,
    /// `true` if a dirty line was written back on the fill.
    pub writeback: bool,
    /// `true` if the access bypassed the cache (uncached region).
    pub uncached: bool,
}

/// Custom-datapath activity of one custom-instruction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomActivity<'a> {
    /// Which custom instruction executed.
    pub id: CustomId,
    /// Its latency in cycles.
    pub latency: u8,
    /// `true` if it read or wrote the base register file.
    pub uses_gpr: bool,
    /// Value of every dataflow node during this execution, indexed by
    /// [`emx_hwlib::NodeId::index`]. Borrowed from the simulator's scratch
    /// buffer — valid only during the [`ActivitySink::record`] call.
    pub node_values: &'a [u64],
}

/// The full activity of one retired instruction, at pipeline-stage
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstRecord<'a> {
    /// Instruction address.
    pub pc: u32,
    /// Fetched 32-bit encoding (for fetch/decode switching energy).
    pub word: u32,
    /// The decoded instruction.
    pub inst: Inst,
    /// Classification.
    pub kind: InstKind,
    /// Operand bus A value (first register read).
    pub operand_a: u32,
    /// Operand bus B value (second register read / store data).
    pub operand_b: u32,
    /// Result-bus writeback, if any.
    pub result: Option<(Reg, u32)>,
    /// Total cycles this instruction occupied the machine, including all
    /// penalties.
    pub cycles: u32,
    /// Cycles of interlock stall included in `cycles`.
    pub stall_cycles: u32,
    /// Flushed bubble cycles included in `cycles` (taken branches, jumps).
    pub flush_cycles: u32,
    /// `true` if the instruction fetch hit the I-cache (meaningless when
    /// `fetch_uncached`).
    pub fetch_hit: bool,
    /// `true` if the fetch bypassed the I-cache (uncached region).
    pub fetch_uncached: bool,
    /// Data-memory access, if any.
    pub mem: Option<MemAccess>,
    /// Custom-datapath activity, if this was a custom instruction.
    pub custom: Option<CustomActivity<'a>>,
}

/// Consumer of the pipeline simulator's activity stream.
///
/// The reference energy estimator implements this; tests use it to capture
/// traces. Records borrow from simulator-internal buffers, so a sink that
/// needs to keep data must copy it out.
pub trait ActivitySink {
    /// `false` for sinks that ignore records; lets the simulator skip
    /// building them entirely.
    const ACTIVE: bool = true;

    /// Called once per retired instruction, in program order.
    fn record(&mut self, record: &InstRecord<'_>);
}

/// A sink that discards everything (used by the fast ISS path; the
/// optimizer removes the calls entirely).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ActivitySink for NullSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn record(&mut self, _record: &InstRecord<'_>) {}
}

impl<F: FnMut(&InstRecord<'_>)> ActivitySink for F {
    fn record(&mut self, record: &InstRecord<'_>) {
        self(record)
    }
}
