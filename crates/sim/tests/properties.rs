//! Property-based tests for the simulator substrates: memory, caches and
//! the executor against a Rust oracle.

use proptest::prelude::*;

use emx_isa::asm::Assembler;
use emx_sim::{Cache, CacheConfig, Interp, Memory, ProcConfig};
use emx_tie::ExtensionSet;

proptest! {
    #[test]
    fn memory_round_trips_any_width(addr in 0u32..0xffff_fff0, v in any::<u32>()) {
        let mut m = Memory::new();
        m.write_u32(addr, v);
        prop_assert_eq!(m.read_u32(addr), v);
        m.write_u16(addr, v as u16);
        prop_assert_eq!(m.read_u16(addr), v as u16);
        m.write_u8(addr, v as u8);
        prop_assert_eq!(m.read_u8(addr), v as u8);
    }

    #[test]
    fn memory_bytes_compose_words(addr in (0u32..0xffff_0000).prop_map(|a| a & !3), v in any::<u32>()) {
        // Little-endian consistency between byte and word views.
        let mut m = Memory::new();
        m.write_u32(addr, v);
        let bytes = v.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(m.read_u8(addr + i as u32), b);
        }
    }

    #[test]
    fn cache_hits_after_fill(addrs in proptest::collection::vec(0u32..0x10_0000, 1..64)) {
        let mut c = Cache::new(CacheConfig::paper_default());
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.probe(a), "just-filled line must be resident");
            prop_assert!(c.access(a, false).hit, "immediate re-access must hit");
        }
    }

    #[test]
    fn cache_set_occupancy_bounded(addrs in proptest::collection::vec(0u32..0x40_0000, 1..256)) {
        // For any access pattern, at most `ways` of the lines mapping to
        // one set can be simultaneously resident.
        let cfg = CacheConfig { sets: 4, ways: 2, line_bytes: 16 };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        for set in 0..cfg.sets {
            let resident = addrs
                .iter()
                .filter(|&&a| (a / cfg.line_bytes) % cfg.sets == set)
                .map(|&a| a / cfg.line_bytes)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .filter(|&line| c.probe(line * cfg.line_bytes))
                .count();
            prop_assert!(resident <= cfg.ways as usize, "set {set}: {resident} resident");
        }
    }

    #[test]
    fn executor_matches_alu_oracle(a in any::<i32>(), b in any::<i32>()) {
        // Run a straight-line program through the full stack and compare
        // every result against native Rust arithmetic.
        let src = format!(
            "movi a2, {a}\nmovi a3, {b}\nadd a4, a2, a3\nsub a5, a2, a3\n\
             and a6, a2, a3\nor a7, a2, a3\nxor a8, a2, a3\nmul a9, a2, a3\n\
             slt a12, a2, a3\nsltu a13, a2, a3\nmin a14, a2, a3\nmaxu a15, a2, a3\nhalt"
        );
        let program = Assembler::new().assemble(&src).expect("assembles");
        let ext = ExtensionSet::empty();
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        sim.run(1_000).expect("halts");
        let r = |i: u8| sim.state().reg(emx_isa::Reg::new(i));
        let (ua, ub) = (a as u32, b as u32);
        prop_assert_eq!(r(4), ua.wrapping_add(ub));
        prop_assert_eq!(r(5), ua.wrapping_sub(ub));
        prop_assert_eq!(r(6), ua & ub);
        prop_assert_eq!(r(7), ua | ub);
        prop_assert_eq!(r(8), ua ^ ub);
        prop_assert_eq!(r(9), ua.wrapping_mul(ub));
        prop_assert_eq!(r(12), u32::from(a < b));
        prop_assert_eq!(r(13), u32::from(ua < ub));
        prop_assert_eq!(r(14), a.min(b) as u32);
        prop_assert_eq!(r(15), ua.max(ub));
    }

    #[test]
    fn shift_semantics_match_oracle(v in any::<u32>(), sh in 0u32..32) {
        let src = format!(
            "movi a2, {v}\nmovi a3, {sh}\nsll a4, a2, a3\nsrl a5, a2, a3\n\
             sra a6, a2, a3\nror a7, a2, a3\nhalt",
            v = v as i32
        );
        let program = Assembler::new().assemble(&src).expect("assembles");
        let ext = ExtensionSet::empty();
        let mut sim = Interp::new(&program, &ext, ProcConfig::default());
        sim.run(1_000).expect("halts");
        let r = |i: u8| sim.state().reg(emx_isa::Reg::new(i));
        prop_assert_eq!(r(4), v << sh);
        prop_assert_eq!(r(5), v >> sh);
        prop_assert_eq!(r(6), ((v as i32) >> sh) as u32);
        prop_assert_eq!(r(7), v.rotate_right(sh));
    }

    #[test]
    fn total_cycles_decompose_for_any_loop(iters in 1u32..60, stride in 1u32..40) {
        // The cycle-accounting identity must hold for arbitrary loops:
        // total = Σ class cycles + per-event penalties + interlocks.
        let src = format!(
            "movi a2, {iters}\nmovi a3, 0x40000\nl:\nl32i a4, 0(a3)\nadd a5, a4, a4\n\
             addi a3, a3, {step}\naddi a2, a2, -1\nbnez a2, l\nhalt",
            step = stride * 4
        );
        let program = Assembler::new().assemble(&src).expect("assembles");
        let ext = ExtensionSet::empty();
        let cfg = ProcConfig::default();
        let mut sim = Interp::new(&program, &ext, cfg.clone());
        let stats = sim.run(10_000_000).expect("halts").stats;
        let expected = stats.base_class_cycles()
            + stats.icache_misses * u64::from(cfg.icache_miss_penalty)
            + stats.dcache_misses * u64::from(cfg.dcache_miss_penalty)
            + stats.uncached_fetches * u64::from(cfg.uncached_fetch_penalty)
            + stats.interlocks
            + stats.custom_cycles;
        prop_assert_eq!(stats.total_cycles, expected);
    }
}
