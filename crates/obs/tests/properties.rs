//! Property-based tests for the log-linear histogram: the JSON
//! serialization must be a lossless round-trip (the bench-report schema
//! diffs distributions across commits, so a bucket lost in transit would
//! silently corrupt the perf trajectory), and `merge` must commute with
//! recording — merged percentile queries answer exactly as if every
//! sample had been recorded into one histogram.

use proptest::prelude::*;

use emx_obs::json::Value;
use emx_obs::Histogram;

fn record_all(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning the interesting octaves: exact small buckets, the
/// first quantized octave, and values near the top of the u64 range.
fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..4, any::<u64>()).prop_map(|(octave, raw)| match octave {
            0 => raw % 16,
            1 => 16 + raw % 4080,
            2 => 4096 + raw % 10_000_000_000,
            _ => u64::MAX - raw % 1000,
        }),
        0..200,
    )
}

proptest! {
    #[test]
    fn json_round_trip_preserves_everything(samples in samples_strategy()) {
        let h = record_all(&samples);
        let text = h.to_json().to_string();
        let doc = Value::parse(&text).expect("serializer emits valid JSON");
        let back = Histogram::from_json(&doc).expect("round-trip parses");
        prop_assert_eq!(&back, &h);
        prop_assert_eq!(back.count(), h.count());
        prop_assert_eq!(back.min(), h.min());
        prop_assert_eq!(back.max(), h.max());
        prop_assert_eq!(back.mean(), h.mean());
        for p in [0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(back.percentile(p), h.percentile(p));
        }
    }

    #[test]
    fn merge_matches_recording_all_samples_in_one(
        a in samples_strategy(),
        b in samples_strategy(),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let mut all: Vec<u64> = a.clone();
        all.extend_from_slice(&b);
        let direct = record_all(&all);

        prop_assert_eq!(&merged, &direct);
        for p in [0.0, 10.0, 50.0, 90.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), direct.percentile(p));
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded(samples in samples_strategy()) {
        let h = record_all(&samples);
        let mut prev = h.percentile(0.0);
        for p in 1..=100u32 {
            let cur = h.percentile(f64::from(p));
            prop_assert!(cur >= prev, "p{} = {} < p{} = {}", p, cur, p - 1, prev);
            prev = cur;
        }
        if h.count() > 0 {
            prop_assert_eq!(h.percentile(0.0), h.min());
            prop_assert_eq!(h.percentile(100.0), h.max());
        }
    }

    #[test]
    fn bucket_list_counts_sum_to_total(samples in samples_strategy()) {
        let h = record_all(&samples);
        let total: u64 = h.buckets().map(|(_, n)| n).sum();
        prop_assert_eq!(total, h.count());
        // Bucket lower bounds are strictly increasing and never above max.
        let lows: Vec<u64> = h.buckets().map(|(low, _)| low).collect();
        prop_assert!(lows.windows(2).all(|w| w[0] < w[1]));
        if let Some(&last) = lows.last() {
            prop_assert!(last <= h.max());
        }
    }
}
