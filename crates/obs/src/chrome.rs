//! Chrome `trace_event` export.
//!
//! The output follows the "JSON Object Format" of the Trace Event
//! specification: a top-level object with a `traceEvents` array, which
//! Perfetto (<https://ui.perfetto.dev>) and `about://tracing` load
//! directly. Two processes separate the timelines:
//!
//! * **pid 1 — host**: wall-clock spans (`B`/`E`) and instants (`i`)
//!   from the characterization / estimation phases,
//! * **pid 2 — simulated time**: counter series (`C`) where one trace
//!   microsecond equals one simulation cycle (IPC, cache misses,
//!   per-window energy, …).

use std::io::{self, Write};

use crate::json::Value;
use crate::{Collector, EventKind, Track};

const HOST_PID: u64 = 1;
const SIM_PID: u64 = 2;

/// Worker lanes render under the host process after the main lane
/// (tid 1); request lanes start high enough that no realistic worker
/// count collides with them.
const WORKER_TID_BASE: u64 = 2;
const REQUEST_TID_BASE: u64 = 1002;

/// Serializes a [`Collector`] as Chrome `trace_event` JSON.
///
/// # Example
///
/// ```
/// use emx_obs::{ChromeTraceWriter, Collector};
///
/// let mut c = Collector::new();
/// let s = c.begin("simulate");
/// c.sample_at("ipc", 512, 0.87);
/// c.end(s);
/// let text = ChromeTraceWriter::new("demo").to_string(&c);
/// let parsed = emx_obs::json::Value::parse(&text).unwrap();
/// assert!(parsed.get("traceEvents").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ChromeTraceWriter {
    process_name: String,
}

impl ChromeTraceWriter {
    /// A writer labeling the host process `process_name` in the trace.
    pub fn new(process_name: &str) -> Self {
        ChromeTraceWriter {
            process_name: process_name.to_owned(),
        }
    }

    /// Builds the trace document as a JSON value.
    ///
    /// Events are emitted in timestamp order per track (the collector
    /// records them monotonically; a stable sort guarantees it even if
    /// tracks interleave), so consumers that require non-decreasing `ts`
    /// within a process accept the output.
    pub fn to_json(&self, collector: &Collector) -> Value {
        let mut events = Value::array();

        // Process-name metadata, so Perfetto labels the two timelines.
        for (pid, name) in [
            (HOST_PID, format!("{} (host wall-clock)", self.process_name)),
            (SIM_PID, format!("{} (simulated cycles)", self.process_name)),
        ] {
            let mut meta = Value::object();
            meta.set("name", "process_name");
            meta.set("ph", "M");
            meta.set("pid", pid);
            meta.set("tid", 0u64);
            let mut args = Value::object();
            args.set("name", name);
            meta.set("args", args);
            events.push(meta);
        }

        // Thread-name metadata for every worker and request lane that
        // has events.
        let mut workers: Vec<u32> = Vec::new();
        let mut requests: Vec<u32> = Vec::new();
        for e in collector.events() {
            match e.track {
                Track::Worker(k) => workers.push(k),
                Track::Request(k) => requests.push(k),
                _ => {}
            }
        }
        for (lanes, base, label) in [
            (&mut workers, WORKER_TID_BASE, "worker"),
            (&mut requests, REQUEST_TID_BASE, "request"),
        ] {
            lanes.sort_unstable();
            lanes.dedup();
            for &k in lanes.iter() {
                let mut meta = Value::object();
                meta.set("name", "thread_name");
                meta.set("ph", "M");
                meta.set("pid", HOST_PID);
                meta.set("tid", base + u64::from(k));
                let mut args = Value::object();
                args.set("name", format!("{label}-{k}"));
                meta.set("args", args);
                events.push(meta);
            }
        }

        let mut recorded: Vec<&crate::Event> = collector.events().iter().collect();
        recorded.sort_by_key(|e| e.ts);
        for event in recorded {
            let (pid, tid) = match event.track {
                Track::Host => (HOST_PID, 1u64),
                Track::Sim => (SIM_PID, 1u64),
                // Worker and request lanes render under the host
                // process, one tid per lane, after the main lane (tid 1).
                Track::Worker(k) => (HOST_PID, WORKER_TID_BASE + u64::from(k)),
                Track::Request(k) => (HOST_PID, REQUEST_TID_BASE + u64::from(k)),
            };
            let mut e = Value::object();
            e.set("name", event.name.as_ref());
            e.set("ts", event.ts);
            e.set("pid", pid);
            e.set("tid", tid);
            match &event.kind {
                EventKind::Begin => e.set("ph", "B"),
                EventKind::End => e.set("ph", "E"),
                EventKind::Instant => {
                    e.set("ph", "i");
                    e.set("s", "t");
                }
                EventKind::Sample(value) => {
                    e.set("ph", "C");
                    let mut args = Value::object();
                    args.set("value", *value);
                    e.set("args", args);
                }
            }
            events.push(e);
        }

        let mut doc = Value::object();
        doc.set("traceEvents", events);
        doc.set("displayTimeUnit", "ms");
        // Cumulative counters and histogram summaries ride along for
        // tools that read the file but not the timeline.
        let mut totals = Value::object();
        for (name, value) in collector.counters() {
            totals.set(name, *value);
        }
        let mut hists = Value::object();
        for (name, h) in collector.histograms() {
            let mut summary = Value::object();
            summary.set("count", h.count());
            summary.set("min", h.min());
            summary.set("p50", h.percentile(50.0));
            summary.set("p90", h.percentile(90.0));
            summary.set("p99", h.percentile(99.0));
            summary.set("max", h.max());
            summary.set("mean", h.mean());
            hists.set(name, summary);
        }
        let mut other = Value::object();
        other.set("counters", totals);
        other.set("histograms", hists);
        doc.set("otherData", other);
        doc
    }

    /// The trace document as a JSON string.
    #[allow(clippy::inherent_to_string)] // mirrors `to_json`; not a Display
    pub fn to_string(&self, collector: &Collector) -> String {
        self.to_json(collector).to_string()
    }

    /// Writes the trace document to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn write_to(&self, collector: &Collector, out: &mut impl Write) -> io::Result<()> {
        out.write_all(self.to_string(collector).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collector() -> Collector {
        let mut c = Collector::new();
        let outer = c.begin("characterize");
        let inner = c.begin("simulate");
        c.sample_at("ipc", 100, 0.9);
        c.sample_at("ipc", 200, 0.8);
        c.sample_at("energy_pj", 200, 1234.5);
        c.instant("solved");
        c.end(inner);
        c.end(outer);
        c.add("instructions", 1700.0);
        c.record("case_cycles", 4096);
        c
    }

    #[test]
    fn output_is_valid_json_with_monotone_ts() {
        let c = sample_collector();
        let text = ChromeTraceWriter::new("test").to_string(&c);
        let doc = Value::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 8);

        let mut last_ts = 0u64;
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(["M", "B", "E", "i", "C"].contains(&ph), "bad ph {ph}");
            if ph == "M" {
                continue;
            }
            assert!(e.get("name").unwrap().as_str().is_some());
            assert!(e.get("pid").unwrap().as_u64().is_some());
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            assert!(ts >= last_ts, "ts went backwards: {ts} < {last_ts}");
            last_ts = ts;
        }
    }

    #[test]
    fn counter_events_carry_values() {
        let c = sample_collector();
        let doc = ChromeTraceWriter::new("test").to_json(&c);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let counters: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 3);
        assert_eq!(
            counters[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(0.9)
        );
    }

    #[test]
    fn totals_ride_in_other_data() {
        let c = sample_collector();
        let doc = ChromeTraceWriter::new("test").to_json(&c);
        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other
                .get("counters")
                .unwrap()
                .get("instructions")
                .unwrap()
                .as_f64(),
            Some(1700.0)
        );
        let h = other.get("histograms").unwrap().get("case_cycles").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("max").unwrap().as_u64(), Some(4096));
    }

    #[test]
    fn spans_pair_up() {
        let c = sample_collector();
        let doc = ChromeTraceWriter::new("test").to_json(&c);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("E"))
            .count();
        assert_eq!(begins, 2);
        assert_eq!(begins, ends);
    }
}
