//! Log-linear histograms for latency- and size-shaped distributions.

use crate::json::Value;

/// Linear sub-buckets per power-of-two octave. 16 sub-buckets bound the
/// relative quantization error of any recorded value by 1/16 ≈ 6.25 %.
const SUBS: u64 = 16;

/// Number of addressable buckets: values below [`SUBS`] get an exact
/// bucket each; every octave above contributes [`SUBS`] buckets.
const BUCKETS: usize = ((64 - 4) * SUBS as usize) + SUBS as usize;

fn bucket_of(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let sub = (value >> (msb - 4)) - SUBS;
    ((msb - 3) * SUBS + sub) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUBS {
        return index;
    }
    let msb = index / SUBS + 3;
    let sub = index % SUBS;
    (SUBS + sub) << (msb - 4)
}

/// A fixed-memory log-linear histogram of `u64` samples.
///
/// Values are quantized into power-of-two octaves with 16 linear
/// sub-buckets each, so any percentile estimate is within ~6 % of the
/// true sample value while the whole structure stays a few kilobytes —
/// safe to keep per-phase or per-instruction-class without blowing up
/// memory on billion-event runs.
///
/// # Example
///
/// ```
/// use emx_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), 1);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.percentile(50.0);
/// assert!((p50 as f64 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram. Does not allocate until the first record.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Merges another histogram into this one, bucket-wise. Equivalent
    /// to having recorded every one of `other`'s samples here (up to
    /// the shared quantization, which both sides use identically).
    pub fn merge(&mut self, other: &Histogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (slot, &n) in self.counts.iter_mut().zip(&other.counts) {
            *slot += n;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at (or just above) the `p`-th percentile, `0 ≤ p ≤ 100`.
    ///
    /// Returns the midpoint of the bucket where the cumulative count
    /// crosses `p` percent of the samples, clamped to the exact recorded
    /// `[min, max]` range — so `percentile(0.0)` is exactly [`Histogram::min`]
    /// and `percentile(100.0)` exactly [`Histogram::max`].
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // The endpoints are known exactly; bucket midpoints are not.
        if p <= 0.0 {
            return self.min;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            if seen >= rank {
                let low = bucket_low(i);
                let high = if i + 1 < BUCKETS {
                    bucket_low(i + 1) - 1
                } else {
                    u64::MAX
                };
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs, in value
    /// order. The lower bound is inclusive; the next bucket's lower
    /// bound (or `u64::MAX` for the last addressable bucket) is the
    /// exclusive upper bound. This is the full serialized shape of the
    /// distribution — two histograms with identical bucket lists report
    /// identical percentiles.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_low(i), n))
    }

    /// Serializes the full histogram — scalar summary plus every
    /// non-empty bucket — as a JSON object that [`Histogram::from_json`]
    /// reconstructs exactly (same buckets, same percentiles).
    ///
    /// `min`, `max` and `sum` are decimal **strings** because they are
    /// u64/u128 quantities that a JSON double cannot always hold
    /// exactly; `count` and the per-bucket counts are plain numbers.
    /// Buckets are `[index, count]` pairs in index order, where `index`
    /// addresses the fixed log-linear bucket grid (16 sub-buckets per
    /// octave), so documents from any build of this crate line up
    /// bucket-for-bucket.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("count", self.total);
        doc.set("min", self.min().to_string());
        doc.set("max", self.max.to_string());
        doc.set("sum", self.sum.to_string());
        let mut buckets = Value::array();
        for (i, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                let mut pair = Value::array();
                pair.push(i as u64);
                pair.push(n);
                buckets.push(pair);
            }
        }
        doc.set("buckets", buckets);
        doc
    }

    /// Reconstructs a histogram serialized by [`Histogram::to_json`].
    ///
    /// # Errors
    ///
    /// A human-readable message when a field is missing or malformed,
    /// a bucket index is out of range, or the bucket counts do not sum
    /// back to `count` — a corrupt document is rejected, never silently
    /// truncated.
    pub fn from_json(doc: &Value) -> Result<Histogram, String> {
        let count = doc
            .get("count")
            .and_then(Value::as_u64)
            .ok_or("histogram: missing or non-integer `count`")?;
        let parse_u64 = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Value::as_str)
                .ok_or(format!("histogram: missing string field `{key}`"))?
                .parse::<u64>()
                .map_err(|_| format!("histogram: malformed `{key}`"))
        };
        if count == 0 {
            return Ok(Histogram::new());
        }
        let min = parse_u64("min")?;
        let max = parse_u64("max")?;
        let sum = doc
            .get("sum")
            .and_then(Value::as_str)
            .ok_or("histogram: missing string field `sum`")?
            .parse::<u128>()
            .map_err(|_| "histogram: malformed `sum`".to_owned())?;
        let buckets = doc
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or("histogram: missing `buckets` array")?;
        let mut counts = vec![0u64; BUCKETS];
        let mut total = 0u64;
        for pair in buckets {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("histogram: bucket is not an [index, count] pair")?;
            let index = pair[0]
                .as_u64()
                .ok_or("histogram: non-integer bucket index")?;
            let n = pair[1]
                .as_u64()
                .ok_or("histogram: non-integer bucket count")?;
            let slot = counts
                .get_mut(usize::try_from(index).map_err(|_| "histogram: bucket index overflows")?)
                .ok_or(format!("histogram: bucket index {index} out of range"))?;
            *slot = slot
                .checked_add(n)
                .ok_or("histogram: bucket count overflows")?;
            total = total
                .checked_add(n)
                .ok_or("histogram: total count overflows")?;
        }
        if total != count {
            return Err(format!(
                "histogram: bucket counts sum to {total} but `count` is {count}"
            ));
        }
        if min > max {
            return Err("histogram: min exceeds max".to_owned());
        }
        Ok(Histogram {
            counts,
            total,
            sum,
            min,
            max,
        })
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        for v in 0..100_000u64 {
            let b = bucket_of(v);
            assert!(b == prev || b == prev + 1, "gap at value {v}");
            assert!(bucket_low(b) <= v, "lower bound above value at {v}");
            prev = b;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(3);
        }
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(100.0), 3);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (p, expect) in [(10.0, 1_000.0), (50.0, 5_000.0), (90.0, 9_000.0)] {
            let got = h.percentile(p) as f64;
            assert!(
                (got - expect).abs() / expect < 0.07,
                "p{p} = {got}, want ≈{expect}"
            );
        }
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 10_000);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
            both.record(v);
        }
        for v in 500..=600u64 {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);

        // Merging an empty histogram is a no-op either way.
        let empty = Histogram::new();
        let before = a.clone();
        a.merge(&empty);
        assert_eq!(a, before);
        let mut fresh = Histogram::new();
        fresh.merge(&before);
        assert_eq!(fresh, before);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 17, 900, 65_536, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let doc = h.to_json();
        let text = doc.to_string();
        let back = Histogram::from_json(&Value::parse(&text).expect("valid JSON")).expect("parses");
        assert_eq!(back, h);
        for p in [0.0, 10.0, 50.0, 90.0, 99.9, 100.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        assert_eq!(back.mean(), h.mean());

        let empty = Histogram::new();
        let back = Histogram::from_json(&empty.to_json()).expect("parses");
        assert_eq!(back, empty);
    }

    #[test]
    fn from_json_rejects_corrupt_documents() {
        let mut h = Histogram::new();
        h.record(42);
        let good = h.to_json().to_string();

        for (bad, why) in [
            (
                good.replace("\"count\": 1", "\"count\": 2"),
                "count mismatch",
            ),
            (good.replace("\"min\": \"42\"", "\"min\": \"x\""), "bad min"),
            (
                good.replace("\"min\": \"42\"", "\"min\": \"99\""),
                "min > max",
            ),
            (
                good.replace("\"sum\": \"42\"", "\"other\": \"42\""),
                "no sum",
            ),
            (
                good.replace("\"buckets\"", "\"nothing\""),
                "missing buckets",
            ),
        ] {
            let doc = Value::parse(&bad).expect("still valid JSON");
            assert!(Histogram::from_json(&doc).is_err(), "accepted {why}");
        }

        let mut out_of_range = Value::object();
        out_of_range.set("count", 1u64);
        out_of_range.set("min", "1");
        out_of_range.set("max", "1");
        out_of_range.set("sum", "1");
        let mut pair = Value::array();
        pair.push(10_000_000u64);
        pair.push(1u64);
        let mut buckets = Value::array();
        buckets.push(pair);
        out_of_range.set("buckets", buckets);
        assert!(Histogram::from_json(&out_of_range).is_err());
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }
}
