//! Structured observability for the emx pipeline.
//!
//! The paper's central claim is a *performance* claim — macro-model
//! estimation is orders of magnitude faster than RTL power simulation —
//! and this crate is the substrate that lets the rest of the workspace
//! prove it with data instead of prose. It provides:
//!
//! * [`Collector`] — an explicitly-passed (never global) event collector
//!   with wall-clock spans, instants, cumulative counters, time-series
//!   samples on a simulated-time track, and log-linear [`Histogram`]s.
//!   A [`Collector::disabled`] collector is a guaranteed no-op that
//!   never allocates, so instrumented hot paths (the ISS inner loop,
//!   the net-level energy integrator) cost nothing when tracing is off.
//! * [`ChromeTraceWriter`] — exports a collector as Chrome
//!   `trace_event` JSON, loadable in Perfetto or `about://tracing`.
//!   Spans appear on the *host* (wall-clock) track; per-window
//!   simulation counters (IPC, cache misses, energy) appear on the
//!   *simulated time* track where one microsecond equals one cycle.
//! * [`json`] — a minimal self-contained JSON value type with a writer
//!   and a recursive-descent parser, used for every machine-readable
//!   report in the workspace (`emx-run --stats-json`,
//!   `emx-characterize --report`, the Chrome trace itself).
//!
//! # Example
//!
//! ```
//! use emx_obs::{ChromeTraceWriter, Collector};
//!
//! let mut c = Collector::new();
//! let phase = c.begin("simulate");
//! c.add("instructions", 1700.0);
//! c.sample_at("ipc", 1_000, 0.93);
//! c.end(phase);
//!
//! let trace = ChromeTraceWriter::new("demo").to_json(&c);
//! assert!(trace.get("traceEvents").unwrap().as_array().unwrap().len() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod collector;
mod hist;
pub mod json;

pub use chrome::ChromeTraceWriter;
pub use collector::{Collector, Event, EventKind, SpanId, SpanRecord, Track};
pub use hist::Histogram;
