//! The event collector: spans, instants, counters, samples, histograms.

use std::borrow::Cow;
use std::time::Instant;

use crate::Histogram;

/// Which timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Wall-clock time of the host process; timestamps are microseconds
    /// since the collector was created.
    Host,
    /// Simulated time; timestamps are simulation cycles (rendered as
    /// one microsecond per cycle in Chrome traces).
    Sim,
    /// Wall-clock time of one worker thread (0-based index); renders as
    /// its own lane under the host process in Chrome traces.
    Worker(u32),
    /// Wall-clock time of one request-serving lane (0-based index) in a
    /// long-running service; renders as its own lane under the host
    /// process in Chrome traces, after the [`Track::Worker`] lanes.
    Request(u32),
}

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened ([`Collector::begin`]).
    Begin,
    /// A span closed ([`Collector::end`]).
    End,
    /// A point-in-time marker ([`Collector::instant`]).
    Instant,
    /// One time-series sample ([`Collector::sample_at`]).
    Sample(f64),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span name, marker name, or time-series name).
    pub name: Cow<'static, str>,
    /// Timestamp in track units (see [`Track`]).
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which timeline it belongs to.
    pub track: Track,
}

/// Handle for a span opened with [`Collector::begin`].
///
/// Pass it back to [`Collector::end`]; the move-only type makes double
/// closing a compile error.
#[derive(Debug)]
#[must_use = "a span must be closed with Collector::end"]
pub struct SpanId(usize);

/// A closed span, reconstructed by [`Collector::spans`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Start timestamp, microseconds since collector creation.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth (0 = top level).
    pub depth: usize,
}

/// Collects structured observability events for one pipeline run.
///
/// The collector is always passed explicitly — there is no thread-local
/// or global registry — so ownership of instrumentation cost is visible
/// in every signature that pays it. A collector created with
/// [`Collector::disabled`] turns every method into a no-op that never
/// allocates, which is how the simulator hot loops stay free when
/// tracing is off.
///
/// # Example
///
/// ```
/// use emx_obs::Collector;
///
/// let mut c = Collector::new();
/// let outer = c.begin("characterize");
/// let inner = c.begin("simulate");
/// c.add("instructions", 1234.0);
/// c.record("case_cycles", 5678);
/// c.end(inner);
/// c.end(outer);
///
/// let spans = c.spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].name, "characterize");
/// assert_eq!(spans[1].depth, 1);
/// assert_eq!(c.counter("instructions"), 1234.0);
/// ```
#[derive(Debug)]
pub struct Collector {
    enabled: bool,
    origin: Instant,
    events: Vec<Event>,
    counters: Vec<(Cow<'static, str>, f64)>,
    histograms: Vec<(Cow<'static, str>, Histogram)>,
}

impl Collector {
    /// An enabled collector; timestamps count from this call.
    pub fn new() -> Self {
        Collector {
            enabled: true,
            origin: Instant::now(),
            events: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// A collector whose every method is an allocation-free no-op.
    pub fn disabled() -> Self {
        Collector {
            enabled: false,
            ..Self::new()
        }
    }

    /// `false` for collectors created with [`Collector::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds of wall-clock time since the collector was created.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a span on the host track. Close it with [`Collector::end`].
    pub fn begin(&mut self, name: impl Into<Cow<'static, str>>) -> SpanId {
        self.begin_on(name, Track::Host)
    }

    /// Opens a span on an explicit track — [`Track::Worker`] lanes let
    /// parallel evaluators keep per-thread timelines in one trace.
    pub fn begin_on(&mut self, name: impl Into<Cow<'static, str>>, track: Track) -> SpanId {
        if !self.enabled {
            return SpanId(usize::MAX);
        }
        let id = SpanId(self.events.len());
        self.events.push(Event {
            name: name.into(),
            ts: self.now_us(),
            kind: EventKind::Begin,
            track,
        });
        id
    }

    /// Closes a span opened with [`Collector::begin`] or
    /// [`Collector::begin_on`]; the End event lands on the same track.
    pub fn end(&mut self, span: SpanId) {
        if !self.enabled {
            return;
        }
        let name = self.events[span.0].name.clone();
        let track = self.events[span.0].track;
        debug_assert!(matches!(self.events[span.0].kind, EventKind::Begin));
        self.events.push(Event {
            name,
            ts: self.now_us(),
            kind: EventKind::End,
            track,
        });
    }

    /// Runs `f` inside a span — the closure form of begin/end.
    pub fn span<T>(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        f: impl FnOnce(&mut Self) -> T,
    ) -> T {
        let span = self.begin(name);
        let out = f(self);
        self.end(span);
        out
    }

    /// Records a point-in-time marker on the host track.
    pub fn instant(&mut self, name: impl Into<Cow<'static, str>>) {
        if !self.enabled {
            return;
        }
        self.events.push(Event {
            name: name.into(),
            ts: self.now_us(),
            kind: EventKind::Instant,
            track: Track::Host,
        });
    }

    /// Records one time-series sample on the simulated-time track at an
    /// explicit timestamp (in cycles).
    pub fn sample_at(&mut self, name: impl Into<Cow<'static, str>>, ts_cycles: u64, value: f64) {
        if !self.enabled {
            return;
        }
        self.events.push(Event {
            name: name.into(),
            ts: ts_cycles,
            kind: EventKind::Sample(value),
            track: Track::Sim,
        });
    }

    /// Adds to a named cumulative counter.
    pub fn add(&mut self, name: impl Into<Cow<'static, str>>, delta: f64) {
        if !self.enabled {
            return;
        }
        let name = name.into();
        if let Some(slot) = self.counters.iter_mut().find(|(k, _)| *k == name) {
            slot.1 += delta;
        } else {
            self.counters.push((name, delta));
        }
    }

    /// Current value of a cumulative counter (0.0 if never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// All cumulative counters, in first-touch order.
    pub fn counters(&self) -> &[(Cow<'static, str>, f64)] {
        &self.counters
    }

    /// Records one sample into a named histogram.
    pub fn record(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        if !self.enabled {
            return;
        }
        let name = name.into();
        if let Some(slot) = self.histograms.iter_mut().find(|(k, _)| *k == name) {
            slot.1.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.push((name, h));
        }
    }

    /// A named histogram, if any sample was recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// All histograms, in first-touch order.
    pub fn histograms(&self) -> &[(Cow<'static, str>, Histogram)] {
        &self.histograms
    }

    /// A child collector sharing this collector's time origin, for use
    /// on another thread. Because `origin` is shared, timestamps from
    /// the child land on the same timeline when merged back with
    /// [`Collector::absorb`]. A fork of a disabled collector is itself
    /// disabled (and therefore free).
    pub fn fork(&self) -> Self {
        Collector {
            enabled: self.enabled,
            origin: self.origin,
            events: Vec::new(),
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Merges a forked child back: events are appended, counters are
    /// summed, histograms are merged bucket-wise.
    pub fn absorb(&mut self, child: Self) {
        if !self.enabled {
            return;
        }
        self.events.extend(child.events);
        for (name, value) in child.counters {
            self.add(name, value);
        }
        for (name, hist) in child.histograms {
            if let Some(slot) = self.histograms.iter_mut().find(|(k, _)| *k == name) {
                slot.1.merge(&hist);
            } else {
                self.histograms.push((name, hist));
            }
        }
    }

    /// The raw event stream, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Reconstructs the closed spans (in opening order) with nesting
    /// depths. Spans still open are omitted.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // indices into `out`
        for event in &self.events {
            match event.kind {
                EventKind::Begin => {
                    out.push(SpanRecord {
                        name: event.name.to_string(),
                        start_us: event.ts,
                        dur_us: u64::MAX, // patched on End; sentinel for "open"
                        depth: stack.len(),
                    });
                    stack.push(out.len() - 1);
                }
                EventKind::End => {
                    if let Some(i) = stack.pop() {
                        out[i].dur_us = event.ts - out[i].start_us;
                    }
                }
                _ => {}
            }
        }
        out.retain(|s| s.dur_us != u64::MAX);
        out
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_order() {
        let mut c = Collector::new();
        let a = c.begin("outer");
        let b = c.begin("middle");
        let d = c.begin("inner");
        c.end(d);
        c.end(b);
        let e = c.begin("sibling");
        c.end(e);
        c.end(a);

        let spans = c.spans();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["outer", "middle", "inner", "sibling"]
        );
        assert_eq!(
            spans.iter().map(|s| s.depth).collect::<Vec<_>>(),
            [0, 1, 2, 1]
        );
        // A child starts no earlier and ends no later than its parent.
        assert!(spans[2].start_us >= spans[1].start_us);
        assert!(spans[2].start_us + spans[2].dur_us <= spans[1].start_us + spans[1].dur_us);
    }

    #[test]
    fn open_spans_are_omitted() {
        let mut c = Collector::new();
        let _open = c.begin("never-closed");
        let b = c.begin("closed");
        c.end(b);
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "closed");
        assert_eq!(spans[0].depth, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Collector::new();
        c.add("insts", 10.0);
        c.add("insts", 5.0);
        c.add("misses", 1.0);
        assert_eq!(c.counter("insts"), 15.0);
        assert_eq!(c.counter("misses"), 1.0);
        assert_eq!(c.counter("absent"), 0.0);
    }

    #[test]
    fn histograms_collect() {
        let mut c = Collector::new();
        for v in [1u64, 2, 3] {
            c.record("lat", v);
        }
        let h = c.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 3);
        assert!(c.histogram("absent").is_none());
    }

    #[test]
    fn disabled_collector_is_inert_and_allocation_free() {
        let mut c = Collector::disabled();
        let s = c.begin("x");
        c.add("n", 1.0);
        c.record("h", 1);
        c.sample_at("s", 0, 1.0);
        c.instant("i");
        c.end(s);
        assert!(!c.is_enabled());
        assert!(c.events().is_empty());
        assert!(c.counters().is_empty());
        assert!(c.histograms().is_empty());
        // Vec::new() never allocated: capacities stay zero.
        assert_eq!(c.events.capacity(), 0);
        assert_eq!(c.counters.capacity(), 0);
        assert_eq!(c.histograms.capacity(), 0);
    }

    #[test]
    fn span_closure_form() {
        let mut c = Collector::new();
        let out = c.span("work", |c| {
            c.add("steps", 1.0);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(c.spans().len(), 1);
    }

    #[test]
    fn worker_spans_keep_their_track() {
        let mut c = Collector::new();
        let s = c.begin_on("evaluate", Track::Worker(3));
        c.end(s);
        let tracks: Vec<Track> = c.events().iter().map(|e| e.track).collect();
        assert_eq!(tracks, [Track::Worker(3), Track::Worker(3)]);
    }

    #[test]
    fn fork_and_absorb_merge_everything() {
        let mut parent = Collector::new();
        parent.add("hits", 1.0);
        parent.record("lat", 10);

        let mut child = parent.fork();
        assert!(child.is_enabled());
        let s = child.begin_on("work", Track::Worker(0));
        child.end(s);
        child.add("hits", 2.0);
        child.add("misses", 5.0);
        child.record("lat", 30);
        child.record("other", 7);

        parent.absorb(child);
        assert_eq!(parent.counter("hits"), 3.0);
        assert_eq!(parent.counter("misses"), 5.0);
        assert_eq!(parent.histogram("lat").unwrap().count(), 2);
        assert_eq!(parent.histogram("lat").unwrap().max(), 30);
        assert_eq!(parent.histogram("other").unwrap().count(), 1);
        assert_eq!(parent.spans().len(), 1);
    }

    #[test]
    fn fork_of_disabled_is_disabled() {
        let parent = Collector::disabled();
        let mut child = parent.fork();
        assert!(!child.is_enabled());
        let s = child.begin_on("x", Track::Worker(0));
        child.end(s);
        assert!(child.events().is_empty());
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut c = Collector::new();
        for i in 0..100 {
            c.instant(format!("e{i}"));
        }
        let ts: Vec<u64> = c.events().iter().map(|e| e.ts).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
