//! A minimal, self-contained JSON value: writer and parser.
//!
//! Every machine-readable artifact in the workspace — execution-stats
//! dumps, characterization reports, Chrome traces — goes through this
//! module, so downstream tooling can rely on one consistent encoder and
//! the test suite can round-trip every artifact without external crates.
//!
//! Objects preserve insertion order (they are association lists, not
//! hash maps), which keeps report files diffable across runs.
//!
//! # Example
//!
//! ```
//! use emx_obs::json::Value;
//!
//! let mut report = Value::object();
//! report.set("schema", "demo/1");
//! report.set("cycles", 1234u64);
//! let text = report.to_string();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").unwrap().as_f64(), Some(1234.0));
//! ```

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Obj(Vec::new())
    }

    /// An empty array.
    pub fn array() -> Value {
        Value::Arr(Vec::new())
    }

    /// Sets `key` on an object (replacing an existing entry).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        let Value::Obj(entries) = self else {
            panic!("Value::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_owned(), value));
        }
    }

    /// Appends to an array.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Value>) {
        let Value::Arr(items) = self else {
            panic!("Value::push on a non-array");
        };
        items.push(value.into());
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`ParseError`] with a byte offset on malformed input, including
    /// trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest representation that
                    // round-trips, and prints integers without a dot.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(f64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Arr(items)
    }
}

/// A JSON syntax error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for emx's own
                            // ASCII-only artifacts; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let mut doc = Value::object();
        doc.set("name", "emx \"quoted\" \\ path\nline");
        doc.set("pi", 3.25);
        doc.set("count", 42u64);
        doc.set("ok", true);
        doc.set("nothing", Value::Null);
        let mut arr = Value::array();
        arr.push(1u64);
        arr.push("two");
        doc.set("items", arr);

        let text = doc.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let v = Value::parse(r#" { "a": [1, 2.5, -3e2], "b": {"nested": null}, "s": "A\t" } "#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("A\t"));
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut v = Value::object();
        v.set("k", 1u64);
        v.set("k", 2u64);
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
    }
}
