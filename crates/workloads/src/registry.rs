//! A name-keyed registry over the benchmark workloads.
//!
//! CLI tools that take a `--workload <name>` flag (`emx-discover`, and
//! anything that wants to replay one benchmark by name) resolve it here,
//! so every binary agrees on what `rs1` or `accumulate` means. The
//! registry covers the four Reed–Solomon codec builds (under both their
//! short names `rs0`…`rs3` and their full workload names
//! `reed_solomon_rs0`…) and the ten Table II applications.

use crate::reed_solomon::RsConfig;
use crate::{apps, Workload};

/// Resolves a workload by name, assembling it on demand.
///
/// Accepts the short Reed–Solomon config names (`rs0`…`rs3`), the full
/// workload names (`reed_solomon_rs0`…), and the Table II application
/// names (`accumulate`, `ins_sort`, …). Returns `None` for unknown
/// names; [`names`] lists what is available.
pub fn by_name(name: &str) -> Option<Workload> {
    for cfg in RsConfig::ALL {
        if name == cfg.name() || name == format!("reed_solomon_{}", cfg.name()) {
            return Some(cfg.workload());
        }
    }
    apps::all().into_iter().find(|w| w.name() == name)
}

/// Every name [`by_name`] resolves (short Reed–Solomon names first, then
/// the applications in Table II row order), for CLI usage messages.
pub fn names() -> Vec<String> {
    let mut out: Vec<String> = RsConfig::ALL.iter().map(|c| c.name().to_owned()).collect();
    out.extend(apps::all().iter().map(|w| w.name().to_owned()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_short_and_full_rs_names() {
        assert_eq!(by_name("rs1").unwrap().name(), "reed_solomon_rs1");
        assert_eq!(
            by_name("reed_solomon_rs2").unwrap().name(),
            "reed_solomon_rs2"
        );
    }

    #[test]
    fn resolves_every_listed_name() {
        for name in names() {
            assert!(by_name(&name).is_some(), "listed name `{name}` resolves");
        }
        assert!(by_name("no_such_workload").is_none());
    }
}
