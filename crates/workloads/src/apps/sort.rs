//! `ins_sort` and `bubsort`: sorting kernels on the `sortpair`
//! compare-and-order unit.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

fn sorted_checks(values: &[u32]) -> Vec<MemCheck> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect()
}

/// Insertion sort of 64 random words.
///
/// The inner loop's "does the key belong here?" comparison runs on the
/// custom `cmpx` unit: `cmpx(t, key)` returns `key` exactly when
/// `t ≤ key`, turning the comparison into a single custom instruction
/// plus an equality branch.
pub fn ins_sort() -> Workload {
    let data = lcg_stream(101, 64);
    let n = data.len() as u32;
    let source = format!(
        ".data\narr: {}\n.text\n\
         # a2 = &arr, a3 = i (outer index), a4 = n\n\
         movi a2, arr\nmovi a4, {n}\nmovi a3, 1\n\
         outer:\nbgeu a3, a4, done\n\
         # key = arr[i]\n\
         slli a5, a3, 2\nadd a5, a5, a2\nl32i a6, 0(a5)\n\
         mov a7, a3\n\
         inner:\nbeqz a7, place\n\
         addi a8, a7, -1\nslli a9, a8, 2\nadd a9, a9, a2\nl32i a12, 0(a9)\n\
         cmpx a13, a12, a6\nbeq a13, a6, place\n\
         # shift arr[j-1] up to arr[j]\n\
         slli a14, a7, 2\nadd a14, a14, a2\ns32i a12, 0(a14)\n\
         mov a7, a8\nj inner\n\
         place:\nslli a14, a7, 2\nadd a14, a14, a2\ns32i a6, 0(a14)\n\
         addi a3, a3, 1\nj outer\n\
         done:\nhalt",
        words_directive(&data)
    );
    Workload::assemble(
        "ins_sort",
        "insertion sort of 64 words with a compare-and-order custom unit",
        exts::sortpair(),
        &source,
        sorted_checks(&data),
    )
}

/// Bubble sort of 48 random words.
///
/// Each adjacent pair is ordered by one `cmpx` (max to the GPR, min
/// latched) plus one `rdmin` — a branch-free compare-swap.
pub fn bubsort() -> Workload {
    let data = lcg_stream(102, 48);
    let n = data.len() as u32;
    let source = format!(
        ".data\narr: {}\n.text\n\
         movi a2, arr\nmovi a3, {n}\naddi a3, a3, -1   # passes left\n\
         pass:\nbeqz a3, done\n\
         movi a4, 0           # j\n\
         movi a5, arr\n\
         inner:\nbgeu a4, a3, endpass\n\
         l32i a6, 0(a5)\nl32i a7, 4(a5)\n\
         cmpx a8, a6, a7\nrdmin a9\n\
         s32i a9, 0(a5)\ns32i a8, 4(a5)\n\
         addi a4, a4, 1\naddi a5, a5, 4\nj inner\n\
         endpass:\naddi a3, a3, -1\nj pass\n\
         done:\nhalt",
        words_directive(&data)
    );
    Workload::assemble(
        "bubsort",
        "bubble sort of 48 words with branch-free compare-swap",
        exts::sortpair(),
        &source,
        sorted_checks(&data),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    fn run(w: &Workload) -> emx_sim::ExecStats {
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let stats = sim.run(50_000_000).unwrap().stats;
        w.verify(sim.state()).unwrap();
        stats
    }

    #[test]
    fn ins_sort_sorts() {
        run(&ins_sort());
    }

    #[test]
    fn bubsort_sorts() {
        let stats = run(&bubsort());
        // Bubble sort with compare-swap executes cmpx (47·48/2 = 1128) and
        // rdmin once per pair.
        assert_eq!(stats.custom_counts.iter().sum::<u64>(), 2 * 1128);
    }
}
