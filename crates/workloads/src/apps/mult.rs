//! `seq_mult`: software sequential (shift-add) multiplication whose inner
//! step runs on the carry-save `csamult` unit.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

const PAIRS: usize = 16;

/// Multiplies 16 pairs of 16-bit operands, one CSA step per multiplier
/// bit: the partial-product accumulation never resolves carries until the
/// final `mres` (`TIE_csa` + `TIE_add`).
pub fn seq_mult() -> Workload {
    let xs: Vec<u32> = lcg_stream(701, PAIRS).iter().map(|v| v & 0xffff).collect();
    let ys: Vec<u32> = lcg_stream(702, PAIRS).iter().map(|v| v & 0xffff).collect();
    let checks: Vec<MemCheck> = xs
        .iter()
        .zip(&ys)
        .enumerate()
        .map(|(i, (&x, &y))| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: x.wrapping_mul(y),
        })
        .collect();
    let source = format!(
        ".data\nout: .space {}\nxs: {}\nys: {}\n.text\n\
         movi a2, {PAIRS}\nmovi a3, xs\nmovi a4, ys\nmovi a5, out\n\
         pair:\nl32i a6, 0(a3)\nl32i a7, 0(a4)\nmclr\nmovi a8, 16\n\
         step:\nandi a9, a7, 1\nmstep a6, a9\nslli a6, a6, 1\nsrli a7, a7, 1\n\
         addi a8, a8, -1\nbnez a8, step\n\
         mres a12\ns32i a12, 0(a5)\n\
         addi a3, a3, 4\naddi a4, a4, 4\naddi a5, a5, 4\n\
         addi a2, a2, -1\nbnez a2, pair\nhalt",
        PAIRS * 4,
        words_directive(&xs),
        words_directive(&ys)
    );
    Workload::assemble(
        "seq_mult",
        "16 sequential multiplications on a carry-save step unit",
        exts::csa_mult(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn seq_mult_verifies() {
        let w = seq_mult();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
