//! `des`: a DES-style Feistel cipher whose S-box substitutions run on the
//! `sbox12` table-lookup unit.
//!
//! The cipher is a 4-round Feistel network over 64-bit blocks with a
//! DES-shaped round function: key mixing, two 6→4-bit S-box pairs through
//! the custom `dsbox` instruction, and a diffusion permutation (rotate +
//! fold). It is not the full 16-round DES — the paper's benchmark is a
//! stand-in too — but it exercises the identical hardware structure:
//! wide table lookups dominating the datapath.

use emx_isa::program::layout::DATA_BASE;

use crate::exts::des_sbox;
use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

const BLOCKS: usize = 8;
const KEYS: [u32; 4] = [0x1bd5_f234, 0x7e3a_9c01, 0xc4d2_e6b8, 0x5a01_7f3c];

/// Reference for the custom `dsbox` instruction: two 6-bit halves through
/// their S-boxes, packed to 8 bits.
fn dsbox_ref(x: u32) -> u32 {
    (des_sbox(0, u64::from(x) & 63) | (des_sbox(1, (u64::from(x) >> 6) & 63) << 4)) as u32
}

fn feistel(r: u32, k: u32) -> u32 {
    let x = r ^ k;
    let s0 = dsbox_ref(x & 0xfff);
    let s1 = dsbox_ref((x >> 12) & 0xfff);
    let f = s0 | (s1 << 8);
    f.rotate_left(7) ^ (x >> 16)
}

fn encrypt(mut l: u32, mut r: u32) -> (u32, u32) {
    for k in KEYS {
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    (l, r)
}

/// Encrypts eight 64-bit blocks in place.
pub fn des() -> Workload {
    let mut words = lcg_stream(501, 2 * BLOCKS);
    let source = {
        let mut round_asm = String::new();
        for k in KEYS {
            round_asm.push_str(&format!(
                "movi a8, 0x{k:x}\nxor a9, a7, a8\n\
                 extui a12, a9, 0, 12\ndsbox a13, a12\n\
                 extui a12, a9, 12, 12\ndsbox a14, a12\n\
                 slli a14, a14, 8\nor a13, a13, a14\n\
                 rori a13, a13, 25\nsrli a14, a9, 16\nxor a13, a13, a14\n\
                 xor a13, a13, a6\nmov a6, a7\nmov a7, a13\n"
            ));
        }
        format!(
            ".data\nblocks: {}\n.text\n\
             movi a2, {BLOCKS}\nmovi a3, blocks\n\
             block:\nl32i a6, 0(a3)\nl32i a7, 4(a3)\n\
             {round_asm}\
             s32i a6, 0(a3)\ns32i a7, 4(a3)\n\
             addi a3, a3, 8\naddi a2, a2, -1\nbnez a2, block\nhalt",
            words_directive(&words)
        )
    };

    // Expected image: encrypt each (L, R) pair in place.
    for pair in words.chunks_mut(2) {
        let (l, r) = encrypt(pair[0], pair[1]);
        pair[0] = l;
        pair[1] = r;
    }
    let checks: Vec<MemCheck> = words
        .iter()
        .enumerate()
        .map(|(i, &v)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();

    Workload::assemble(
        "des",
        "4-round Feistel cipher with S-boxes on a custom table unit",
        exts::sbox12(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn feistel_is_invertible() {
        // Decrypt by running keys in reverse on the swapped pair.
        let (l0, r0) = (0x0123_4567, 0x89ab_cdef);
        let (l, r) = encrypt(l0, r0);
        let (mut dl, mut dr) = (r, l);
        for k in KEYS.iter().rev() {
            let next = dl ^ feistel(dr, *k);
            dl = dr;
            dr = next;
        }
        assert_eq!((dr, dl), (l0, r0));
    }

    #[test]
    fn des_app_verifies() {
        let w = des();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
