//! `gcd`: greatest common divisors by the subtractive method on the
//! `absdiff` custom unit.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

fn gcd_ref(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes `gcd` for 32 pairs of 16-bit numbers.
///
/// The subtractive iteration `(a, b) ← (|a−b|, min(a, b))` preserves the
/// gcd and terminates when the difference reaches zero; the absolute
/// difference is one `absdiff` custom instruction.
pub fn gcd() -> Workload {
    let xs: Vec<u32> = lcg_stream(201, 32)
        .iter()
        .map(|v| (v & 0xffff) | 1)
        .collect();
    let ys: Vec<u32> = lcg_stream(202, 32)
        .iter()
        .map(|v| (v & 0xffff) | 1)
        .collect();
    let checks: Vec<MemCheck> = xs
        .iter()
        .zip(&ys)
        .enumerate()
        .map(|(i, (&a, &b))| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: gcd_ref(a, b),
        })
        .collect();
    let source = format!(
        ".data\nout: .space 128\nxs: {}\nys: {}\n.text\n\
         movi a2, 32\nmovi a3, xs\nmovi a4, ys\nmovi a5, out\n\
         pair:\nl32i a6, 0(a3)\nl32i a7, 0(a4)\n\
         step:\nabsdiff a8, a6, a7\nminu a9, a6, a7\n\
         mov a6, a8\nmov a7, a9\nbnez a8, step\n\
         s32i a9, 0(a5)\n\
         addi a3, a3, 4\naddi a4, a4, 4\naddi a5, a5, 4\n\
         addi a2, a2, -1\nbnez a2, pair\nhalt",
        words_directive(&xs),
        words_directive(&ys)
    );
    Workload::assemble(
        "gcd",
        "subtractive gcd of 32 pairs on the absdiff unit",
        exts::absdiff_ext(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn gcd_reference_is_correct() {
        assert_eq!(gcd_ref(12, 18), 6);
        assert_eq!(gcd_ref(7, 13), 1);
        assert_eq!(gcd_ref(100, 100), 100);
    }

    #[test]
    fn gcd_app_verifies() {
        let w = gcd();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(50_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
