//! The ten application benchmarks of Table II.
//!
//! Each application incorporates custom instructions (a different
//! extension per application family), is *held out* of the
//! characterization suite, and is self-checking: its expected memory
//! image is computed by a Rust reference implementation at construction
//! time, so a workload whose energy we report is also a workload whose
//! output is verified.
//!
//! | paper name        | constructor          | custom instructions |
//! |-------------------|----------------------|---------------------|
//! | Ins sort          | [`ins_sort`]         | `cmpx`, `rdmin` |
//! | Gcd               | [`gcd`]              | `absdiff` |
//! | Alphablend        | [`alphablend`]       | `setalpha`, `blend` |
//! | Add4              | [`add4`]             | `add4x8` |
//! | Bubsort           | [`bubsort`]          | `cmpx`, `rdmin` |
//! | DES               | [`des`]              | `dsbox` |
//! | Accumulate        | [`accumulate`]       | `mac`, `rdacc`, `clracc` |
//! | Drawline          | [`drawline`]         | `absdiff`, `sgnsel` |
//! | Multi accumulate  | [`multi_accumulate`] | `mac2`, `rdacc0/1`, `clracc2` |
//! | Seq mult          | [`seq_mult`]         | `mstep`, `mres`, `mclr` |

mod blend;
mod des_app;
mod gcd_app;
mod line;
mod mac;
mod mult;
mod simd;
mod sort;

pub use blend::alphablend;
pub use des_app::des;
pub use gcd_app::gcd;
pub use line::drawline;
pub use mac::{accumulate, multi_accumulate};
pub use mult::seq_mult;
pub use simd::add4;
pub use sort::{bubsort, ins_sort};

use crate::Workload;

/// All ten Table II applications, in the table's row order.
pub fn all() -> Vec<Workload> {
    vec![
        ins_sort(),
        gcd(),
        alphablend(),
        add4(),
        bubsort(),
        des(),
        accumulate(),
        drawline(),
        multi_accumulate(),
        seq_mult(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn all_ten_apps_run_and_verify() {
        let apps = all();
        assert_eq!(apps.len(), 10);
        for w in apps {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let run = sim
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(run.halted);
            assert!(!w.checks().is_empty(), "{} has no checks", w.name());
            w.verify(sim.state()).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn every_app_uses_custom_instructions() {
        for w in all() {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let stats = sim.run(50_000_000).unwrap().stats;
            assert!(
                stats.custom_counts.iter().sum::<u64>() > 0,
                "{} never executed a custom instruction",
                w.name()
            );
        }
    }
}
