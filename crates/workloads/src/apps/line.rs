//! `drawline`: Bresenham line rasterization into a byte framebuffer,
//! with the octant setup running on the `line` custom unit.

use emx_isa::program::layout::DATA_BASE;

use crate::{exts, MemCheck, Workload};

const W: i32 = 32;
const H: i32 = 32;

/// `(x0, y0, x1, y1, color)` for each rasterized line.
const LINES: [(i32, i32, i32, i32, u32); 6] = [
    (0, 0, 31, 31, 1),
    (31, 0, 0, 31, 2),
    (0, 16, 31, 16, 3),
    (16, 0, 16, 31, 4),
    (2, 5, 29, 11, 5),
    (28, 30, 3, 7, 6),
];

/// All-octant integer Bresenham, kept in exact lock-step with the
/// assembly implementation below.
fn draw_ref(fb: &mut [u8], mut x0: i32, mut y0: i32, x1: i32, y1: i32, color: u8) {
    let dx = (x1 - x0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let dy = -(y1 - y0).abs();
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    loop {
        fb[(y0 * W + x0) as usize] = color;
        if x0 == x1 && y0 == y1 {
            return;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
}

/// Rasterizes six lines into a 32×32 framebuffer.
///
/// The custom `absdiff` computes |Δx|, |Δy| and `sgnsel` the step
/// directions; the error-update loop uses the base ISA.
pub fn drawline() -> Workload {
    let mut fb = vec![0u8; (W * H) as usize];
    for &(x0, y0, x1, y1, c) in &LINES {
        draw_ref(&mut fb, x0, y0, x1, y1, c as u8);
    }
    let checks: Vec<MemCheck> = fb
        .chunks(4)
        .enumerate()
        .map(|(i, c)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
        })
        .collect();

    let mut lines_words = String::from(".word ");
    let flat: Vec<String> = LINES
        .iter()
        .flat_map(|&(a, b, c, d, e)| {
            [a as u32, b as u32, c as u32, d as u32, e].map(|v| format!("0x{v:x}"))
        })
        .collect();
    lines_words.push_str(&flat.join(", "));

    let source = format!(
        ".data\nout: .space {}\nlines: {lines_words}\n.text\n\
         movi a3, out\nmovi a10, lines\nmovi a11, {}\n\
         nextline:\n\
         l32i a4, 0(a10)\nl32i a5, 4(a10)\nl32i a6, 8(a10)\nl32i a7, 12(a10)\nl32i a8, 16(a10)\n\
         absdiff a9, a4, a6\nsgnsel a12, a4, a6\n\
         absdiff a13, a5, a7\nneg a13, a13\nsgnsel a14, a5, a7\n\
         add a15, a9, a13\n\
         plot:\n\
         slli a2, a5, 5\nadd a2, a2, a4\nadd a2, a2, a3\ns8i a8, 0(a2)\n\
         bne a4, a6, cont\nbeq a5, a7, lend\n\
         cont:\n\
         slli a2, a15, 1\n\
         blt a2, a13, skipx\nadd a15, a15, a13\nadd a4, a4, a12\n\
         skipx:\n\
         blt a9, a2, skipy\nadd a15, a15, a9\nadd a5, a5, a14\n\
         skipy:\nj plot\n\
         lend:\naddi a10, a10, 20\naddi a11, a11, -1\nbnez a11, nextline\nhalt",
        W * H,
        LINES.len(),
    );
    Workload::assemble(
        "drawline",
        "Bresenham rasterization of six lines with custom octant setup",
        exts::line_ext(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn reference_plots_endpoints() {
        let mut fb = vec![0u8; (W * H) as usize];
        draw_ref(&mut fb, 0, 0, 31, 31, 9);
        assert_eq!(fb[0], 9);
        assert_eq!(fb[(31 * W + 31) as usize], 9);
        // A perfect diagonal has exactly 32 pixels.
        assert_eq!(fb.iter().filter(|&&p| p == 9).count(), 32);
    }

    #[test]
    fn drawline_verifies() {
        let w = drawline();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
