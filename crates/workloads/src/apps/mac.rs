//! `accumulate` and `multi_accumulate`: multiply–accumulate kernels on
//! the `mac16` / `mac16x2` units.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

const N: usize = 128;

/// Dot product of two 128-element 16-bit vectors through the single-lane
/// MAC unit; the low accumulator word is stored to memory.
pub fn accumulate() -> Workload {
    let xs: Vec<u32> = lcg_stream(601, N).iter().map(|v| v & 0xffff).collect();
    let hs: Vec<u32> = lcg_stream(602, N).iter().map(|v| v & 0xffff).collect();
    let dot: u64 = xs
        .iter()
        .zip(&hs)
        .map(|(&x, &h)| u64::from(x) * u64::from(h))
        .sum();
    let source = format!(
        ".data\nout: .space 4\nxs: {}\nhs: {}\n.text\n\
         clracc\nmovi a2, {N}\nmovi a3, xs\nmovi a4, hs\n\
         loop:\nl32i a5, 0(a3)\nl32i a6, 0(a4)\nmac a5, a6\n\
         addi a3, a3, 4\naddi a4, a4, 4\naddi a2, a2, -1\nbnez a2, loop\n\
         rdacc a7\nmovi a8, out\ns32i a7, 0(a8)\nhalt",
        words_directive(&xs),
        words_directive(&hs)
    );
    Workload::assemble(
        "accumulate",
        "128-tap dot product on the mac16 unit",
        exts::mac16(),
        &source,
        vec![MemCheck {
            addr: DATA_BASE,
            expected: dot as u32,
        }],
    )
}

/// Two interleaved dot products on the dual-lane MAC: each data word
/// packs one 16-bit sample per channel.
pub fn multi_accumulate() -> Workload {
    let xs = lcg_stream(603, N);
    let hs = lcg_stream(604, N);
    let mut acc = [0u64; 2];
    for (&x, &h) in xs.iter().zip(&hs) {
        acc[0] += u64::from(x & 0xffff) * u64::from(h & 0xffff);
        acc[1] += u64::from(x >> 16) * u64::from(h >> 16);
    }
    let source = format!(
        ".data\nout: .space 8\nxs: {}\nhs: {}\n.text\n\
         clracc2\nmovi a2, {N}\nmovi a3, xs\nmovi a4, hs\n\
         loop:\nl32i a5, 0(a3)\nl32i a6, 0(a4)\nmac2 a5, a6\n\
         addi a3, a3, 4\naddi a4, a4, 4\naddi a2, a2, -1\nbnez a2, loop\n\
         rdacc0 a7\nrdacc1 a8\nmovi a9, out\ns32i a7, 0(a9)\ns32i a8, 4(a9)\nhalt",
        words_directive(&xs),
        words_directive(&hs)
    );
    Workload::assemble(
        "multi_accumulate",
        "dual-channel dot product on the mac16x2 unit",
        exts::mac16x2(),
        &source,
        vec![
            MemCheck {
                addr: DATA_BASE,
                expected: acc[0] as u32,
            },
            MemCheck {
                addr: DATA_BASE + 4,
                expected: acc[1] as u32,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn accumulate_verifies() {
        let w = accumulate();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }

    #[test]
    fn multi_accumulate_verifies() {
        let w = multi_accumulate();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
