//! `add4`: packed 4×8-bit vector addition on the `simd4` unit.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, MemCheck, Workload};

const WORDS: usize = 96;
const ROUNDS: u32 = 12;

fn add4x8_ref(a: u32, b: u32) -> u32 {
    let mut out = [0u8; 4];
    for (i, o) in out.iter_mut().enumerate() {
        *o = a.to_le_bytes()[i].wrapping_add(b.to_le_bytes()[i]);
    }
    u32::from_le_bytes(out)
}

/// Repeatedly accumulates a byte-plane array into an output buffer with
/// saturating-free lane-wise adds — the paper-era motivating example for
/// SIMD custom instructions.
pub fn add4() -> Workload {
    let xs = lcg_stream(401, WORDS);
    let mut expected = vec![0u32; WORDS];
    for _ in 0..ROUNDS {
        for (e, &x) in expected.iter_mut().zip(&xs) {
            *e = add4x8_ref(*e, x);
        }
    }
    let checks: Vec<MemCheck> = expected
        .iter()
        .enumerate()
        .map(|(i, &v)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();

    let source = format!(
        ".data\nout: .space {}\nxs: {}\n.text\n\
         movi a2, {ROUNDS}\n\
         round:\nmovi a3, xs\nmovi a4, out\nmovi a5, {WORDS}\n\
         word:\nl32i a6, 0(a3)\nl32i a7, 0(a4)\nadd4x8 a8, a7, a6\ns32i a8, 0(a4)\n\
         addi a3, a3, 4\naddi a4, a4, 4\naddi a5, a5, -1\nbnez a5, word\n\
         addi a2, a2, -1\nbnez a2, round\nhalt",
        WORDS * 4,
        words_directive(&xs)
    );
    Workload::assemble(
        "add4",
        "lane-wise packed byte accumulation (SIMD custom adder)",
        exts::simd4(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn lanes_do_not_carry() {
        assert_eq!(add4x8_ref(0x00ff_00ff, 0x0001_0001), 0x0000_0000);
    }

    #[test]
    fn add4_verifies() {
        let w = add4();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
