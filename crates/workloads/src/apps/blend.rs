//! `alphablend`: per-pixel alpha compositing on the `blend8` unit.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::lcg_stream;
use crate::{exts, MemCheck, Workload};

const PIXELS: usize = 256;
const BLOCK: usize = 64;

fn blend_ref(a: u8, b: u8, alpha: u8) -> u8 {
    let v = u32::from(a) * u32::from(alpha) + u32::from(b) * (255 - u32::from(alpha));
    (v >> 8) as u8
}

fn bytes_directive(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(16) {
        out.push_str(".byte ");
        let items: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        out.push_str(&items.join(", "));
        out.push('\n');
    }
    out
}

/// Blends two 256-pixel greyscale rows, with the alpha value changing
/// every 64-pixel block (`setalpha` once per block, `blend` per pixel).
pub fn alphablend() -> Workload {
    let fg: Vec<u8> = lcg_stream(301, PIXELS).iter().map(|v| *v as u8).collect();
    let bg: Vec<u8> = lcg_stream(302, PIXELS).iter().map(|v| *v as u8).collect();
    let alphas: [u8; 4] = [32, 128, 200, 255];

    let mut expected = vec![0u8; PIXELS];
    for (i, e) in expected.iter_mut().enumerate() {
        *e = blend_ref(fg[i], bg[i], alphas[i / BLOCK]);
    }
    // Pack expected bytes into word checks (PIXELS is word-aligned).
    let checks: Vec<MemCheck> = expected
        .chunks(4)
        .enumerate()
        .map(|(i, c)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
        })
        .collect();

    let source = format!(
        ".data\nout: .space {PIXELS}\nfg: {}\nbg: {}\nalphas: .byte {}\n.text\n\
         movi a2, 4            # blocks\n\
         movi a3, fg\nmovi a4, bg\nmovi a5, out\nmovi a6, alphas\n\
         block:\nl8ui a7, 0(a6)\nsetalpha a7\nmovi a8, {BLOCK}\n\
         pixel:\nl8ui a9, 0(a3)\nl8ui a12, 0(a4)\nblend a13, a9, a12\ns8i a13, 0(a5)\n\
         addi a3, a3, 1\naddi a4, a4, 1\naddi a5, a5, 1\naddi a8, a8, -1\nbnez a8, pixel\n\
         addi a6, a6, 1\naddi a2, a2, -1\nbnez a2, block\nhalt",
        bytes_directive(&fg),
        bytes_directive(&bg),
        alphas.map(|a| a.to_string()).join(", "),
    );
    Workload::assemble(
        "alphablend",
        "256-pixel alpha compositing on an 8-bit blender unit",
        exts::blend8(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn blend_reference_endpoints() {
        assert_eq!(blend_ref(200, 10, 255), ((200 * 255) >> 8) as u8);
        assert_eq!(blend_ref(200, 10, 0), ((10 * 255) >> 8) as u8);
    }

    #[test]
    fn alphablend_verifies() {
        let w = alphablend();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000_000).unwrap();
        w.verify(sim.state()).unwrap();
    }
}
