//! The extension-set (TIE) library shared by the characterization suite
//! and the application benchmarks.
//!
//! Each constructor builds one "enhanced processor" configuration. Between
//! them the sets exercise **all ten** hardware-library categories at
//! several bit-widths, which the characterization suite needs in order to
//! identify every structural coefficient of the macro-model ("the test
//! program suite also incorporates custom instructions so as to cover all
//! the custom hardware library components").

use emx_hwlib::{DfGraph, LookupTable, NodeId, PrimOp};
use emx_tie::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind};

use crate::gf;

/// Builds the GF(2⁴) product of two 4-bit nodes inside `g`, using
/// log/antilog tables with explicit zero handling. Returns the product
/// node.
fn gfmul_core(g: &mut DfGraph, a: NodeId, b: NodeId) -> NodeId {
    let log_t = g.add_table(LookupTable::new(gf::log_table().to_vec(), 4).expect("table"));
    let exp_t = g.add_table(LookupTable::new(gf::exp_table().to_vec(), 4).expect("table"));
    let la = g
        .node(PrimOp::TableLookup { table_index: log_t }, 4, &[a])
        .expect("graph");
    let lb = g
        .node(PrimOp::TableLookup { table_index: log_t }, 4, &[b])
        .expect("graph");
    let sum = g.node(PrimOp::Add, 5, &[la, lb]).expect("graph");
    let prod = g
        .node(PrimOp::TableLookup { table_index: exp_t }, 4, &[sum])
        .expect("graph");
    let az = g.node(PrimOp::RedOr, 1, &[a]).expect("graph");
    let bz = g.node(PrimOp::RedOr, 1, &[b]).expect("graph");
    let nz = g.node(PrimOp::And, 1, &[az, bz]).expect("graph");
    let zero = g.constant(0, 4).expect("graph");
    g.node(PrimOp::Mux, 4, &[nz, prod, zero]).expect("graph")
}

/// `mac16`: a 16×16 multiply–accumulate unit over a 40-bit accumulator
/// (`TIE_mac` + custom register).
///
/// * `mac a, b` — `acc += a·b`
/// * `rdacc d` — `d = acc[31:0]`
/// * `clracc` — `acc = 0`
pub fn mac16() -> ExtensionSet {
    mac_width(16, 40, "mac16")
}

/// `mac8`: the same MAC structure at 8-bit operand / 20-bit accumulator
/// width. Exists so the characterization suite sees the TIE_mac and
/// custom-register categories at two different complexity ratios (the
/// quadratic-vs-linear `f(C)` split is unidentifiable from one width).
pub fn mac8() -> ExtensionSet {
    mac_width(8, 20, "mac8")
}

fn mac_width(w: u8, acc_w: u8, name: &str) -> ExtensionSet {
    let mut ext = ExtensionBuilder::new(name);
    let acc = ext.state("acc", acc_w).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let acc_in = g.input("acc", acc_w);
    let mac = g
        .node(PrimOp::TieMac, acc_w, &[a, b, acc_in])
        .expect("graph");
    g.output(mac);
    ext.instruction("mac", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_input(InputBind::State(acc))
        .expect("bind")
        .bind_output(OutputBind::State(acc))
        .expect("bind");

    let mut g = DfGraph::new();
    let acc_in = g.input("acc", acc_w);
    let low = g
        .node(PrimOp::Slice { lsb: 0 }, acc_w.min(32), &[acc_in])
        .expect("graph");
    g.output(low);
    ext.instruction("rdacc", g)
        .expect("inst")
        .bind_input(InputBind::State(acc))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let zero = g.constant(0, acc_w).expect("graph");
    g.output(zero);
    ext.instruction("clracc", g)
        .expect("inst")
        .bind_output(OutputBind::State(acc))
        .expect("bind");

    ext.build().expect("mac extension compiles")
}

/// `mac16x2`: dual MAC over packed 16-bit lanes with two 40-bit
/// accumulators (the `multi_accumulate` datapath).
///
/// * `mac2 a, b` — `acc0 += lo16(a)·lo16(b); acc1 += hi16(a)·hi16(b)`
/// * `rdacc0 d` / `rdacc1 d` — read accumulator low words
/// * `clracc2` — clear both
pub fn mac16x2() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("mac16x2");
    let acc0 = ext.state("acc0", 40).expect("state");
    let acc1 = ext.state("acc1", 40).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let a0_in = g.input("acc0", 40);
    let a1_in = g.input("acc1", 40);
    let alo = g.node(PrimOp::Slice { lsb: 0 }, 16, &[a]).expect("graph");
    let ahi = g.node(PrimOp::Slice { lsb: 16 }, 16, &[a]).expect("graph");
    let blo = g.node(PrimOp::Slice { lsb: 0 }, 16, &[b]).expect("graph");
    let bhi = g.node(PrimOp::Slice { lsb: 16 }, 16, &[b]).expect("graph");
    let m0 = g
        .node(PrimOp::TieMac, 40, &[alo, blo, a0_in])
        .expect("graph");
    let m1 = g
        .node(PrimOp::TieMac, 40, &[ahi, bhi, a1_in])
        .expect("graph");
    g.output(m0);
    g.output(m1);
    ext.instruction("mac2", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_input(InputBind::State(acc0))
        .expect("bind")
        .bind_input(InputBind::State(acc1))
        .expect("bind")
        .bind_output(OutputBind::State(acc0))
        .expect("bind")
        .bind_output(OutputBind::State(acc1))
        .expect("bind");

    for (name, state) in [("rdacc0", acc0), ("rdacc1", acc1)] {
        let mut g = DfGraph::new();
        let acc_in = g.input("acc", 40);
        let low = g
            .node(PrimOp::Slice { lsb: 0 }, 32, &[acc_in])
            .expect("graph");
        g.output(low);
        ext.instruction(name, g)
            .expect("inst")
            .bind_input(InputBind::State(state))
            .expect("bind")
            .bind_output(OutputBind::Gpr)
            .expect("bind");
    }

    let mut g = DfGraph::new();
    let zero = g.constant(0, 40).expect("graph");
    g.output(zero);
    g.output(zero);
    ext.instruction("clracc2", g)
        .expect("inst")
        .bind_output(OutputBind::State(acc0))
        .expect("bind")
        .bind_output(OutputBind::State(acc1))
        .expect("bind");

    ext.build().expect("mac16x2 extension compiles")
}

fn add_gfmul_inst(ext: &mut ExtensionBuilder) {
    let mut g = DfGraph::new();
    let a = g.input("a", 4);
    let b = g.input("b", 4);
    let p = gfmul_core(&mut g, a, b);
    g.output(p);
    ext.instruction("gfmul", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
}

/// `gf16`: a single-instruction GF(2⁴) multiplier using log/antilog
/// tables (categories: table, adder, logic/mux).
///
/// * `gfmul d, a, b` — `d = a ⊗ b` in GF(16)
pub fn gf16() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("gf16");
    add_gfmul_inst(&mut ext);
    ext.build().expect("gf16 extension compiles")
}

/// `gf16mac`: GF(2⁴) multiplier plus an accumulating variant over a 4-bit
/// custom register.
///
/// * `gfmul d, a, b`
/// * `gfmac a, b` — `gacc ^= a ⊗ b`
/// * `rdgacc d` / `clrgacc`
pub fn gf16_mac() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("gf16mac");
    let gacc = ext.state("gacc", 4).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", 4);
    let b = g.input("b", 4);
    let p = gfmul_core(&mut g, a, b);
    g.output(p);
    ext.instruction("gfmul", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let a = g.input("a", 4);
    let b = g.input("b", 4);
    let acc_in = g.input("gacc", 4);
    let p = gfmul_core(&mut g, a, b);
    let nx = g.node(PrimOp::Xor, 4, &[p, acc_in]).expect("graph");
    g.output(nx);
    ext.instruction("gfmac", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_input(InputBind::State(gacc))
        .expect("bind")
        .bind_output(OutputBind::State(gacc))
        .expect("bind");

    let mut g = DfGraph::new();
    let acc_in = g.input("gacc", 4);
    g.output(acc_in);
    ext.instruction("rdgacc", g)
        .expect("inst")
        .bind_input(InputBind::State(gacc))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let zero = g.constant(0, 4).expect("graph");
    g.output(zero);
    ext.instruction("clrgacc", g)
        .expect("inst")
        .bind_output(OutputBind::State(gacc))
        .expect("bind");

    ext.build().expect("gf16mac extension compiles")
}

/// `rswide`: a four-way parallel Reed–Solomon syndrome unit over a packed
/// 16-bit syndrome register. One `synstep` performs, for all four
/// syndromes at once, `S_i ← S_i·αⁱ ⊕ r` — a full Horner step per
/// received symbol.
///
/// * `synstep r`
/// * `rdsyn d` — packed `[S3 S2 S1 S0]`
/// * `clrsyn`
pub fn rs_wide() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("rswide");
    add_syn_insts(&mut ext);
    ext.build().expect("rswide extension compiles")
}

/// `rsfull`: the widest Reed–Solomon configuration — the parallel
/// syndrome unit of [`rs_wide`] plus the [`gf16`] multiplier, so both the
/// encoder and the decoder run on custom hardware.
pub fn rs_full() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("rsfull");
    add_gfmul_inst(&mut ext);
    add_syn_insts(&mut ext);
    ext.build().expect("rsfull extension compiles")
}

fn add_syn_insts(ext: &mut ExtensionBuilder) {
    let syn = ext.state("syn", 16).expect("state");

    let mut g = DfGraph::new();
    let r = g.input("r", 4);
    let syn_in = g.input("syn", 16);
    let mut lanes = Vec::new();
    for i in 0..4u8 {
        let s = g
            .node(PrimOp::Slice { lsb: 4 * i }, 4, &[syn_in])
            .expect("graph");
        let rotated = if i == 0 {
            s // α⁰ = 1: no constant multiplier needed
        } else {
            let t = g.add_table(
                LookupTable::new(gf::const_mul_table(i as usize).to_vec(), 4).expect("table"),
            );
            g.node(PrimOp::TableLookup { table_index: t }, 4, &[s])
                .expect("graph")
        };
        let nx = g.node(PrimOp::Xor, 4, &[rotated, r]).expect("graph");
        lanes.push(nx);
    }
    let p01 = g
        .node(PrimOp::Pack { lsb: 4 }, 8, &[lanes[0], lanes[1]])
        .expect("graph");
    let p012 = g
        .node(PrimOp::Pack { lsb: 8 }, 12, &[p01, lanes[2]])
        .expect("graph");
    let packed = g
        .node(PrimOp::Pack { lsb: 12 }, 16, &[p012, lanes[3]])
        .expect("graph");
    g.output(packed);
    ext.instruction("synstep", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::State(syn))
        .expect("bind")
        .bind_output(OutputBind::State(syn))
        .expect("bind");

    let mut g = DfGraph::new();
    let syn_in = g.input("syn", 16);
    g.output(syn_in);
    ext.instruction("rdsyn", g)
        .expect("inst")
        .bind_input(InputBind::State(syn))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let zero = g.constant(0, 16).expect("graph");
    g.output(zero);
    ext.instruction("clrsyn", g)
        .expect("inst")
        .bind_output(OutputBind::State(syn))
        .expect("bind");
}

/// `dsp16`: saturating fractional multiply plus variable shifts
/// (multiplier, shifter, comparator coverage).
///
/// * `satmul d, a, b` — `d = min((a·b) >> 7, 0xffff)` over 16-bit inputs
/// * `vshl d, a, b` / `vshr d, a, b` — variable barrel shifts
pub fn dsp16() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("dsp16");

    let mut g = DfGraph::new();
    let a = g.input("a", 16);
    let b = g.input("b", 16);
    let p = g.node(PrimOp::Mul, 32, &[a, b]).expect("graph");
    let sh = g.node(PrimOp::Slice { lsb: 7 }, 25, &[p]).expect("graph");
    let limit = g.constant(0xffff, 25).expect("graph");
    let over = g.node(PrimOp::CmpLtu, 1, &[limit, sh]).expect("graph");
    let lo = g.node(PrimOp::Slice { lsb: 0 }, 16, &[sh]).expect("graph");
    let sat = g.constant(0xffff, 16).expect("graph");
    let out = g.node(PrimOp::Mux, 16, &[over, sat, lo]).expect("graph");
    g.output(out);
    ext.instruction("satmul", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    for (name, op) in [("vshl", PrimOp::Shl), ("vshr", PrimOp::Shr)] {
        let mut g = DfGraph::new();
        let a = g.input("a", 32);
        let b = g.input("b", 5);
        let out = g.node(op, 32, &[a, b]).expect("graph");
        g.output(out);
        ext.instruction(name, g)
            .expect("inst")
            .bind_input(InputBind::GprS)
            .expect("bind")
            .bind_input(InputBind::GprT)
            .expect("bind")
            .bind_output(OutputBind::Gpr)
            .expect("bind");
    }

    ext.build().expect("dsp16 extension compiles")
}

/// `csamult`: a carry-save sequential-multiplier step unit (the
/// `seq_mult` datapath; `TIE_csa` + `TIE_add` coverage).
///
/// State: carry-save pair `(ssum, scarry)`.
///
/// * `mstep m, bit` — if `bit`, CSA-accumulate `m` into the pair
/// * `mres d` — resolve the pair with a `TIE_add`
/// * `mclr`
pub fn csa_mult() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("csamult");
    let ssum = ext.state("ssum", 32).expect("state");
    let scarry = ext.state("scarry", 32).expect("state");

    let mut g = DfGraph::new();
    let m = g.input("m", 32);
    let bit = g.input("bit", 1);
    let s_in = g.input("ssum", 32);
    let c_in = g.input("scarry", 32);
    let zero = g.constant(0, 32).expect("graph");
    let masked = g.node(PrimOp::Mux, 32, &[bit, m, zero]).expect("graph");
    let ns = g
        .node(PrimOp::TieCsaSum, 32, &[s_in, c_in, masked])
        .expect("graph");
    let nc = g
        .node(PrimOp::TieCsaCarry, 32, &[s_in, c_in, masked])
        .expect("graph");
    g.output(ns);
    g.output(nc);
    ext.instruction("mstep", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_input(InputBind::State(ssum))
        .expect("bind")
        .bind_input(InputBind::State(scarry))
        .expect("bind")
        .bind_output(OutputBind::State(ssum))
        .expect("bind")
        .bind_output(OutputBind::State(scarry))
        .expect("bind");

    let mut g = DfGraph::new();
    let s_in = g.input("ssum", 32);
    let c_in = g.input("scarry", 32);
    let zero = g.constant(0, 32).expect("graph");
    let sum = g
        .node(PrimOp::TieAdd, 32, &[s_in, c_in, zero])
        .expect("graph");
    g.output(sum);
    ext.instruction("mres", g)
        .expect("inst")
        .bind_input(InputBind::State(ssum))
        .expect("bind")
        .bind_input(InputBind::State(scarry))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let zero = g.constant(0, 32).expect("graph");
    g.output(zero);
    g.output(zero);
    ext.instruction("mclr", g)
        .expect("inst")
        .bind_output(OutputBind::State(ssum))
        .expect("bind")
        .bind_output(OutputBind::State(scarry))
        .expect("bind");

    ext.build().expect("csamult extension compiles")
}

/// `tmul16`: `TIE_mult` coverage — low and high halves of a 16×16
/// product.
pub fn tmul16() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("tmul16");
    for (name, lsb) in [("tmullo", 0u8), ("tmulhi", 16u8)] {
        let mut g = DfGraph::new();
        let a = g.input("a", 16);
        let b = g.input("b", 16);
        let p = g.node(PrimOp::TieMult, 32, &[a, b]).expect("graph");
        let part = g.node(PrimOp::Slice { lsb }, 16, &[p]).expect("graph");
        g.output(part);
        ext.instruction(name, g)
            .expect("inst")
            .bind_input(InputBind::GprS)
            .expect("bind")
            .bind_input(InputBind::GprT)
            .expect("bind")
            .bind_output(OutputBind::Gpr)
            .expect("bind");
    }
    ext.build().expect("tmul16 extension compiles")
}

/// `wide64`: a 64-bit signature register (wide custom-register +
/// reduction-logic coverage).
///
/// * `wacc a` — `w ^= (a | a<<32)`
/// * `wpar d` — parity of `w`
/// * `wclr`
pub fn wide64() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("wide64");
    let w = ext.state("w", 64).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let w_in = g.input("w", 64);
    let rep = g
        .node(PrimOp::Pack { lsb: 32 }, 64, &[a, a])
        .expect("graph");
    let nx = g.node(PrimOp::Xor, 64, &[w_in, rep]).expect("graph");
    g.output(nx);
    ext.instruction("wacc", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::State(w))
        .expect("bind")
        .bind_output(OutputBind::State(w))
        .expect("bind");

    let mut g = DfGraph::new();
    let w_in = g.input("w", 64);
    let par = g.node(PrimOp::RedXor, 1, &[w_in]).expect("graph");
    g.output(par);
    ext.instruction("wpar", g)
        .expect("inst")
        .bind_input(InputBind::State(w))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let zero = g.constant(0, 64).expect("graph");
    g.output(zero);
    ext.instruction("wclr", g)
        .expect("inst")
        .bind_output(OutputBind::State(w))
        .expect("bind");

    ext.build().expect("wide64 extension compiles")
}

/// `simd4`: a packed 4×8-bit SIMD adder (`add4` workload).
///
/// * `add4x8 d, a, b` — four independent byte sums, no cross-lane carry
pub fn simd4() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("simd4");
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let mut sums = Vec::new();
    for k in 0..4u8 {
        let ak = g
            .node(PrimOp::Slice { lsb: 8 * k }, 8, &[a])
            .expect("graph");
        let bk = g
            .node(PrimOp::Slice { lsb: 8 * k }, 8, &[b])
            .expect("graph");
        sums.push(g.node(PrimOp::Add, 8, &[ak, bk]).expect("graph"));
    }
    let p01 = g
        .node(PrimOp::Pack { lsb: 8 }, 16, &[sums[0], sums[1]])
        .expect("graph");
    let p012 = g
        .node(PrimOp::Pack { lsb: 16 }, 24, &[p01, sums[2]])
        .expect("graph");
    let out = g
        .node(PrimOp::Pack { lsb: 24 }, 32, &[p012, sums[3]])
        .expect("graph");
    g.output(out);
    ext.instruction("add4x8", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("simd4 extension compiles")
}

/// `sortpair`: compare-and-order unit for sorting kernels.
///
/// * `cmpx d, a, b` — `d = max(a,b)` (unsigned); `min(a,b)` is latched in
///   the `min` custom register
/// * `rdmin d` — read the latched minimum
pub fn sortpair() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("sortpair");
    let min = ext.state("min", 32).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let lt = g.node(PrimOp::CmpLtu, 1, &[a, b]).expect("graph");
    let mx = g.node(PrimOp::Mux, 32, &[lt, b, a]).expect("graph");
    let mn = g.node(PrimOp::Mux, 32, &[lt, a, b]).expect("graph");
    g.output(mx);
    g.output(mn);
    ext.instruction("cmpx", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind")
        .bind_output(OutputBind::State(min))
        .expect("bind");

    let mut g = DfGraph::new();
    let m_in = g.input("min", 32);
    g.output(m_in);
    ext.instruction("rdmin", g)
        .expect("inst")
        .bind_input(InputBind::State(min))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    ext.build().expect("sortpair extension compiles")
}

/// `blend8`: an 8-bit alpha blender (`alphablend` workload):
/// `d = (a·α + b·(255−α)) >> 8` with α in a custom register.
///
/// * `setalpha a`
/// * `blend d, a, b`
pub fn blend8() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("blend8");
    let alpha = ext.state("alpha", 8).expect("state");

    let mut g = DfGraph::new();
    let a = g.input("a", 8);
    g.output(a);
    ext.instruction("setalpha", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::State(alpha))
        .expect("bind");

    let mut g = DfGraph::new();
    let a = g.input("a", 8);
    let b = g.input("b", 8);
    let al = g.input("alpha", 8);
    let p1 = g.node(PrimOp::Mul, 16, &[a, al]).expect("graph");
    let c255 = g.constant(255, 8).expect("graph");
    let ia = g.node(PrimOp::Sub, 8, &[c255, al]).expect("graph");
    let p2 = g.node(PrimOp::Mul, 16, &[b, ia]).expect("graph");
    let s = g.node(PrimOp::Add, 16, &[p1, p2]).expect("graph");
    let out = g.node(PrimOp::Slice { lsb: 8 }, 8, &[s]).expect("graph");
    g.output(out);
    ext.instruction("blend", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_input(InputBind::State(alpha))
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    ext.build().expect("blend8 extension compiles")
}

/// Pseudo-DES S-box contents: two fixed, data-rich 64-entry 4-bit tables.
pub(crate) fn des_sbox(which: usize, index: u64) -> u64 {
    let i = index & 63;
    match which {
        0 => ((i * 13 + 5) ^ (i >> 2)) & 0xf,
        _ => ((i * 7 + 11) ^ (i >> 3) ^ 0x9) & 0xf,
    }
}

/// `sbox12`: a two-S-box substitution unit (the DES workload): a 12-bit
/// input is split into two 6-bit halves, each substituted through its own
/// 64-entry table, producing a packed 8-bit result.
///
/// * `dsbox d, a`
pub fn sbox12() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("sbox12");
    let mut g = DfGraph::new();
    let x = g.input("x", 12);
    let t0 =
        g.add_table(LookupTable::new((0..64).map(|i| des_sbox(0, i)).collect(), 4).expect("table"));
    let t1 =
        g.add_table(LookupTable::new((0..64).map(|i| des_sbox(1, i)).collect(), 4).expect("table"));
    let lo = g.node(PrimOp::Slice { lsb: 0 }, 6, &[x]).expect("graph");
    let hi = g.node(PrimOp::Slice { lsb: 6 }, 6, &[x]).expect("graph");
    let s0 = g
        .node(PrimOp::TableLookup { table_index: t0 }, 4, &[lo])
        .expect("graph");
    let s1 = g
        .node(PrimOp::TableLookup { table_index: t1 }, 4, &[hi])
        .expect("graph");
    let out = g
        .node(PrimOp::Pack { lsb: 4 }, 8, &[s0, s1])
        .expect("graph");
    g.output(out);
    ext.instruction("dsbox", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("sbox12 extension compiles")
}

/// `tie_alu`: stateless three-operand TIE arithmetic — the fused modules
/// wired straight between the operand buses, an immediate and the result
/// bus, with **no custom registers**. Exists so the TIE_mac / TIE_add /
/// TIE_csa categories appear in the characterization suite unbundled from
/// custom-register traffic.
///
/// * `maci d, a, b, imm` — `d = a·b + imm` (TIE_mac)
/// * `add3i d, a, b, imm` — `d = a + b + imm` (TIE_add)
/// * `csa3s d, a, b, imm` / `csa3c d, a, b, imm` — carry-save sum/carry
pub fn tie_alu() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("tie_alu");
    let specs: [(&str, PrimOp, u8); 4] = [
        ("maci", PrimOp::TieMac, 32),
        ("add3i", PrimOp::TieAdd, 32),
        ("csa3s", PrimOp::TieCsaSum, 32),
        ("csa3c", PrimOp::TieCsaCarry, 32),
    ];
    for (name, op, w) in specs {
        let mut g = DfGraph::new();
        let a = g.input("a", w);
        let b = g.input("b", w);
        let imm = g.input("imm", w);
        let out = g.node(op, w, &[a, b, imm]).expect("graph");
        g.output(out);
        ext.instruction(name, g)
            .expect("inst")
            .bind_input(InputBind::GprS)
            .expect("bind")
            .bind_input(InputBind::GprT)
            .expect("bind")
            .bind_input(InputBind::Imm)
            .expect("bind")
            .bind_output(OutputBind::Gpr)
            .expect("bind");
    }
    // A near-empty custom instruction: one wire-level pass-through. Its
    // executions carry GPR coupling (n_CI) with almost no combinational
    // hardware, separating the side-effect coefficient from the
    // logic/mux category.
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let out = g.node(PrimOp::Slice { lsb: 0 }, 32, &[a]).expect("graph");
    g.output(out);
    ext.instruction("cpass", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    ext.build().expect("tie_alu extension compiles")
}

/// `mul32c`: a full-width 32-bit custom multiplier (`cmul d, a, b`).
/// Gives the characterization suite the general-multiplier category at
/// `f(C) = 1`, complementing the 8- and 16-bit instances elsewhere.
pub fn mul32c() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("mul32c");
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let m = g.node(PrimOp::Mul, 32, &[a, b]).expect("graph");
    g.output(m);
    ext.instruction("cmul", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("mul32c extension compiles")
}

/// `bigtable`: a 256-entry × 16-bit lookup unit (`tlu d, a`) — a
/// sine/companding-style table far larger than the GF and S-box tables,
/// giving the table category a high-complexity instance.
pub fn bigtable() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("bigtable");
    let mut g = DfGraph::new();
    let a = g.input("a", 8);
    let entries: Vec<u64> = (0..256u64).map(|i| (i * i * 257 / 64) & 0xffff).collect();
    let t = g.add_table(LookupTable::new(entries, 16).expect("table"));
    let out = g
        .node(PrimOp::TableLookup { table_index: t }, 16, &[a])
        .expect("graph");
    g.output(out);
    ext.instruction("tlu", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("bigtable extension compiles")
}

/// `absdiff`: unsigned absolute difference (`gcd` workload).
pub fn absdiff_ext() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("absdiff");
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let lt = g.node(PrimOp::CmpLtu, 1, &[a, b]).expect("graph");
    let d1 = g.node(PrimOp::Sub, 32, &[a, b]).expect("graph");
    let d2 = g.node(PrimOp::Sub, 32, &[b, a]).expect("graph");
    let out = g.node(PrimOp::Mux, 32, &[lt, d2, d1]).expect("graph");
    g.output(out);
    ext.instruction("absdiff", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
    ext.build().expect("absdiff extension compiles")
}

/// `line`: Bresenham helpers for the `drawline` workload: unsigned
/// absolute difference plus a signed step selector.
///
/// * `absdiff d, a, b`
/// * `sgnsel d, a, b` — `+1` if `a < b` (signed), else `-1`
pub fn line_ext() -> ExtensionSet {
    let mut ext = ExtensionBuilder::new("line");
    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let lt = g.node(PrimOp::CmpLtu, 1, &[a, b]).expect("graph");
    let d1 = g.node(PrimOp::Sub, 32, &[a, b]).expect("graph");
    let d2 = g.node(PrimOp::Sub, 32, &[b, a]).expect("graph");
    let out = g.node(PrimOp::Mux, 32, &[lt, d2, d1]).expect("graph");
    g.output(out);
    ext.instruction("absdiff", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    let mut g = DfGraph::new();
    let a = g.input("a", 32);
    let b = g.input("b", 32);
    let lt = g.node(PrimOp::CmpLts, 1, &[a, b]).expect("graph");
    let plus = g.constant(1, 32).expect("graph");
    let minus = g.constant(0xffff_ffff, 32).expect("graph");
    let out = g.node(PrimOp::Mux, 32, &[lt, plus, minus]).expect("graph");
    g.output(out);
    ext.instruction("sgnsel", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");

    ext.build().expect("line extension compiles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_hwlib::Category;

    fn exec1(set: &ExtensionSet, name: &str, rs: u32, rt: u32) -> u64 {
        let inst = set.by_name(name).expect("instruction exists");
        let mut state = set.initial_state();
        inst.execute(rs, rt, 0, &mut state)
            .expect("executes")
            .gpr
            .expect("writes gpr")
    }

    #[test]
    fn gfmul_matches_reference() {
        let set = gf16();
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(
                    exec1(&set, "gfmul", a, b) as u8,
                    gf::mul(a as u8, b as u8),
                    "{a}⊗{b}"
                );
            }
        }
    }

    #[test]
    fn gfmac_accumulates() {
        let set = gf16_mac();
        let mac = set.by_name("gfmac").unwrap();
        let rd = set.by_name("rdgacc").unwrap();
        let mut state = set.initial_state();
        let mut expected = 0u8;
        for (a, b) in [(3u8, 7u8), (5, 5), (12, 9), (1, 15)] {
            mac.execute(u32::from(a), u32::from(b), 0, &mut state)
                .unwrap();
            expected ^= gf::mul(a, b);
        }
        let got = rd.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap();
        assert_eq!(got as u8, expected);
    }

    #[test]
    fn synstep_computes_syndromes() {
        // Feed a message of 6 symbols and compare against direct
        // polynomial evaluation S_i = Σ r_j α^(i·(n-1-j)).
        let msg = [3u8, 0, 7, 12, 1, 9];
        let set = rs_wide();
        let step = set.by_name("synstep").unwrap();
        let rd = set.by_name("rdsyn").unwrap();
        let mut state = set.initial_state();
        for &r in &msg {
            step.execute(u32::from(r), 0, 0, &mut state).unwrap();
        }
        let packed = rd.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap();
        for i in 0..4 {
            let mut s = 0u8;
            for (j, &r) in msg.iter().enumerate() {
                let power = (i * (msg.len() - 1 - j)) % 15;
                s ^= gf::mul(r, gf::exp(power));
            }
            let lane = ((packed >> (4 * i)) & 0xf) as u8;
            assert_eq!(lane, s, "syndrome {i}");
        }
    }

    #[test]
    fn satmul_saturates() {
        let set = dsp16();
        assert_eq!(exec1(&set, "satmul", 100, 128), 100); // (100·128)>>7
        assert_eq!(exec1(&set, "satmul", 0xffff, 0xffff), 0xffff); // saturates
        assert_eq!(exec1(&set, "vshl", 1, 5), 32);
        assert_eq!(exec1(&set, "vshr", 32, 5), 1);
    }

    #[test]
    fn csa_multiplier_multiplies() {
        let set = csa_mult();
        let mstep = set.by_name("mstep").unwrap();
        let mres = set.by_name("mres").unwrap();
        let (a, b) = (0xbeefu32, 0x1234u32);
        let mut state = set.initial_state();
        for i in 0..16 {
            let bit = (b >> i) & 1;
            mstep.execute(a << i, bit, 0, &mut state).unwrap();
        }
        let out = mres.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap();
        assert_eq!(out as u32, a.wrapping_mul(b));
    }

    #[test]
    fn tmul_halves() {
        let set = tmul16();
        let (a, b) = (0xabcdu32, 0x4321u32);
        let p = u64::from(a) * u64::from(b);
        assert_eq!(exec1(&set, "tmullo", a, b), p & 0xffff);
        assert_eq!(exec1(&set, "tmulhi", a, b), (p >> 16) & 0xffff);
    }

    #[test]
    fn wide64_parity() {
        let set = wide64();
        let wacc = set.by_name("wacc").unwrap();
        let wpar = set.by_name("wpar").unwrap();
        let mut state = set.initial_state();
        wacc.execute(0b101, 0, 0, &mut state).unwrap();
        // w = 0b101 | 0b101<<32: 4 ones → even parity.
        assert_eq!(wpar.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap(), 0);
        wacc.execute(1, 0, 0, &mut state).unwrap();
        // toggles two bits → still even.
        assert_eq!(wpar.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap(), 0);
        state[0] ^= 1;
        assert_eq!(wpar.execute(0, 0, 0, &mut state).unwrap().gpr.unwrap(), 1);
    }

    #[test]
    fn add4x8_is_lanewise() {
        let set = simd4();
        let a = 0xff_01_80_7f;
        let b = 0x01_02_80_01;
        let expected = u32::from_le_bytes([
            0x7fu8.wrapping_add(0x01),
            0x80u8.wrapping_add(0x80),
            0x01u8.wrapping_add(0x02),
            0xffu8.wrapping_add(0x01),
        ]);
        assert_eq!(exec1(&set, "add4x8", a, b) as u32, expected);
    }

    #[test]
    fn sortpair_orders() {
        let set = sortpair();
        let cmpx = set.by_name("cmpx").unwrap();
        let rdmin = set.by_name("rdmin").unwrap();
        let mut state = set.initial_state();
        let out = cmpx.execute(10, 42, 0, &mut state).unwrap();
        assert_eq!(out.gpr, Some(42));
        assert_eq!(rdmin.execute(0, 0, 0, &mut state).unwrap().gpr, Some(10));
        let out = cmpx.execute(42, 10, 0, &mut state).unwrap();
        assert_eq!(out.gpr, Some(42));
        assert_eq!(rdmin.execute(0, 0, 0, &mut state).unwrap().gpr, Some(10));
    }

    #[test]
    fn blend_interpolates() {
        let set = blend8();
        let setalpha = set.by_name("setalpha").unwrap();
        let blend = set.by_name("blend").unwrap();
        let mut state = set.initial_state();
        setalpha.execute(255, 0, 0, &mut state).unwrap();
        let out = blend.execute(200, 10, 0, &mut state).unwrap().gpr.unwrap();
        assert_eq!(out, (200 * 255) >> 8); // α=255 → (almost) all a
        setalpha.execute(0, 0, 0, &mut state).unwrap();
        let out = blend.execute(200, 10, 0, &mut state).unwrap().gpr.unwrap();
        assert_eq!(out, (10 * 255) >> 8);
        setalpha.execute(128, 0, 0, &mut state).unwrap();
        let out = blend.execute(100, 50, 0, &mut state).unwrap().gpr.unwrap();
        assert_eq!(out, (100 * 128 + 50 * 127) >> 8);
    }

    #[test]
    fn dsbox_substitutes() {
        let set = sbox12();
        let x = 0b101010_010101u32;
        let expected = des_sbox(0, 0b010101) | (des_sbox(1, 0b101010) << 4);
        assert_eq!(exec1(&set, "dsbox", x, 0), expected);
    }

    #[test]
    fn absdiff_and_sgnsel() {
        let set = line_ext();
        assert_eq!(exec1(&set, "absdiff", 10, 3), 7);
        assert_eq!(exec1(&set, "absdiff", 3, 10), 7);
        assert_eq!(exec1(&set, "sgnsel", 1, 5), 1);
        assert_eq!(exec1(&set, "sgnsel", 5, 1) as u32, u32::MAX);
    }

    #[test]
    fn mac2_dual_lanes() {
        let set = mac16x2();
        let mac2 = set.by_name("mac2").unwrap();
        let mut state = set.initial_state();
        // a = [hi=3, lo=10], b = [hi=7, lo=20]
        mac2.execute((3 << 16) | 10, (7 << 16) | 20, 0, &mut state)
            .unwrap();
        mac2.execute((1 << 16) | 2, (1 << 16) | 3, 0, &mut state)
            .unwrap();
        assert_eq!(state[0], 10 * 20 + 2 * 3);
        assert_eq!(state[1], 3 * 7 + 1);
    }

    #[test]
    fn library_covers_all_ten_categories() {
        let sets = [
            mac16(),
            mac16x2(),
            gf16(),
            gf16_mac(),
            rs_wide(),
            dsp16(),
            csa_mult(),
            tmul16(),
            wide64(),
            simd4(),
            sortpair(),
            blend8(),
            sbox12(),
            absdiff_ext(),
            line_ext(),
        ];
        let mut covered = [false; 10];
        for set in &sets {
            for inst in set {
                for (i, &r) in inst.resource_vector().iter().enumerate() {
                    if r > 0.0 {
                        covered[i] = true;
                    }
                }
            }
        }
        for (i, c) in covered.iter().enumerate() {
            assert!(c, "category {:?} not covered", Category::ALL[i]);
        }
    }
}
