use std::error::Error;
use std::fmt;

use emx_isa::asm::Assembler;
use emx_isa::Program;
use emx_sim::CoreState;
use emx_tie::ExtensionSet;

/// A memory word the workload is expected to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCheck {
    /// Byte address of the 32-bit word.
    pub addr: u32,
    /// Expected little-endian value.
    pub expected: u32,
}

/// A workload's functional verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    workload: String,
    addr: u32,
    expected: u32,
    got: u32,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload `{}`: memory at 0x{:06x} is 0x{:08x}, expected 0x{:08x}",
            self.workload, self.addr, self.got, self.expected
        )
    }
}

impl Error for VerifyError {}

/// A benchmark: an assembled program, the extension set of the processor
/// it targets, and the memory contents it must produce.
#[derive(Debug, Clone)]
pub struct Workload {
    name: String,
    description: String,
    program: Program,
    ext: ExtensionSet,
    checks: Vec<MemCheck>,
}

impl Workload {
    /// Assembles a workload from source, registering the extension set's
    /// mnemonics first.
    ///
    /// # Panics
    ///
    /// Panics if the source does not assemble — workload sources are part
    /// of this crate, so a failure is a bug, not an input error.
    pub fn assemble(
        name: impl Into<String>,
        description: impl Into<String>,
        ext: ExtensionSet,
        source: &str,
        checks: Vec<MemCheck>,
    ) -> Self {
        let name = name.into();
        match Self::try_assemble(name.clone(), description, ext, source, checks) {
            Ok(w) => w,
            Err(e) => panic!("workload `{name}` failed to assemble: {e}"),
        }
    }

    /// Fallible variant of [`Workload::assemble`] for sources that are
    /// *not* part of this crate — e.g. inline programs arriving over a
    /// service boundary, where a syntax error is an input error the
    /// caller must report, never a panic.
    ///
    /// # Errors
    ///
    /// Returns the [`emx_isa::asm::AsmError`] pinpointing the offending
    /// source line.
    pub fn try_assemble(
        name: impl Into<String>,
        description: impl Into<String>,
        ext: ExtensionSet,
        source: &str,
        checks: Vec<MemCheck>,
    ) -> Result<Self, emx_isa::asm::AsmError> {
        let mut asm = Assembler::new();
        ext.register_mnemonics(&mut asm);
        let program = asm.assemble(source)?;
        Ok(Workload {
            name: name.into(),
            description: description.into(),
            program,
            ext,
            checks,
        })
    }

    /// Builds a workload from an already-assembled program.
    ///
    /// This is the constructor for *derived* workloads — programs built
    /// by rewriting another workload's text (e.g. `emx-discover`
    /// replacing mined patterns with custom-instruction slots) rather
    /// than by assembling source. The caller is responsible for the
    /// program's slot ids resolving against `ext`.
    pub fn from_parts(
        name: impl Into<String>,
        description: impl Into<String>,
        program: Program,
        ext: ExtensionSet,
        checks: Vec<MemCheck>,
    ) -> Self {
        Workload {
            name: name.into(),
            description: description.into(),
            program,
            ext,
            checks,
        }
    }

    /// The workload's name (as it appears in the paper's tables/figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The extension set the program targets.
    pub fn ext(&self) -> &ExtensionSet {
        &self.ext
    }

    /// The expected memory results.
    pub fn checks(&self) -> &[MemCheck] {
        &self.checks
    }

    /// Verifies the workload's results against a halted simulator state.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] naming the first mismatching word.
    pub fn verify(&self, state: &CoreState) -> Result<(), VerifyError> {
        for check in &self.checks {
            let got = state.mem.read_u32(check.addr);
            if got != check.expected {
                return Err(VerifyError {
                    workload: self.name.clone(),
                    addr: check.addr,
                    expected: check.expected,
                    got,
                });
            }
        }
        Ok(())
    }
}

/// Formats a `u32` slice as `.word` directives, 8 per line.
pub(crate) fn words_directive(values: &[u32]) -> String {
    let mut out = String::new();
    for chunk in values.chunks(8) {
        out.push_str(".word ");
        let items: Vec<String> = chunk.iter().map(|v| format!("0x{v:x}")).collect();
        out.push_str(&items.join(", "));
        out.push('\n');
    }
    out
}

/// Deterministic 32-bit LCG used to generate reproducible workload data
/// without threading a RNG through every constructor.
pub(crate) fn lcg_stream(seed: u32, n: usize) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            x
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn assemble_and_verify() {
        let w = Workload::assemble(
            "store42",
            "stores 42",
            ExtensionSet::empty(),
            ".data\nout: .space 4\n.text\nmovi a2, out\nmovi a3, 42\ns32i a3, 0(a2)\nhalt",
            vec![MemCheck {
                addr: emx_isa::program::layout::DATA_BASE,
                expected: 42,
            }],
        );
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        sim.run(10_000).unwrap();
        w.verify(sim.state()).unwrap();
    }

    #[test]
    fn verify_reports_mismatch() {
        let w = Workload::assemble(
            "wrong",
            "",
            ExtensionSet::empty(),
            "halt",
            vec![MemCheck {
                addr: 0x40000,
                expected: 7,
            }],
        );
        let sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let err = w.verify(sim.state()).unwrap_err();
        assert_eq!(err.expected, 7);
        assert_eq!(err.got, 0);
        assert!(err.to_string().contains("wrong"));
    }

    #[test]
    fn try_assemble_reports_bad_source_instead_of_panicking() {
        let err = Workload::try_assemble(
            "bogus",
            "",
            ExtensionSet::empty(),
            "not_an_instruction a2, a3",
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("not_an_instruction"));
    }

    #[test]
    fn lcg_is_deterministic() {
        assert_eq!(lcg_stream(1, 4), lcg_stream(1, 4));
        assert_ne!(lcg_stream(1, 4), lcg_stream(2, 4));
    }

    #[test]
    fn words_directive_formats() {
        let s = words_directive(&[1, 2, 3]);
        assert_eq!(s, ".word 0x1, 0x2, 0x3\n");
    }
}
