//! Reed–Solomon RS(15,11) over GF(2⁴) with **four custom-instruction
//! choices** — the design-space exploration study of Fig. 4 of the paper
//! ("a single application … with four different custom instruction
//! choices").
//!
//! The application encodes messages with a systematic LFSR encoder,
//! injects a (known) single symbol error, computes the four syndromes and
//! corrects the error. The four processor configurations move
//! progressively more of the GF arithmetic into custom hardware:
//!
//! | config | extension | what is custom |
//! |--------|-----------|----------------|
//! | `rs0` | none        | everything in software (log/antilog tables in memory, `call`-based GF multiply) |
//! | `rs1` | `gf16`      | single-cycle `gfmul` |
//! | `rs2` | `gf16mac`   | `gfmul` + accumulating `gfmac` for the syndrome loops |
//! | `rs3` | `rsfull`    | `gfmul` + a four-way parallel `synstep` syndrome unit |
//!
//! Each configuration is functionally identical — all four produce the
//! same corrected codewords, checked against the Rust reference — so the
//! energy differences measured across them are purely architectural,
//! which is exactly what the relative-accuracy study needs.

use emx_isa::program::layout::DATA_BASE;

use crate::workload::words_directive;
use crate::{exts, gf, MemCheck, Workload};

/// Codeword length (symbols).
pub const N: usize = 15;
/// Message length (symbols).
pub const K: usize = 11;
/// Number of parity symbols / syndromes.
pub const PARITY: usize = N - K;

/// Number of messages processed per run.
const MESSAGES: usize = 4;
/// Outer repetitions (the whole codec pipeline is idempotent).
const REPEATS: u32 = 6;

/// Injected single errors per message: `(power-of-x position, magnitude)`;
/// position 255 means "no error".
const ERRORS: [(u32, u32); MESSAGES] = [(3, 5), (14, 9), (0, 1), (255, 0)];

/// Generator polynomial coefficients `g0..g3` of
/// `g(x) = Π_{i=0..3} (x − αⁱ)` (monic; the x⁴ coefficient is 1).
pub fn generator() -> [u8; PARITY] {
    // Multiply out (x − α⁰)(x − α¹)(x − α²)(x − α³); subtraction is xor.
    let mut g = vec![1u8]; // 1 (constant polynomial), ascending powers
    for i in 0..PARITY {
        let root = gf::exp(i);
        // g(x) ← g(x)·(x + root)
        let mut next = vec![0u8; g.len() + 1];
        for (j, &c) in g.iter().enumerate() {
            next[j + 1] ^= c; // ·x
            next[j] ^= gf::mul(c, root);
        }
        g = next;
    }
    debug_assert_eq!(g[PARITY], 1);
    [g[0], g[1], g[2], g[3]]
}

/// Systematic LFSR encoder. `msg` is in transmit order (`m[0]` is the
/// highest-power symbol `c_14`); returns the full codeword `c_14..c_0`.
pub fn encode(msg: &[u8; K]) -> [u8; N] {
    let g = generator();
    let mut reg = [0u8; PARITY]; // reg[k] holds the x^k coefficient
    for &m in msg {
        let fb = m ^ reg[PARITY - 1];
        reg[3] = reg[2] ^ gf::mul(fb, g[3]);
        reg[2] = reg[1] ^ gf::mul(fb, g[2]);
        reg[1] = reg[0] ^ gf::mul(fb, g[1]);
        reg[0] = gf::mul(fb, g[0]);
    }
    let mut cw = [0u8; N];
    cw[..K].copy_from_slice(msg);
    for k in 0..PARITY {
        cw[K + k] = reg[PARITY - 1 - k];
    }
    cw
}

/// Computes the four syndromes `S_i = c(αⁱ)` of a received word (transmit
/// order).
pub fn syndromes(cw: &[u8; N]) -> [u8; PARITY] {
    let mut s = [0u8; PARITY];
    for (i, si) in s.iter_mut().enumerate() {
        for &c in cw {
            *si = gf::mul(*si, gf::exp(i)) ^ c;
        }
    }
    s
}

/// Corrects at most one symbol error in place; returns the corrected
/// position (power of x) if a correction was applied.
pub fn correct_single(cw: &mut [u8; N]) -> Option<usize> {
    let s = syndromes(cw);
    if s.iter().all(|&v| v == 0) {
        return None;
    }
    let p = (gf::log(s[1]) + gf::ORDER - gf::log(s[0])) % gf::ORDER;
    cw[N - 1 - p] ^= s[0];
    Some(p)
}

/// The four custom-instruction choices for the codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsConfig {
    /// Base processor only (software GF arithmetic).
    Rs0,
    /// `gfmul` custom instruction.
    Rs1,
    /// `gfmul` + `gfmac` custom instructions.
    Rs2,
    /// `gfmul` + the parallel `synstep` syndrome unit.
    Rs3,
}

impl RsConfig {
    /// All four configurations, in Fig. 4 order.
    pub const ALL: [RsConfig; 4] = [RsConfig::Rs0, RsConfig::Rs1, RsConfig::Rs2, RsConfig::Rs3];

    /// Short name (`rs0`..`rs3`).
    pub fn name(self) -> &'static str {
        match self {
            RsConfig::Rs0 => "rs0",
            RsConfig::Rs1 => "rs1",
            RsConfig::Rs2 => "rs2",
            RsConfig::Rs3 => "rs3",
        }
    }

    fn ext(self) -> emx_tie::ExtensionSet {
        match self {
            RsConfig::Rs0 => emx_tie::ExtensionSet::empty(),
            RsConfig::Rs1 => exts::gf16(),
            RsConfig::Rs2 => exts::gf16_mac(),
            RsConfig::Rs3 => exts::rs_full(),
        }
    }

    /// Builds the codec workload for this configuration.
    pub fn workload(self) -> Workload {
        build_workload(self)
    }
}

/// All four codec workloads (`rs0`..`rs3`).
pub fn all_configs() -> Vec<Workload> {
    RsConfig::ALL.iter().map(|c| c.workload()).collect()
}

/// Deterministic test messages.
fn messages() -> Vec<[u8; K]> {
    let raw = crate::workload::lcg_stream(801, MESSAGES * K);
    (0..MESSAGES)
        .map(|m| {
            let mut msg = [0u8; K];
            for (j, slot) in msg.iter_mut().enumerate() {
                *slot = (raw[m * K + j] & 0xf) as u8;
            }
            msg
        })
        .collect()
}

/// Emits a GF-multiply of `x_reg` by constant `c`, result in `a14`.
/// Clobbers `a12`, `a13` (and `a15` in the software configuration).
fn mul_const(cfg: RsConfig, x_reg: &str, c: u8) -> String {
    match cfg {
        RsConfig::Rs0 => {
            format!("mov a12, {x_reg}\nmovi a13, {c}\ncall gfmul_sw\n")
        }
        _ => format!("movi a13, {c}\ngfmul a14, {x_reg}, a13\n"),
    }
}

/// Emits the syndrome phase: leaves `S0..S3` in `a6..a9`.
fn syndrome_phase(cfg: RsConfig) -> String {
    match cfg {
        RsConfig::Rs0 | RsConfig::Rs1 => {
            // One software Horner loop per syndrome.
            let mut out = String::new();
            for (i, sreg) in ["a6", "a7", "a8", "a9"].iter().enumerate() {
                let alpha_i = gf::exp(i);
                out.push_str(&format!(
                    "movi {sreg}, 0\nmovi a10, cw\nmovi a11, {N}\nsyn{i}:\n{mul}\
                     l32i a13, 0(a10)\nxor {sreg}, a14, a13\n\
                     addi a10, a10, 4\naddi a11, a11, -1\nbnez a11, syn{i}\n",
                    mul = mul_const(cfg, sreg, alpha_i),
                ));
            }
            out
        }
        RsConfig::Rs2 => {
            // gfmac accumulation, scanning from c_0 upward with a running
            // power of αⁱ.
            let mut out = String::new();
            for (i, sreg) in ["a6", "a7", "a8", "a9"].iter().enumerate() {
                let alpha_i = gf::exp(i);
                out.push_str(&format!(
                    "clrgacc\nmovi a10, cw\naddi a10, a10, {last}\nmovi a11, {N}\n\
                     movi a12, 1\nmovi a13, {alpha_i}\nsyn{i}:\n\
                     l32i a14, 0(a10)\ngfmac a14, a12\ngfmul a12, a12, a13\n\
                     addi a10, a10, -4\naddi a11, a11, -1\nbnez a11, syn{i}\n\
                     rdgacc {sreg}\n",
                    last = 4 * (N - 1),
                ));
            }
            out
        }
        RsConfig::Rs3 => {
            // One pass through the parallel syndrome unit.
            format!(
                "clrsyn\nmovi a10, cw\nmovi a11, {N}\nsynl:\n\
                 l32i a12, 0(a10)\nsynstep a12\n\
                 addi a10, a10, 4\naddi a11, a11, -1\nbnez a11, synl\n\
                 rdsyn a10\nextui a6, a10, 0, 4\nextui a7, a10, 4, 4\n\
                 extui a8, a10, 8, 4\nextui a9, a10, 12, 4\n"
            )
        }
    }
}

fn build_workload(cfg: RsConfig) -> Workload {
    let g = generator();
    let msgs = messages();

    // ---- Rust reference: expected corrected codewords -----------------------
    let mut expected_words: Vec<u32> = Vec::new();
    for (m, msg) in msgs.iter().enumerate() {
        let clean = encode(msg);
        let mut received = clean;
        let (pos, mag) = ERRORS[m];
        if pos != 255 {
            received[N - 1 - pos as usize] ^= mag as u8;
        }
        correct_single(&mut received);
        assert_eq!(received, clean, "reference decoder failed");
        expected_words.extend(received.iter().map(|&s| u32::from(s)));
    }
    let checks: Vec<MemCheck> = expected_words
        .iter()
        .enumerate()
        .map(|(i, &v)| MemCheck {
            addr: DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();

    // ---- data segment ---------------------------------------------------------
    let msg_words: Vec<u32> = msgs
        .iter()
        .flat_map(|m| m.iter().map(|&s| u32::from(s)))
        .collect();
    let err_words: Vec<u32> = ERRORS.iter().flat_map(|&(p, m)| [p, m]).collect();
    let log_bytes: Vec<String> = gf::log_table().iter().map(|v| v.to_string()).collect();
    let exp_bytes: Vec<String> = gf::exp_table().iter().map(|v| v.to_string()).collect();

    // ---- per-message phases -----------------------------------------------------
    // Register plan: a2 message countdown, a5 outer repeat countdown,
    // a3/a4/a10/a11 phase-local pointers/counters, a6..a9 LFSR registers /
    // syndromes, a12..a15 GF-multiply scratch.
    let recompute_idx_into_a3 = format!("movi a3, {MESSAGES}\nsub a3, a3, a2\n");

    let encode_phase = format!(
        "{idx}movi a4, {msg_stride}\nmul a3, a3, a4\nmovi a4, msgs\nadd a3, a3, a4\n\
         movi a6, 0\nmovi a7, 0\nmovi a8, 0\nmovi a9, 0\nmovi a10, {K}\n\
         encl:\nl32i a11, 0(a3)\nxor a11, a11, a9\n\
         {m3}xor a9, a8, a14\n\
         {m2}xor a8, a7, a14\n\
         {m1}xor a7, a6, a14\n\
         {m0}mov a6, a14\n\
         addi a3, a3, 4\naddi a10, a10, -1\nbnez a10, encl\n",
        idx = recompute_idx_into_a3,
        msg_stride = 4 * K,
        m3 = mul_const(cfg, "a11", g[3]),
        m2 = mul_const(cfg, "a11", g[2]),
        m1 = mul_const(cfg, "a11", g[1]),
        m0 = mul_const(cfg, "a11", g[0]),
    );

    let copy_to_cw = format!(
        "{idx}movi a4, {msg_stride}\nmul a3, a3, a4\nmovi a4, msgs\nadd a3, a3, a4\n\
         movi a4, cw\nmovi a10, {K}\n\
         cpl:\nl32i a11, 0(a3)\ns32i a11, 0(a4)\naddi a3, a3, 4\naddi a4, a4, 4\n\
         addi a10, a10, -1\nbnez a10, cpl\n\
         s32i a9, 0(a4)\ns32i a8, 4(a4)\ns32i a7, 8(a4)\ns32i a6, 12(a4)\n",
        idx = recompute_idx_into_a3,
        msg_stride = 4 * K,
    );

    let inject_error = format!(
        "{idx}slli a3, a3, 3\nmovi a4, errs\nadd a3, a3, a4\n\
         l32i a10, 0(a3)\nl32i a11, 4(a3)\n\
         beqi a10, 255, noerr\n\
         movi a4, {nm1}\nsub a4, a4, a10\nslli a4, a4, 2\nmovi a14, cw\nadd a4, a4, a14\n\
         l32i a14, 0(a4)\nxor a14, a14, a11\ns32i a14, 0(a4)\n\
         noerr:\n",
        idx = recompute_idx_into_a3,
        nm1 = N - 1,
    );

    let correction_phase = format!(
        "or a10, a6, a7\nor a10, a10, a8\nor a10, a10, a9\nbeqz a10, storecw\n\
         movi a10, logt\nadd a11, a10, a7\nl8ui a11, 0(a11)\n\
         add a10, a10, a6\nl8ui a10, 0(a10)\n\
         sub a11, a11, a10\nbgez a11, posok\naddi a11, a11, 15\nposok:\n\
         movi a10, {nm1}\nsub a10, a10, a11\nslli a10, a10, 2\nmovi a11, cw\nadd a10, a10, a11\n\
         l32i a11, 0(a10)\nxor a11, a11, a6\ns32i a11, 0(a10)\n\
         storecw:\n",
        nm1 = N - 1,
    );

    let copy_out = format!(
        "{idx}movi a4, {out_stride}\nmul a3, a3, a4\nmovi a4, out\nadd a4, a4, a3\n\
         movi a3, cw\nmovi a10, {N}\n\
         outl:\nl32i a11, 0(a3)\ns32i a11, 0(a4)\naddi a3, a3, 4\naddi a4, a4, 4\n\
         addi a10, a10, -1\nbnez a10, outl\n",
        idx = recompute_idx_into_a3,
        out_stride = 4 * N,
    );

    let gfmul_subroutine = if cfg == RsConfig::Rs0 {
        "gfmul_sw:\nmovi a14, 0\nbeqz a12, gfret\nbeqz a13, gfret\n\
         movi a14, logt\nadd a15, a14, a12\nl8ui a15, 0(a15)\n\
         add a14, a14, a13\nl8ui a14, 0(a14)\nadd a15, a15, a14\n\
         movi a14, expt\nadd a14, a14, a15\nl8ui a14, 0(a14)\ngfret:\nret\n"
            .to_owned()
    } else {
        String::new()
    };

    let source = format!(
        ".data\nout: .space {out_size}\nmsgs: {msgs_words}errs: {errs_words}\
         logt: .byte {log_bytes}\nexpt: .byte {exp_bytes}\ncw: .space {cw_size}\n.text\n\
         movi a5, {REPEATS}\n\
         repeat:\nmovi a2, {MESSAGES}\n\
         message:\n\
         {encode_phase}{copy_to_cw}{inject_error}{syndrome_phase}{correction_phase}{copy_out}\
         addi a2, a2, -1\nbnez a2, message\n\
         addi a5, a5, -1\nbnez a5, repeat\n\
         halt\n\
         {gfmul_subroutine}",
        out_size = 4 * N * MESSAGES,
        msgs_words = words_directive(&msg_words),
        errs_words = words_directive(&err_words),
        log_bytes = log_bytes.join(", "),
        exp_bytes = exp_bytes.join(", "),
        cw_size = 4 * N,
        syndrome_phase = syndrome_phase(cfg),
    );

    Workload::assemble(
        format!("reed_solomon_{}", cfg.name()),
        format!(
            "RS(15,11) encode + single-error decode, custom-instruction choice {}",
            cfg.name()
        ),
        cfg.ext(),
        &source,
        checks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn generator_has_the_four_roots() {
        let g = generator();
        for i in 0..PARITY {
            // Evaluate x⁴ + g3x³ + g2x² + g1x + g0 at αⁱ.
            let x = gf::exp(i);
            let x2 = gf::mul(x, x);
            let x3 = gf::mul(x2, x);
            let x4 = gf::mul(x2, x2);
            let v = x4 ^ gf::mul(g[3], x3) ^ gf::mul(g[2], x2) ^ gf::mul(g[1], x) ^ g[0];
            assert_eq!(v, 0, "α^{i} is not a root");
        }
    }

    #[test]
    fn clean_codewords_have_zero_syndromes() {
        for msg in messages() {
            let cw = encode(&msg);
            assert_eq!(syndromes(&cw), [0; PARITY]);
        }
    }

    #[test]
    fn single_errors_are_corrected_at_every_position() {
        let msg = messages()[0];
        let clean = encode(&msg);
        for pos in 0..N {
            for mag in 1..16u8 {
                let mut cw = clean;
                cw[N - 1 - pos] ^= mag;
                let fixed = correct_single(&mut cw);
                assert_eq!(fixed, Some(pos));
                assert_eq!(cw, clean, "pos {pos} mag {mag}");
            }
        }
    }

    #[test]
    fn all_four_configs_decode_correctly() {
        for cfg in RsConfig::ALL {
            let w = cfg.workload();
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let run = sim
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(run.halted);
            w.verify(sim.state()).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn custom_configs_execute_fewer_cycles() {
        // Moving GF arithmetic into hardware must shorten execution:
        // rs0 > rs1 > rs2? (rs2 restructures the loop, so only require
        // rs1 and rs3 to beat rs0, and rs3 to be the fastest.)
        let mut cycles = Vec::new();
        for cfg in RsConfig::ALL {
            let w = cfg.workload();
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            cycles.push(sim.run(50_000_000).unwrap().stats.total_cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "rs1 {} !< rs0 {}",
            cycles[1],
            cycles[0]
        );
        assert!(
            cycles[3] < cycles[1],
            "rs3 {} !< rs1 {}",
            cycles[3],
            cycles[1]
        );
        assert!(
            cycles[3] < cycles[2],
            "rs3 {} !< rs2 {}",
            cycles[3],
            cycles[2]
        );
    }
}
