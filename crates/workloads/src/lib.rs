//! Test programs and application benchmarks for the emx energy-estimation
//! flow.
//!
//! The paper's experimental setup uses "Tensilica benchmarks written in C,
//! while custom instructions are written in TIE". This crate provides the
//! equivalent corpus, written directly in emx assembly:
//!
//! * [`suite::characterization_suite`] — the **25 test programs** used to
//!   build the macro-model (the x-axis of Fig. 3). The suite is designed
//!   for what regression macro-modeling needs: *diversity* in instruction
//!   statistics covering every base-ISA class, every non-ideal event
//!   (cache misses, uncached fetches, interlocks) and every custom
//!   hardware library category at several bit-widths.
//! * [`apps`] — the **ten applications of Table II** (`ins_sort`, `gcd`,
//!   `alphablend`, `add4`, `bubsort`, `des`, `accumulate`, `drawline`,
//!   `multi_accumulate`, `seq_mult`), each incorporating its own custom
//!   instructions, each self-checking against a Rust reference
//!   implementation.
//! * [`reed_solomon`] — a GF(2⁴) RS(15,11) encoder/decoder with **four
//!   custom-instruction choices** (`rs0`..`rs3`), the design-space
//!   exploration study of Fig. 4.
//! * [`exts`] — the extension-set (TIE) definitions shared by the corpus.
//!
//! Every workload carries memory checks so that functional correctness is
//! verified, not assumed: energy numbers from a broken codec would be
//! meaningless.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use emx_sim::{Interp, ProcConfig};
//!
//! let w = emx_workloads::apps::gcd();
//! let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
//! sim.run(10_000_000)?;
//! w.verify(sim.state())?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod directed;
pub mod exts;
pub mod gf;
pub mod reed_solomon;
pub mod registry;
pub mod suite;
mod workload;

pub use workload::{MemCheck, VerifyError, Workload};
