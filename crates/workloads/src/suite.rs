//! The 25-program characterization suite (the test programs of Fig. 3).
//!
//! Regression macro-modeling "only requires that the test programs have
//! diversity in their instruction statistics so as to cover the
//! instruction space" — plus, for an extensible processor, coverage of
//! "all the custom hardware library components". The suite therefore
//! spans:
//!
//! * every base-ISA class with several distinct mixes, including
//!   deliberately varied taken/untaken branch ratios (programs 1–10),
//! * every non-ideal event: I/D-cache misses at different rates, uncached
//!   fetches, and load-use/multiplier/custom interlocks,
//! * every hardware-library category, with *varying ratios between
//!   categories* across programs 11–25 so each structural coefficient is
//!   identifiable (two programs per extension where a single usage ratio
//!   would leave columns collinear),
//! * the same extension units the evaluation applications use (sorting,
//!   SAD, blending, S-box substitution) exercised by *different kernels*,
//!   so application estimation interpolates rather than extrapolates the
//!   fitted coefficient space — exactly the situation of the paper, whose
//!   test programs and applications draw on one hardware library.

use crate::workload::{lcg_stream, words_directive};
use crate::{exts, Workload};
use emx_tie::ExtensionSet;

/// LCG scrambling preamble + one update line, shared by data-driven loops.
const LCG_SETUP: &str = "movi a10, 1664525\nmovi a11, 1013904223\n";
const LCG_STEP: &str = "mul a3, a3, a10\nadd a3, a3, a11\n";

fn base(name: &str, description: &str, source: &str) -> Workload {
    Workload::assemble(name, description, ExtensionSet::empty(), source, vec![])
}

fn base_checked(
    name: &str,
    description: &str,
    source: &str,
    checks: Vec<crate::MemCheck>,
) -> Workload {
    Workload::assemble(name, description, ExtensionSet::empty(), source, checks)
}

/// A small leaf routine appended to most programs and `call`ed from their
/// loops. It mixes a store, a load-use interlock, and a data-dependent
/// branch into every host program, so the jump/load/store/branch/interlock
/// variables get signal at naturally varying densities across the whole
/// suite instead of being identified from one specialized program each.
const SPICE_SUB: &str = "spice:\ns32i a5, -8(a1)\nl32i a15, -8(a1)\n\
add a15, a15, a5\nbgeui a15, 0x40000000, spice_x\nxor a14, a15, a5\nspice_x:\nret\n";

/// Appends the spice leaf to a program source.
fn spiced(src: &str) -> String {
    format!("{src}\n{SPICE_SUB}")
}

fn p01_matmul() -> Workload {
    // 8x8 integer matrix multiply: loads, multiplies, adds and stores in
    // natural (compiled-code-like) proportions.
    let a = lcg_stream(31, 64)
        .iter()
        .map(|v| v & 0xff)
        .collect::<Vec<_>>();
    let b = lcg_stream(32, 64)
        .iter()
        .map(|v| v & 0xff)
        .collect::<Vec<_>>();
    let mut c = vec![0u32; 64];
    for i in 0..8 {
        for j in 0..8 {
            for k in 0..8 {
                c[i * 8 + j] = c[i * 8 + j].wrapping_add(a[i * 8 + k].wrapping_mul(b[k * 8 + j]));
            }
        }
    }
    let checks = c
        .iter()
        .enumerate()
        .map(|(i, &v)| crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();
    base_checked(
        "matmul",
        "8x8 integer matrix multiply",
        &format!(
            ".data\nmatc: .space 256\nmata: {}\nmatb: {}\n.text\n\
             movi a2, 0\niloop:\nmovi a3, 0\njloop:\nmovi a7, 0\nmovi a4, 0\n\
             kloop:\n\
             slli a8, a2, 3\nadd a8, a8, a4\nslli a8, a8, 2\nmovi a9, mata\nadd a8, a8, a9\nl32i a8, 0(a8)\n\
             slli a9, a4, 3\nadd a9, a9, a3\nslli a9, a9, 2\nmovi a12, matb\nadd a9, a9, a12\nl32i a9, 0(a9)\n\
             mul a8, a8, a9\nadd a7, a7, a8\n\
             addi a4, a4, 1\nblti a4, 8, kloop\n\
             slli a8, a2, 3\nadd a8, a8, a3\nslli a8, a8, 2\nmovi a9, matc\nadd a8, a8, a9\ns32i a7, 0(a8)\n\
             addi a3, a3, 1\nblti a3, 8, jloop\n\
             addi a2, a2, 1\nblti a2, 8, iloop\nhalt",
            words_directive(&a),
            words_directive(&b)
        ),
        checks,
    )
}

fn p02_crc32() -> Workload {
    // Bitwise CRC-32 over 128 bytes: shifter/xor heavy with a roughly
    // 50/50 taken/untaken data-dependent branch per bit.
    let data: Vec<u8> = lcg_stream(33, 128).iter().map(|v| *v as u8).collect();
    let mut crc = 0xffff_ffffu32;
    for &byte in &data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let bit = crc & 1;
            crc >>= 1;
            if bit != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    crc ^= 0xffff_ffff;
    let byte_list: Vec<String> = data.iter().map(|b| b.to_string()).collect();
    base_checked(
        "crc32",
        "bitwise CRC-32 over a byte buffer",
        &format!(
            ".data\nout: .space 4\nbytes: .byte {}\n.text\n\
             movi a2, 0xffffffff\nmovi a3, bytes\nmovi a4, 128\n\
             byteloop:\nl8ui a5, 0(a3)\nxor a2, a2, a5\nmovi a6, 8\n\
             bitloop:\nandi a7, a2, 1\nsrli a2, a2, 1\nbeqz a7, nobit\n\
             movi a8, 0xedb88320\nxor a2, a2, a8\nnobit:\n\
             addi a6, a6, -1\nbnez a6, bitloop\n\
             addi a3, a3, 1\naddi a4, a4, -1\nbnez a4, byteloop\n\
             movi a5, 0xffffffff\nxor a2, a2, a5\nmovi a3, out\ns32i a2, 0(a3)\nhalt",
            byte_list.join(", ")
        ),
        vec![crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE,
            expected: crc,
        }],
    )
}

fn p03_binsearch() -> Workload {
    // Binary search of 64 keys in a sorted 128-word array: data-dependent
    // branches and load-use interlocks, like real search code.
    let mut arr = lcg_stream(34, 128);
    arr.sort_unstable();
    let keys: Vec<u32> = lcg_stream(35, 64)
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if i % 2 == 0 {
                arr[(v % 128) as usize]
            } else {
                v
            }
        })
        .collect();
    let mut results = vec![0u32; 64];
    for (r, &key) in results.iter_mut().zip(&keys) {
        let (mut lo, mut hi) = (0i32, 127i32);
        *r = u32::MAX;
        while lo <= hi {
            let mid = (lo + hi) >> 1;
            let v = arr[mid as usize];
            if v == key {
                *r = mid as u32;
                break;
            } else if v < key {
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
    }
    let checks = results
        .iter()
        .enumerate()
        .map(|(i, &v)| crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();
    base_checked(
        "binsearch",
        "binary search of 64 keys in a sorted array",
        &format!(
            ".data\nout: .space 256\narr: {}\nkeys: {}\n.text\n\
             movi a2, 0\nkeyloop:\n\
             slli a3, a2, 2\nmovi a4, keys\nadd a3, a3, a4\nl32i a3, 0(a3)\n\
             movi a4, 0\nmovi a5, 127\nmovi a9, 0xffffffff\n\
             bs:\nblt a5, a4, done\n\
             add a6, a4, a5\nsrli a6, a6, 1\n\
             slli a7, a6, 2\nmovi a8, arr\nadd a7, a7, a8\nl32i a7, 0(a7)\n\
             beq a7, a3, found\nbltu a7, a3, golo\n\
             addi a5, a6, -1\nj bs\n\
             golo:\naddi a4, a6, 1\nj bs\n\
             found:\nmov a9, a6\n\
             done:\nslli a7, a2, 2\nmovi a8, out\nadd a7, a7, a8\ns32i a9, 0(a7)\n\
             addi a2, a2, 1\nblti a2, 64, keyloop\nhalt",
            words_directive(&arr),
            words_directive(&keys)
        ),
        checks,
    )
}

fn p04_histogram() -> Workload {
    // Byte histogram into 16 bins: read-modify-write with a load-use
    // interlock per element.
    let data: Vec<u8> = lcg_stream(36, 256).iter().map(|v| *v as u8).collect();
    let mut bins = [0u32; 16];
    for &b in &data {
        bins[(b & 15) as usize] += 1;
    }
    let checks = bins
        .iter()
        .enumerate()
        .map(|(i, &v)| crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();
    let byte_list: Vec<String> = data.iter().map(|b| b.to_string()).collect();
    base_checked(
        "histogram",
        "low-nibble byte histogram",
        &format!(
            ".data\nout: .space 64\nbytes: .byte {}\n.text\n\
             movi a2, bytes\nmovi a3, 256\n\
             hl:\nl8ui a4, 0(a2)\nandi a4, a4, 15\nslli a4, a4, 2\n\
             movi a5, out\nadd a4, a4, a5\nl32i a6, 0(a4)\naddi a6, a6, 1\ns32i a6, 0(a4)\n\
             addi a2, a2, 1\naddi a3, a3, -1\nbnez a3, hl\nhalt",
            byte_list.join(", ")
        ),
        checks,
    )
}

fn p05_fib_rec() -> Workload {
    // Recursive Fibonacci with real stack frames: call/return and
    // stack-memory traffic dominate.
    fn fib(n: u32) -> u32 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    base_checked(
        "fib_rec",
        "recursive Fibonacci with stack frames",
        ".data\nout: .space 4\n.text\n\
         movi a2, 13\ncall fib\nmovi a4, out\ns32i a3, 0(a4)\nhalt\n\
         fib:\nblti a2, 2, fbase\n\
         addi a1, a1, -16\ns32i a0, 0(a1)\ns32i a2, 4(a1)\n\
         addi a2, a2, -1\ncall fib\n\
         l32i a2, 4(a1)\ns32i a3, 8(a1)\n\
         addi a2, a2, -2\ncall fib\n\
         l32i a2, 8(a1)\nadd a3, a3, a2\n\
         l32i a0, 0(a1)\naddi a1, a1, 16\nret\n\
         fbase:\nmov a3, a2\nret",
        vec![crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE,
            expected: fib(13),
        }],
    )
}

fn p06_strfind() -> Workload {
    // First-match substring search: byte loads and mostly-untaken
    // equality branches, like parser/string code.
    let mut hay: Vec<u8> = lcg_stream(37, 256).iter().map(|v| *v as u8).collect();
    let needles: [[u8; 4]; 4] = [
        [hay[40], hay[41], hay[42], hay[43]],
        [hay[200], hay[201], hay[202], hay[203]],
        [1, 2, 3, 4],
        [hay[97], hay[98], hay[99], hay[100]],
    ];
    // Make sure the artificial needle is absent from the haystack.
    if hay.windows(4).any(|w| w == [1, 2, 3, 4]) {
        hay[41] ^= 0x55;
    }
    let find = |hay: &[u8], n: &[u8; 4]| -> u32 {
        for i in 0..=(hay.len() - 4) {
            if &hay[i..i + 4] == n {
                return i as u32;
            }
        }
        u32::MAX
    };
    let needles_words: Vec<u32> = needles.iter().map(|n| u32::from_le_bytes(*n)).collect();
    let checks = needles
        .iter()
        .enumerate()
        .map(|(i, n)| crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 4 * i as u32,
            expected: find(&hay, n),
        })
        .collect();
    let byte_list: Vec<String> = hay.iter().map(|b| b.to_string()).collect();
    base_checked(
        "strfind",
        "four-byte substring search in a 256-byte haystack",
        &format!(
            ".data\nout: .space 16\nneedles: {}\nhay: .byte {}\n.text\n\
             movi a2, 0\nnloop:\n\
             slli a3, a2, 2\nmovi a4, needles\nadd a3, a3, a4\nl32i a3, 0(a3)\n\
             andi a4, a3, 0xff\nmovi a5, 0\nmovi a9, 0xffffffff\n\
             sloop:\nmovi a6, hay\nadd a6, a6, a5\nl8ui a7, 0(a6)\n\
             beq a7, a4, maybe\n\
             cont:\naddi a5, a5, 1\nblti a5, 253, sloop\nj store\n\
             maybe:\nextui a8, a3, 8, 8\nl8ui a7, 1(a6)\nbne a7, a8, cont\n\
             extui a8, a3, 16, 8\nl8ui a7, 2(a6)\nbne a7, a8, cont\n\
             extui a8, a3, 24, 8\nl8ui a7, 3(a6)\nbne a7, a8, cont\n\
             mov a9, a5\n\
             store:\nslli a6, a2, 2\nmovi a7, out\nadd a6, a6, a7\ns32i a9, 0(a6)\n\
             addi a2, a2, 1\nblti a2, 4, nloop\nhalt",
            words_directive(&needles_words),
            byte_list.join(", ")
        ),
        checks,
    )
}

fn p07_partition() -> Workload {
    // Repeated Lomuto partition passes: the data-movement and branching
    // pattern of quicksort, on the base ISA.
    let mut arr = lcg_stream(38, 64);
    let asm_data = words_directive(&arr);
    for rep in 0..8u32 {
        let pivot = arr[((rep * 7) & 63) as usize];
        let mut i = 0usize;
        for j in 0..64 {
            if arr[j] < pivot {
                arr.swap(i, j);
                i += 1;
            }
        }
    }
    let checks = arr
        .iter()
        .enumerate()
        .map(|(i, &v)| crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 4 * i as u32,
            expected: v,
        })
        .collect();
    base_checked(
        "partition",
        "eight quicksort partition passes",
        &format!(
            ".data\narr: {asm_data}\n.text\n\
             movi a2, 0\nrloop:\n\
             movi a3, 7\nmul a3, a3, a2\nandi a3, a3, 63\nslli a3, a3, 2\n\
             movi a4, arr\nadd a3, a3, a4\nl32i a3, 0(a3)\n\
             movi a5, 0\nmovi a6, 0\n\
             ploop:\nslli a7, a6, 2\nmovi a8, arr\nadd a7, a7, a8\nl32i a8, 0(a7)\n\
             bgeu a8, a3, noswap\n\
             slli a9, a5, 2\nmovi a12, arr\nadd a9, a9, a12\nl32i a12, 0(a9)\n\
             s32i a12, 0(a7)\ns32i a8, 0(a9)\naddi a5, a5, 1\n\
             noswap:\naddi a6, a6, 1\nblti a6, 64, ploop\n\
             addi a2, a2, 1\nblti a2, 8, rloop\nhalt"
        ),
        checks,
    )
}

fn p08_mem_stride() -> Workload {
    base(
        "mem_stride",
        "cache-hostile strided loads and stores (n_dcm heavy)",
        "movi a2, 6\nouter:\nmovi a3, 0x40000\nmovi a4, 400\nloop:\nl32i a5, 0(a3)\n\
         add a5, a5, a4\ns32i a5, 64(a3)\naddi a3, a3, 128\naddi a4, a4, -1\nbnez a4, loop\n\
         addi a2, a2, -1\nbnez a2, outer\nhalt",
    )
}

fn big_body(name: &str, description: &str, body: usize, iters: u32, seed: usize) -> Workload {
    let mut src = format!("movi a2, {iters}\nmovi a3, 7\nmovi a4, 13\nloop:\n");
    let lines = [
        "add a5, a3, a4\n",
        "xor a6, a5, a3\n",
        "addi a7, a7, 3\n",
        "slli a8, a3, 2\n",
        "sub a9, a8, a5\n",
    ];
    for i in 0..body {
        src.push_str(lines[(i + seed) % lines.len()]);
    }
    src.push_str("addi a2, a2, -1\nbnez a2, loop\nhalt\n");
    base(name, description, &src)
}

fn p09_icache_big() -> Workload {
    big_body(
        "icache_big",
        "loop body exceeding the 16 KB I-cache (n_icm)",
        5200,
        7,
        0,
    )
}

fn p10_uncached() -> Workload {
    base(
        "uncached",
        "xorshift checksum executing from the uncached region (n_ucf)",
        ".uncached\nmovi a2, 220\nmovi a3, 7\nul:\nslli a4, a3, 3\nxor a3, a3, a4\n\
         srli a4, a3, 5\nadd a3, a3, a4\naddi a2, a2, -1\nbnez a2, ul\nhalt",
    )
}

// --- custom-instruction programs (11–25) --------------------------------

fn p11_tie_mac_fir() -> Workload {
    let xs = lcg_stream(14, 64)
        .iter()
        .map(|v| v & 0xffff)
        .collect::<Vec<_>>();
    let hs = lcg_stream(15, 64)
        .iter()
        .map(|v| v & 0xffff)
        .collect::<Vec<_>>();
    let dot: u64 = xs
        .iter()
        .zip(&hs)
        .map(|(&x, &h)| u64::from(x) * u64::from(h))
        .sum::<u64>()
        & 0xffff_ffff;
    let repeats = 30u32;
    Workload::assemble(
        "tie_mac_fir",
        "dot product on the mac16 unit (TIE_mac heavy)",
        exts::mac16(),
        &spiced(&format!(
            ".data\nxs: {}\nhs: {}\nout: .space 4\n.text\n\
             movi a2, {repeats}\nouter:\nclracc\nmovi a3, xs\nmovi a4, hs\nmovi a5, 64\n\
             loop:\nl32i a6, 0(a3)\nl32i a7, 0(a4)\nmac a6, a7\naddi a3, a3, 4\n\
             addi a4, a4, 4\naddi a5, a5, -1\nbnez a5, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\n\
             rdacc a8\nmovi a9, out\ns32i a8, 0(a9)\nhalt",
            words_directive(&xs),
            words_directive(&hs),
        )),
        vec![crate::MemCheck {
            addr: emx_isa::program::layout::DATA_BASE + 64 * 4 * 2,
            expected: dot as u32,
        }],
    )
}

fn p12_tie_mac2() -> Workload {
    Workload::assemble(
        "tie_mac2",
        "dual-lane MAC on packed data with frequent reads (mac16x2)",
        exts::mac16x2(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 450\nclracc2\nmovi a3, 0x12345\nloop:\n{LCG_STEP}\
             mac2 a3, a3\nmac2 a3, a10\nrdacc0 a5\nrdacc1 a6\nadd a7, a5, a6\ncall spice\n\
             addi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p13_tie_gf_mul() -> Workload {
    Workload::assemble(
        "tie_gf_mul",
        "GF(16) multiplies without state (table + adder + logic)",
        exts::gf16(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 700\nmovi a3, 9\nloop:\n{LCG_STEP}\
             andi a5, a3, 15\nextui a6, a3, 4, 4\ngfmul a7, a5, a6\ngfmul a8, a7, a5\n\
             gfmul a9, a8, a6\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p14_tie_gf_mac() -> Workload {
    Workload::assemble(
        "tie_gf_mac",
        "GF(16) multiply–accumulate (adds custom-register traffic)",
        exts::gf16_mac(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 5\nclrgacc\nloop:\n{LCG_STEP}\
             andi a5, a3, 15\nextui a6, a3, 8, 4\ngfmac a5, a6\ngfmac a6, a5\ncall spice\n\
             addi a2, a2, -1\nbnez a2, loop\nrdgacc a7\nhalt"
        )),
        vec![],
    )
}

fn p15_tie_syn() -> Workload {
    let data = lcg_stream(19, 60)
        .iter()
        .map(|v| v & 0xf)
        .collect::<Vec<_>>();
    Workload::assemble(
        "tie_syn",
        "parallel syndrome accumulation (rswide)",
        exts::rs_wide(),
        &spiced(&format!(
            ".data\nsyms: {}\n.text\nmovi a2, 40\nouter:\nclrsyn\nmovi a3, syms\nmovi a4, 60\n\
             loop:\nl32i a5, 0(a3)\nsynstep a5\naddi a3, a3, 4\naddi a4, a4, -1\nbnez a4, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\nrdsyn a6\nhalt",
            words_directive(&data)
        )),
        vec![],
    )
}

fn p16_tie_dsp_mul() -> Workload {
    Workload::assemble(
        "tie_dsp_mul",
        "saturating fractional multiplies (custom multiplier heavy)",
        exts::dsp16(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 700\nmovi a3, 0x1234\nloop:\n{LCG_STEP}\
             extui a5, a3, 0, 16\nextui a6, a3, 12, 16\nsatmul a7, a5, a6\n\
             satmul a8, a7, a5\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p17_tie_dsp_shift() -> Workload {
    Workload::assemble(
        "tie_dsp_shift",
        "variable barrel shifts on the DSP unit (custom shifter heavy)",
        exts::dsp16(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 700\nmovi a3, 0xf00f\nloop:\n{LCG_STEP}\
             andi a5, a3, 31\nvshl a6, a3, a5\nvshr a7, a6, a5\nvshl a8, a7, a5\n\
             vshr a9, a8, a5\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p18_tie_csa() -> Workload {
    Workload::assemble(
        "tie_csa",
        "carry-save accumulation steps (TIE_csa heavy)",
        exts::csa_mult(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 500\nmclr\nmovi a3, 0x777\nloop:\n{LCG_STEP}\
             andi a5, a3, 1\nmstep a3, a5\nmstep a10, a5\nmstep a3, a5\ncall spice\n\
             addi a2, a2, -1\nbnez a2, loop\nmres a6\nhalt"
        )),
        vec![],
    )
}

fn p19_tie_csa_res() -> Workload {
    Workload::assemble(
        "tie_csa_res",
        "carry-save steps with frequent resolution (raises the TIE_add ratio)",
        exts::csa_mult(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 400\nmovi a3, 0x135\nloop:\n{LCG_STEP}\
             andi a5, a3, 1\nmclr\nmstep a3, a5\nmres a6\nmres a7\nmres a8\n\
             add a9, a6, a7\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p20_tie_tmul() -> Workload {
    Workload::assemble(
        "tie_tmul",
        "TIE_mult low/high products",
        exts::tmul16(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 0xbeef\nloop:\n{LCG_STEP}\
             extui a5, a3, 0, 16\nextui a6, a3, 16, 16\ntmullo a7, a5, a6\n\
             tmulhi a8, a5, a6\nadd a9, a7, a8\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p21_tie_simd() -> Workload {
    let xs = lcg_stream(25, 48);
    let ys = lcg_stream(26, 48);
    Workload::assemble(
        "tie_simd",
        "packed 4×8-bit SIMD adds over arrays",
        exts::simd4(),
        &spiced(&format!(
            ".data\nxs: {}\nys: {}\nout: .space 192\n.text\n\
             movi a2, 25\nouter:\nmovi a3, xs\nmovi a4, ys\nmovi a5, out\nmovi a6, 48\n\
             loop:\nl32i a7, 0(a3)\nl32i a8, 0(a4)\nadd4x8 a9, a7, a8\ns32i a9, 0(a5)\n\
             addi a3, a3, 4\naddi a4, a4, 4\naddi a5, a5, 4\naddi a6, a6, -1\nbnez a6, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\nhalt",
            words_directive(&xs),
            words_directive(&ys)
        )),
        vec![],
    )
}

fn p22_tie_sort() -> Workload {
    // Pairwise min/max reduction — a different kernel from the sorting
    // applications, on the same hardware.
    let xs = lcg_stream(27, 96);
    Workload::assemble(
        "tie_sort",
        "pairwise min/max reduction on the compare-and-order unit",
        exts::sortpair(),
        &spiced(&format!(
            ".data\nxs: {}\nmaxout: .space 4\nminout: .space 4\n.text\n\
             movi a2, 60\nouter:\nmovi a3, xs\nmovi a4, 48\nmovi a5, 0\nmovi a6, 0xffffffff\n\
             loop:\nl32i a7, 0(a3)\nl32i a8, 4(a3)\ncmpx a9, a7, a8\nrdmin a12\n\
             cmpx a5, a5, a9\ncmpx a13, a6, a12\nrdmin a6\n\
             addi a3, a3, 8\naddi a4, a4, -1\nbnez a4, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\n\
             movi a3, maxout\ns32i a5, 0(a3)\ns32i a6, 4(a3)\nhalt",
            words_directive(&xs)
        )),
        vec![],
    )
}

fn p23_tie_absdiff() -> Workload {
    // Sum of absolute differences — a motion-estimation-style kernel on
    // the same unit the gcd application uses.
    let xs = lcg_stream(28, 64)
        .iter()
        .map(|v| v & 0xffff)
        .collect::<Vec<_>>();
    let ys = lcg_stream(29, 64)
        .iter()
        .map(|v| v & 0xffff)
        .collect::<Vec<_>>();
    Workload::assemble(
        "tie_absdiff",
        "sum of absolute differences (SAD) on the absdiff unit",
        exts::absdiff_ext(),
        &spiced(&format!(
            ".data\nxs: {}\nys: {}\n.text\n\
             movi a2, 45\nouter:\nmovi a3, xs\nmovi a4, ys\nmovi a5, 64\nmovi a6, 0\n\
             loop:\nl32i a7, 0(a3)\nl32i a8, 0(a4)\nabsdiff a9, a7, a8\nadd a6, a6, a9\n\
             addi a3, a3, 4\naddi a4, a4, 4\naddi a5, a5, -1\nbnez a5, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\nhalt",
            words_directive(&xs),
            words_directive(&ys)
        )),
        vec![],
    )
}

fn p24_tie_blend() -> Workload {
    // Cross-fade between two constant registers while sweeping alpha —
    // a different access pattern from the pixel-array application.
    Workload::assemble(
        "tie_blend",
        "alpha sweep on the blend unit",
        exts::blend8(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 800\nmovi a3, 11\nloop:\n{LCG_STEP}\
             andi a5, a3, 255\nsetalpha a5\nextui a6, a3, 8, 8\nextui a7, a3, 16, 8\n\
             blend a8, a6, a7\nblend a9, a7, a6\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

fn p25_tie_sbox() -> Workload {
    Workload::assemble(
        "tie_sbox",
        "stream substitution through the two-S-box unit",
        exts::sbox12(),
        &spiced(&format!(
            "{LCG_SETUP}movi a2, 800\nmovi a3, 3\nmovi a6, 0\nloop:\n{LCG_STEP}\
             extui a5, a3, 3, 12\ndsbox a7, a5\nxor a6, a6, a7\nextui a5, a3, 17, 12\n\
             dsbox a8, a5\nadd a6, a6, a8\ncall spice\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        )),
        vec![],
    )
}

/// The full 25-program characterization suite, in Fig. 3 order.
pub fn characterization_suite() -> Vec<Workload> {
    vec![
        p01_matmul(),
        p02_crc32(),
        p03_binsearch(),
        p04_histogram(),
        p05_fib_rec(),
        p06_strfind(),
        p07_partition(),
        p08_mem_stride(),
        p09_icache_big(),
        p10_uncached(),
        p11_tie_mac_fir(),
        p12_tie_mac2(),
        p13_tie_gf_mul(),
        p14_tie_gf_mac(),
        p15_tie_syn(),
        p16_tie_dsp_mul(),
        p17_tie_dsp_shift(),
        p18_tie_csa(),
        p19_tie_csa_res(),
        p20_tie_tmul(),
        p21_tie_simd(),
        p22_tie_sort(),
        p23_tie_absdiff(),
        p24_tie_blend(),
        p25_tie_sbox(),
    ]
}

/// A second icache-pressure program kept out of the default suite; used
/// by the suite-diversity ablation (A5).
pub fn extra_icache_program() -> Workload {
    big_body("icache_huge", "larger I-cache-thrashing body", 7000, 4, 2)
}

/// Nine single-event **calibration micro-programs**, used alongside the
/// 25 kernels during characterization.
///
/// Conventional instruction-level characterization builds its entire
/// suite out of such "isolated instructions … wrapped in loops"; the
/// paper's regression approach removes that *requirement*, but nothing
/// prevents a suite from including a few. They come in scheduling pairs
/// that differ in exactly one event kind (an interlock present vs broken,
/// an untaken branch vs a `nop`, …), which pins the per-event
/// coefficients that realistic kernels alone leave weakly identified —
/// without them, the least-squares solution can trade, say, stall energy
/// against load energy and extrapolate poorly to unseen applications.
pub fn calibration_programs() -> Vec<Workload> {
    let mk = |name: &str, src: &str| base(name, "single-event calibration pair member", src);
    vec![
        mk(
            "cal_ilk_a",
            ".data\nv: .word 3, 4\n.text\nmovi a2, 1500\nmovi a3, v\nl:\n\
             l32i a4, 0(a3)\nadd a5, a4, a4\nl32i a6, 4(a3)\nadd a7, a6, a6\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_ilk_b",
            ".data\nv: .word 3, 4\n.text\nmovi a2, 1500\nmovi a3, v\nl:\n\
             l32i a4, 0(a3)\nl32i a6, 4(a3)\nadd a5, a4, a4\nadd a7, a6, a6\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_bu_a",
            "movi a2, 1500\nmovi a3, 5\nl:\nbeqi a3, 9, x\nbnei a3, 5, x\n\
             blti a3, 0, x\nadd a4, a3, a3\naddi a2, a2, -1\nbnez a2, l\nx: halt",
        ),
        mk(
            "cal_bu_b",
            "movi a2, 1500\nmovi a3, 5\nl:\nnop\nnop\nnop\n\
             add a4, a3, a3\naddi a2, a2, -1\nbnez a2, l\nx: halt",
        ),
        mk(
            "cal_s_a",
            ".data\nbuf: .space 16\n.text\nmovi a2, 1500\nmovi a3, buf\nmovi a4, 7\nl:\n\
             s32i a4, 0(a3)\ns32i a4, 4(a3)\ns32i a4, 8(a3)\nadd a5, a2, a2\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_l_a",
            ".data\nbuf: .space 16\n.text\nmovi a2, 1500\nmovi a3, buf\nl:\n\
             l32i a4, 0(a3)\nl32i a5, 4(a3)\nl32i a6, 8(a3)\nadd a7, a2, a2\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_bt_a",
            "movi a2, 1500\nmovi a3, 0\nl:\nbeqz a3, s1\ns1:\nbeqz a3, s2\ns2:\n\
             beqz a3, s3\ns3:\nadd a4, a2, a2\naddi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_j_a",
            "movi a2, 1500\nl:\nj s1\ns1:\nj s2\ns2:\nadd a4, a2, a2\n\
             addi a2, a2, -1\nbnez a2, l\nhalt",
        ),
        mk(
            "cal_a_a",
            "movi a2, 1500\nmovi a3, 9\nl:\nadd a4, a3, a3\nadd a5, a4, a3\n\
             add a6, a5, a4\nadd a7, a6, a5\naddi a2, a2, -1\nbnez a2, l\nhalt",
        ),
    ]
}

/// Width-variant custom programs: the same kernels at different
/// bit-widths, so quadratic-`f(C)` categories (TIE_mac) and linear ones
/// (custom registers) appear at more than one complexity ratio and can be
/// separated by the regression.
pub fn width_variant_programs() -> Vec<Workload> {
    let xs = lcg_stream(41, 64)
        .iter()
        .map(|v| v & 0xff)
        .collect::<Vec<_>>();
    let hs = lcg_stream(42, 64)
        .iter()
        .map(|v| v & 0xff)
        .collect::<Vec<_>>();
    let mut out = vec![Workload::assemble(
        "tie_mac8_fir",
        "dot product on the 8-bit MAC variant",
        exts::mac8(),
        &format!(
            ".data\nxs: {}\nhs: {}\n.text\n\
             movi a2, 30\nouter:\nclracc\nmovi a3, xs\nmovi a4, hs\nmovi a5, 64\n\
             loop:\nl32i a6, 0(a3)\nl32i a7, 0(a4)\nmac a6, a7\naddi a3, a3, 4\n\
             addi a4, a4, 4\naddi a5, a5, -1\nbnez a5, loop\n\
             call spice\naddi a2, a2, -1\nbnez a2, outer\n\
             rdacc a8\nhalt\n{SPICE_SUB}",
            words_directive(&xs),
            words_directive(&hs),
        ),
        vec![],
    )];
    out.push(Workload::assemble(
        "tie_alu_mac",
        "stateless fused-MAC stream (TIE_mac without custom registers)",
        exts::tie_alu(),
        &format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 3\nloop:\n{LCG_STEP}\
             maci a5, a3, a10, 17\nmaci a6, a5, a3, 5\nadd3i a7, a5, a6, 9\n\
             addi a2, a2, -1\nbnez a2, loop\nhalt"
        ),
        vec![],
    ));
    out.push(Workload::assemble(
        "tie_alu_csa",
        "stateless carry-save stream (TIE_csa/TIE_add without custom registers)",
        exts::tie_alu(),
        &format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 7\nloop:\n{LCG_STEP}\
             extui a4, a3, 4, 14\ncsa3s a5, a4, a10, 33\ncsa3c a6, a4, a10, 33\n\
             add3i a7, a5, a6, 0\ncsa3s a8, a7, a5, 12\n\
             addi a2, a2, -1\nbnez a2, loop\nhalt"
        ),
        vec![],
    ));
    out.push(Workload::assemble(
        "tie_alu_pass",
        "pass-through custom instructions (n_CI with minimal hardware)",
        exts::tie_alu(),
        &format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 3\nloop:\n{LCG_STEP}\
             extui a4, a3, 2, 12\ncpass a5, a4\ncpass a6, a5\ncpass a7, a6\n\
             addi a2, a2, -1\nbnez a2, loop\nhalt"
        ),
        vec![],
    ));
    out.push(Workload::assemble(
        "tie_mul32",
        "full-width custom multiplies (multiplier category at f = 1)",
        exts::mul32c(),
        &format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 3\nloop:\n{LCG_STEP}\
             cmul a5, a3, a10\ncmul a6, a5, a3\nxor a7, a5, a6\n\
             addi a2, a2, -1\nbnez a2, loop\nhalt"
        ),
        vec![],
    ));
    out.push(Workload::assemble(
        "tie_bigtable",
        "wide-table lookups (table category at high complexity)",
        exts::bigtable(),
        &format!(
            "{LCG_SETUP}movi a2, 600\nmovi a3, 3\nloop:\n{LCG_STEP}\
             extui a4, a3, 3, 8\ntlu a5, a4\nextui a4, a3, 13, 8\ntlu a6, a4\n\
             add a7, a5, a6\naddi a2, a2, -1\nbnez a2, loop\nhalt"
        ),
        vec![],
    ));
    out
}

/// The pairwise-covering specs realized by [`directed_programs`]:
/// (primary, partner, (primary weight, partner weight)) for every gap the
/// excitation analyzer reported against the hand-written suite.
///
/// The list was found with the closed loop that `emx-coverage`
/// automates — analyze, plan, synthesize, re-analyze — then frozen here
/// so the training suite stays a deterministic, reviewable artifact
/// rather than a fixpoint recomputed at build time (the convergence
/// itself is asserted by `tests/coverage.rs`). Three groups:
///
/// * sole-source breakers — `beta_ucf`, `delta_shift` and
///   `delta_tie_mult` each appeared in exactly one program, which is why
///   leave-one-out folds went singular (ridge fallback) when that
///   program was held out;
/// * excitation wideners for the remaining thin structural categories
///   (each gained cases at several bit-widths, i.e. several `f(C)`
///   points);
/// * collinearity busters — contrasting-ratio pairs for the column pairs
///   the analyzer flagged (`alpha_A ~ beta_icm`, `gamma_CI ~
///   delta_logmux`, `delta_logmux ~ delta_creg`), including I-cache-sized
///   bodies made of load/store blocks and the state-only `ddspin`
///   stimulus that moves custom registers without any GPR coupling.
pub const DIRECTED_SPECS: [(&str, &str, (u32, u32)); 23] = [
    ("beta_ucf", "alpha_A", (3, 1)),
    ("beta_ucf", "alpha_L", (1, 3)),
    ("beta_ucf", "delta_shift", (2, 2)),
    ("delta_shift", "alpha_L", (3, 1)),
    ("delta_shift", "alpha_S", (1, 3)),
    ("delta_tie_mult", "alpha_A", (3, 1)),
    ("delta_tie_mult", "alpha_L", (1, 3)),
    ("delta_mult", "alpha_S", (3, 1)),
    ("delta_mult", "alpha_Bt", (1, 3)),
    ("delta_tie_mac", "alpha_A", (2, 2)),
    ("delta_tie_add", "alpha_Bu", (3, 1)),
    ("delta_tie_csa", "alpha_L", (3, 1)),
    ("delta_table", "alpha_A", (3, 1)),
    ("delta_table", "alpha_S", (1, 3)),
    ("beta_icm", "alpha_L", (1, 3)),
    ("beta_icm", "alpha_S", (1, 3)),
    ("gamma_CI", "delta_creg", (3, 1)),
    ("delta_creg", "alpha_A", (3, 1)),
    ("delta_creg", "delta_logmux", (1, 3)),
    ("delta_logmux", "alpha_A", (3, 1)),
    ("beta_dcm", "alpha_A", (3, 1)),
    ("beta_dcm", "alpha_S", (1, 3)),
    ("beta_dcm", "beta_ilk", (2, 2)),
];

/// The directed, pairwise-covering cases generated from
/// [`DIRECTED_SPECS`] by [`crate::directed::synthesize`].
pub fn directed_programs() -> Vec<Workload> {
    crate::directed::realize(&DIRECTED_SPECS)
}

/// The full training set used by the default characterization flow: the
/// 25 kernels of [`characterization_suite`] plus the nine
/// [`calibration_programs`], the [`width_variant_programs`] and the
/// [`directed_programs`] that close the coverage gaps the excitation
/// analyzer found in the hand-written programs.
pub fn full_training_suite() -> Vec<Workload> {
    let mut all = characterization_suite();
    all.extend(calibration_programs());
    all.extend(width_variant_programs());
    all.extend(directed_programs());
    all
}

/// Borrows a workload slice as characterization training cases — the
/// shape `Characterizer::characterize` wants, without every caller
/// hand-rolling the same `iter().map(TrainingCase { .. })` boilerplate.
pub fn training_cases(workloads: &[Workload]) -> Vec<emx_core::TrainingCase<'_>> {
    workloads
        .iter()
        .map(|w| emx_core::TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_isa::DynClass;
    use emx_sim::{Interp, ProcConfig};

    #[test]
    fn suite_has_25_programs_with_unique_names() {
        let suite = characterization_suite();
        assert_eq!(suite.len(), 25);
        let mut names: Vec<_> = suite.iter().map(|w| w.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn every_program_halts_and_verifies() {
        for w in characterization_suite() {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let run = sim
                .run(80_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(run.halted, "{} did not halt", w.name());
            w.verify(sim.state()).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn suite_covers_every_variable() {
        // Aggregate statistics across the suite: every macro-model variable
        // must be exercised by at least one program.
        let mut class = [0u64; 6];
        let mut struct_act = [0.0f64; 10];
        let (mut icm, mut dcm, mut ucf, mut ilk, mut ci) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for w in characterization_suite() {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let stats = sim.run(80_000_000).unwrap().stats;
            for (i, c) in stats.class_cycles.iter().enumerate() {
                class[i] += c;
            }
            for (i, s) in stats.struct_activity.iter().enumerate() {
                struct_act[i] += s;
            }
            icm += stats.icache_misses;
            dcm += stats.dcache_misses;
            ucf += stats.uncached_fetches;
            ilk += stats.interlocks;
            ci += stats.ci_gpr_cycles;
        }
        for (i, &c) in class.iter().enumerate() {
            assert!(c > 0, "class {:?} never exercised", DynClass::ALL[i]);
        }
        for (i, &s) in struct_act.iter().enumerate() {
            assert!(
                s > 0.0,
                "hardware category {:?} never exercised",
                emx_hwlib::Category::ALL[i]
            );
        }
        assert!(icm > 100, "too few icache misses: {icm}");
        assert!(dcm > 100, "too few dcache misses: {dcm}");
        assert!(ucf > 100, "too few uncached fetches: {ucf}");
        assert!(ilk > 100, "too few interlocks: {ilk}");
        assert!(ci > 100, "too few GPR-coupled custom cycles: {ci}");
    }
}
