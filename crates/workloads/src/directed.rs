//! Directed training-case generator: loop programs synthesized to excite
//! chosen macro-model variable *pairs* at chosen intensity ratios.
//!
//! The hand-written characterization suite gives every variable signal,
//! but `emx-coverage`'s excitation analyzer shows where that signal is
//! thin: sole-source variables (one program away from a singular fold),
//! weakly-excited structural categories, and column pairs that only ever
//! move in lockstep. This module closes those gaps mechanically. Each
//! generated workload is a small LCG-scrambled loop whose body interleaves
//! a **primary** stimulus block (exciting the gap variable) with a
//! **partner** block at a contrasting repeat ratio — the pairwise covering
//! design of `emx_coverage::plan`:
//!
//! * repeating a primary across several partners breaks sole-source
//!   columns without creating a new lockstep pair,
//! * contrasting ratios ((3,1) vs (1,3)) against a *correlated* partner
//!   add exactly the rows where the two columns move differently,
//! * custom-hardware stimuli instantiate minimal single-category
//!   extensions at an index-selected bit-width, so each directed case
//!   also probes a different point on the complexity axis `f(C)`.
//!
//! Two variables are realized as whole-program shapes rather than blocks:
//! `beta_ucf` moves the program into the uncached fetch region, and
//! `beta_icm` builds a loop body larger than the I-cache *out of partner
//! blocks* (which is what decorrelates I-cache misses from plain
//! arithmetic — the original suite's only I-cache program had a purely
//! arithmetic body).
//!
//! The generator is string-keyed by template-variable name, so
//! `emx-coverage` (which knows names, not simulators) can drive it
//! without a dependency in either direction.

use emx_hwlib::{DfGraph, LookupTable, PrimOp};
use emx_tie::{ExtensionBuilder, ExtensionSet, InputBind, OutputBind};

use crate::Workload;

/// One variable's stimulus: assembly block(s) plus optional custom
/// hardware.
struct Stimulus {
    /// Short tag used in the workload name.
    tag: &'static str,
    /// Lines emitted once per loop iteration, before any block.
    loop_setup: &'static str,
    /// The block body; `@` is replaced by a unique instance id so label
    /// definitions stay distinct across repeats.
    block: &'static str,
    /// Adds this stimulus's instruction(s) to the extension under
    /// construction, at the given operand width.
    ext: Option<fn(&mut ExtensionBuilder, u8)>,
    /// Whether the block calls the shared `dirsub` leaf.
    uses_sub: bool,
}

fn ext_gpr_add(ext: &mut ExtensionBuilder, w: u8) {
    // GPR-coupled custom add: γ_CI signal with only adder/cmp hardware.
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let s = g
        .node(PrimOp::Add, (w + 1).min(32), &[a, b])
        .expect("graph");
    g.output(s);
    bind_2in_1out(ext, "dgadd", g);
}

fn ext_mult(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let m = g
        .node(PrimOp::Mul, (2 * w).min(32), &[a, b])
        .expect("graph");
    g.output(m);
    bind_2in_1out(ext, "ddmul", g);
}

fn ext_addcmp(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let m = g.node(PrimOp::MinU, w, &[a, b]).expect("graph");
    let s = g
        .node(PrimOp::Add, (w + 1).min(32), &[m, b])
        .expect("graph");
    g.output(s);
    bind_2in_1out(ext, "ddadd", g);
}

fn ext_logmux(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let x = g.node(PrimOp::Xor, w, &[a, b]).expect("graph");
    let o = g.node(PrimOp::And, w, &[x, a]).expect("graph");
    g.output(o);
    bind_2in_1out(ext, "ddxor", g);
}

fn ext_shift(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w.max(8));
    let b = g.input("b", 5);
    let s = g.node(PrimOp::Shl, w.max(8), &[a, b]).expect("graph");
    g.output(s);
    bind_2in_1out(ext, "ddshl", g);
}

fn ext_creg(ext: &mut ExtensionBuilder, w: u8) {
    // State-only spin: custom-register traffic with *zero* γ_CI (no GPR
    // binding), which is what separates δ_creg from the GPR-coupling
    // coefficient. The state is kept wide (≥ 48 bits) so the *modeled*
    // per-execution register energy dominates the constant
    // fetch/decode/control overhead that, for a GPR-free instruction, no
    // template variable captures — with a narrow state that unmodeled
    // overhead is a large fraction of the case's energy and the fit
    // degrades.
    let w = 48 + (w % 16);
    let spin = ext.state("dspin_s", w).expect("state");
    let mut g = DfGraph::new();
    let s_in = g.input("s", w);
    let one = g.constant(1, w).expect("graph");
    let nx = g.node(PrimOp::Add, w, &[s_in, one]).expect("graph");
    g.output(nx);
    ext.instruction("ddspin", g)
        .expect("inst")
        .bind_input(InputBind::State(spin))
        .expect("bind")
        .bind_output(OutputBind::State(spin))
        .expect("bind");
}

fn ext_tie_mult(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let m = g
        .node(PrimOp::TieMult, (2 * w).min(32), &[a, b])
        .expect("graph");
    g.output(m);
    bind_2in_1out(ext, "ddtmu", g);
}

fn ext_tie_mac(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let zero = g.constant(0, (2 * w).min(32)).expect("graph");
    let m = g
        .node(PrimOp::TieMac, (2 * w).min(32), &[a, b, zero])
        .expect("graph");
    g.output(m);
    bind_2in_1out(ext, "ddtma", g);
}

fn ext_tie_add(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let zero = g.constant(3, w).expect("graph");
    let s = g
        .node(PrimOp::TieAdd, (w + 2).min(32), &[a, b, zero])
        .expect("graph");
    g.output(s);
    bind_2in_1out(ext, "ddta", g);
}

fn ext_tie_csa(ext: &mut ExtensionBuilder, w: u8) {
    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let c = g.constant(5, w).expect("graph");
    let s = g.node(PrimOp::TieCsaSum, w, &[a, b, c]).expect("graph");
    g.output(s);
    bind_2in_1out(ext, "ddcs", g);

    let mut g = DfGraph::new();
    let a = g.input("a", w);
    let b = g.input("b", w);
    let c = g.constant(5, w).expect("graph");
    let cy = g.node(PrimOp::TieCsaCarry, w, &[a, b, c]).expect("graph");
    g.output(cy);
    bind_2in_1out(ext, "ddcc", g);
}

fn ext_table(ext: &mut ExtensionBuilder, w: u8) {
    // 64-entry table at the index-selected output width.
    let out_w = w.clamp(4, 16);
    let entries: Vec<u64> = (0..64u64)
        .map(|i| (i * 37 + u64::from(w) * 11) % (1 << out_w))
        .collect();
    let mut g = DfGraph::new();
    let a = g.input("a", 6);
    let t = g.add_table(LookupTable::new(entries, out_w).expect("table"));
    let o = g
        .node(PrimOp::TableLookup { table_index: t }, out_w, &[a])
        .expect("graph");
    g.output(o);

    ext.instruction("ddtlu", g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
}

fn bind_2in_1out(ext: &mut ExtensionBuilder, name: &str, g: DfGraph) {
    ext.instruction(name, g)
        .expect("inst")
        .bind_input(InputBind::GprS)
        .expect("bind")
        .bind_input(InputBind::GprT)
        .expect("bind")
        .bind_output(OutputBind::Gpr)
        .expect("bind");
}

/// The stimulus catalogue, keyed by template-variable name. Register
/// discipline: `a2` loop counter, `a3` LCG value, `a6`/`a7` per-iteration
/// operands, `a10`/`a11` LCG constants, `a12` always zero (branch
/// helper), `a13` data buffer, `a15` D-miss stride pointer; blocks write
/// only `a4`, `a5`, `a8`, `a9`, `a14`.
fn stimulus(var: &str) -> Option<Stimulus> {
    let s = match var {
        "alpha_A" => Stimulus {
            tag: "arith",
            loop_setup: "",
            block: "add a4, a3, a6\nxor a5, a4, a3\nsub a8, a4, a6\nadd a9, a5, a8\n",
            ext: None,
            uses_sub: false,
        },
        "alpha_L" => Stimulus {
            tag: "load",
            loop_setup: "",
            block: "l32i a4, 0(a13)\nl32i a5, 4(a13)\nl32i a8, 8(a13)\nl32i a9, 12(a13)\n",
            ext: None,
            uses_sub: false,
        },
        "alpha_S" => Stimulus {
            tag: "store",
            loop_setup: "",
            block: "s32i a6, 0(a13)\ns32i a3, 4(a13)\ns32i a6, 8(a13)\n",
            ext: None,
            uses_sub: false,
        },
        "alpha_J" => Stimulus {
            tag: "jump",
            loop_setup: "",
            block: "call dirsub\nj dj@\ndj@:\n",
            ext: None,
            uses_sub: true,
        },
        "alpha_Bt" => Stimulus {
            tag: "brt",
            loop_setup: "",
            block: "beqz a12, dt@a\ndt@a:\nbeqz a12, dt@b\ndt@b:\nbeqz a12, dt@c\ndt@c:\n",
            ext: None,
            uses_sub: false,
        },
        "alpha_Bu" => Stimulus {
            tag: "bru",
            loop_setup: "",
            block: "bnez a12, dend\nbnez a12, dend\nbnez a12, dend\n",
            ext: None,
            uses_sub: false,
        },
        "beta_dcm" => Stimulus {
            tag: "dcm",
            loop_setup: "extui a4, a3, 3, 9\nslli a4, a4, 7\nmovi a15, 0x40000\nadd a15, a15, a4\n",
            block: "l32i a5, 0(a15)\ns32i a5, 64(a15)\naddi a15, a15, 128\n",
            ext: None,
            uses_sub: false,
        },
        "beta_ilk" => Stimulus {
            tag: "ilk",
            loop_setup: "",
            block: "l32i a4, 0(a13)\nadd a5, a4, a4\nl32i a8, 4(a13)\nadd a9, a8, a8\n",
            ext: None,
            uses_sub: false,
        },
        "gamma_CI" => Stimulus {
            tag: "ci",
            loop_setup: "",
            block: "dgadd a4, a3, a6\ndgadd a5, a4, a6\n",
            ext: Some(ext_gpr_add),
            uses_sub: false,
        },
        "delta_mult" => Stimulus {
            tag: "mul",
            loop_setup: "",
            block: "ddmul a4, a3, a6\nddmul a5, a4, a6\n",
            ext: Some(ext_mult),
            uses_sub: false,
        },
        "delta_addcmp" => Stimulus {
            tag: "add",
            loop_setup: "",
            block: "ddadd a4, a3, a6\nddadd a5, a4, a6\n",
            ext: Some(ext_addcmp),
            uses_sub: false,
        },
        "delta_logmux" => Stimulus {
            tag: "log",
            loop_setup: "",
            block: "ddxor a4, a3, a6\nddxor a5, a4, a6\n",
            ext: Some(ext_logmux),
            uses_sub: false,
        },
        "delta_shift" => Stimulus {
            tag: "shf",
            loop_setup: "andi a7, a3, 7\n",
            block: "ddshl a4, a3, a7\nddshl a5, a4, a7\n",
            ext: Some(ext_shift),
            uses_sub: false,
        },
        "delta_creg" => Stimulus {
            tag: "crg",
            loop_setup: "",
            block: "ddspin\nddspin\nddspin\n",
            ext: Some(ext_creg),
            uses_sub: false,
        },
        "delta_tie_mult" => Stimulus {
            tag: "tmu",
            loop_setup: "",
            block: "ddtmu a4, a3, a6\nddtmu a5, a4, a6\n",
            ext: Some(ext_tie_mult),
            uses_sub: false,
        },
        "delta_tie_mac" => Stimulus {
            tag: "tma",
            loop_setup: "",
            block: "ddtma a4, a3, a6\nddtma a5, a4, a6\n",
            ext: Some(ext_tie_mac),
            uses_sub: false,
        },
        "delta_tie_add" => Stimulus {
            tag: "tad",
            loop_setup: "",
            block: "ddta a4, a3, a6\nddta a5, a4, a6\n",
            ext: Some(ext_tie_add),
            uses_sub: false,
        },
        "delta_tie_csa" => Stimulus {
            tag: "csa",
            loop_setup: "",
            block: "ddcs a4, a3, a6\nddcc a5, a3, a6\n",
            ext: Some(ext_tie_csa),
            uses_sub: false,
        },
        "delta_table" => Stimulus {
            tag: "tbl",
            loop_setup: "andi a7, a3, 63\n",
            block: "ddtlu a4, a7\nddtlu a5, a4\n",
            ext: Some(ext_table),
            uses_sub: false,
        },
        _ => return None,
    };
    Some(s)
}

/// Operand width for index-varied custom hardware, cycling through the
/// complexity axis.
fn width_for(index: usize) -> u8 {
    [8, 16, 24, 12, 32][index % 5]
}

/// Builds the merged extension for up to two stimuli (empty when neither
/// needs hardware).
fn build_ext(name: &str, width: u8, stims: [&Stimulus; 2]) -> ExtensionSet {
    if stims.iter().all(|s| s.ext.is_none()) {
        return ExtensionSet::empty();
    }
    let mut ext = ExtensionBuilder::new(name);
    let mut added: Vec<fn(&mut ExtensionBuilder, u8)> = Vec::new();
    for s in stims {
        if let Some(add) = s.ext {
            if !added.contains(&add) {
                add(&mut ext, width);
                added.push(add);
            }
        }
    }
    ext.build().expect("directed extension compiles")
}

/// Expands `block` `repeats` times with unique label ids.
fn expand_blocks(block: &str, repeats: u32, next_id: &mut u32) -> String {
    let mut out = String::new();
    for _ in 0..repeats {
        out.push_str(&block.replace('@', &next_id.to_string()));
        *next_id += 1;
    }
    out
}

/// Synthesizes the directed workload for one
/// `emx_coverage::CaseSpec`-shaped request: excite `primary` and
/// `partner` at intensity ratio `weights`, with `index` varying the data
/// seed, iteration count, and custom-hardware width across otherwise
/// identical requests.
///
/// Returns `None` when either variable name is unknown, when
/// `primary == partner`, or when the partner is one of the two
/// whole-program shapes (`beta_icm`, `beta_ucf`) — those can only lead.
pub fn synthesize(
    primary: &str,
    partner: &str,
    weights: (u32, u32),
    index: usize,
) -> Option<Workload> {
    if primary == partner || matches!(partner, "beta_icm" | "beta_ucf") {
        return None;
    }
    let partner_stim = stimulus(partner)?;
    let width = width_for(index);
    let seed = 0x9e37 + 0x61 * index as u32;
    let (w0, w1) = (weights.0.max(1), weights.1.max(1));

    // Whole-program shapes first.
    if primary == "beta_icm" {
        // A loop body larger than the 16 KB I-cache built from partner
        // blocks: every iteration refetches the whole body from memory,
        // so n_icm scales with a *partner-shaped* instruction mix.
        let name = format!("dir_icm_{}_{}{}i{}", partner_stim.tag, w0, w1, index);
        let ext = build_ext(&name, width, [&partner_stim, &partner_stim]);
        let mut body = String::new();
        let mut id = 0;
        let block_lines = partner_stim.block.matches('\n').count().max(1) as u32;
        let instances = (4600 / block_lines).max(1) + 220 * w1;
        body.push_str(&expand_blocks(partner_stim.block, instances, &mut id));
        let src = format!(
            ".data\ndbuf: .space 64\n.text\n\
             movi a10, 1664525\nmovi a11, 1013904223\n\
             movi a2, {iters}\nmovi a3, {seed}\nmovi a12, 0\nmovi a13, dbuf\n\
             loop:\nmul a3, a3, a10\nadd a3, a3, a11\nextui a6, a3, 5, 12\n\
             {setup}{body}addi a2, a2, -1\nbnez a2, loop\ndend:\nhalt\n{sub}",
            iters = 3 + w0,
            setup = partner_stim.loop_setup,
            sub = if partner_stim.uses_sub {
                "dirsub: ret\n"
            } else {
                ""
            },
        );
        let desc = format!("directed: I-cache-sized body of {partner} blocks ({w0}:{w1})");
        return Some(Workload::assemble(&name, &desc, ext, &src, vec![]));
    }

    let uncached = primary == "beta_ucf";
    if uncached {
        // Whole program in the uncached fetch region: n_ucf scales with a
        // partner-shaped mix instead of one fixed checksum kernel.
        let name = format!("dir_ucf_{}_{}{}i{}", partner_stim.tag, w0, w1, index);
        let ext = build_ext(&name, width, [&partner_stim, &partner_stim]);
        let mut id = 0;
        let body = expand_blocks(partner_stim.block, w1, &mut id);
        let src = format!(
            ".uncached\n.data\ndbuf: .space 64\n.text\n\
             movi a10, 1664525\nmovi a11, 1013904223\n\
             movi a2, {iters}\nmovi a3, {seed}\nmovi a12, 0\nmovi a13, dbuf\n\
             loop:\nmul a3, a3, a10\nadd a3, a3, a11\nextui a6, a3, 5, 12\n\
             {setup}{body}addi a2, a2, -1\nbnez a2, loop\ndend:\nhalt\n{sub}",
            iters = 90 + 30 * w0,
            setup = partner_stim.loop_setup,
            sub = if partner_stim.uses_sub {
                "dirsub: ret\n"
            } else {
                ""
            },
        );
        let desc = format!("directed: uncached fetch of {partner} blocks ({w0}:{w1})");
        return Some(Workload::assemble(&name, &desc, ext, &src, vec![]));
    }

    let primary_stim = stimulus(primary)?;
    let iters = 300 + 60 * ((index as u32) % 5);
    let name = format!(
        "dir_{}_{}_{}{}i{}",
        primary_stim.tag, partner_stim.tag, w0, w1, index
    );

    let ext = build_ext(&name, width, [&primary_stim, &partner_stim]);
    let mut id = 0;
    let mut body = expand_blocks(primary_stim.block, w0, &mut id);
    body.push_str(&expand_blocks(partner_stim.block, w1, &mut id));

    let mut setup = String::from(primary_stim.loop_setup);
    if partner_stim.loop_setup != primary_stim.loop_setup {
        setup.push_str(partner_stim.loop_setup);
    }
    let uses_sub = primary_stim.uses_sub || partner_stim.uses_sub;

    let src = format!(
        ".data\ndbuf: .space 64\n.text\n\
         movi a10, 1664525\nmovi a11, 1013904223\n\
         movi a2, {iters}\nmovi a3, {seed}\nmovi a12, 0\nmovi a13, dbuf\n\
         loop:\nmul a3, a3, a10\nadd a3, a3, a11\nextui a6, a3, 5, 12\n\
         {setup}{body}addi a2, a2, -1\nbnez a2, loop\ndend:\nhalt\n{sub}",
        sub = if uses_sub { "dirsub: ret\n" } else { "" },
    );
    let desc = format!("directed: {primary} vs {partner} at {w0}:{w1}");
    Some(Workload::assemble(&name, &desc, ext, &src, vec![]))
}

/// Realizes a list of (primary, partner, weights) specs, numbering them
/// by position (the number feeds the width/seed variation) and skipping
/// specs the generator cannot realize.
pub fn realize(specs: &[(&str, &str, (u32, u32))]) -> Vec<Workload> {
    specs
        .iter()
        .enumerate()
        .filter_map(|(i, (p, q, w))| synthesize(p, q, *w, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_sim::{Interp, ProcConfig};

    fn stats_of(w: &Workload) -> emx_sim::ExecStats {
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let run = sim
            .run(80_000_000)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
        assert!(run.halted, "{} did not halt", w.name());
        run.stats
    }

    #[test]
    fn unknown_variables_are_declined() {
        assert!(synthesize("no_such_var", "alpha_A", (1, 1), 0).is_none());
        assert!(synthesize("alpha_A", "no_such_var", (1, 1), 0).is_none());
        assert!(synthesize("alpha_A", "alpha_A", (1, 1), 0).is_none());
        assert!(synthesize("delta_mult", "beta_icm", (1, 1), 0).is_none());
    }

    #[test]
    fn every_block_variable_synthesizes_and_halts() {
        for var in [
            "alpha_A",
            "alpha_L",
            "alpha_S",
            "alpha_J",
            "alpha_Bt",
            "alpha_Bu",
            "beta_dcm",
            "beta_ilk",
            "gamma_CI",
            "delta_mult",
            "delta_addcmp",
            "delta_logmux",
            "delta_shift",
            "delta_creg",
            "delta_tie_mult",
            "delta_tie_mac",
            "delta_tie_add",
            "delta_tie_csa",
            "delta_table",
        ] {
            let partner = if var == "alpha_A" {
                "alpha_L"
            } else {
                "alpha_A"
            };
            let w = synthesize(var, partner, (3, 1), 1)
                .unwrap_or_else(|| panic!("{var} must synthesize"));
            stats_of(&w);
        }
    }

    #[test]
    fn primary_stimulus_excites_its_variable() {
        // Spot-check the structural stimuli: the primary's category must
        // be active, at a rate that scales with the weight ratio.
        let w = synthesize("delta_shift", "alpha_L", (3, 1), 0).unwrap();
        let stats = stats_of(&w);
        let shifter = emx_hwlib::Category::Shifter.index();
        assert!(stats.struct_activity[shifter] > 0.0);

        let w = synthesize("delta_tie_mult", "alpha_A", (2, 2), 2).unwrap();
        let stats = stats_of(&w);
        let tmul = emx_hwlib::Category::TieMult.index();
        assert!(stats.struct_activity[tmul] > 0.0);
    }

    #[test]
    fn creg_stimulus_has_no_gpr_coupling() {
        // The δ_creg spin instruction must not count as a GPR-coupled
        // custom cycle — that independence is its whole purpose.
        let w = synthesize("delta_creg", "alpha_S", (3, 1), 0).unwrap();
        let stats = stats_of(&w);
        let creg = emx_hwlib::Category::CustomReg.index();
        assert!(stats.struct_activity[creg] > 0.0);
        assert_eq!(stats.ci_gpr_cycles, 0);
    }

    #[test]
    fn ucf_and_icm_shapes_produce_their_events() {
        let w = synthesize("beta_ucf", "alpha_A", (2, 2), 0).unwrap();
        let stats = stats_of(&w);
        assert!(stats.uncached_fetches > 100, "{}", stats.uncached_fetches);

        let w = synthesize("beta_icm", "alpha_L", (1, 3), 0).unwrap();
        let stats = stats_of(&w);
        assert!(stats.icache_misses > 100, "{}", stats.icache_misses);
    }

    #[test]
    fn weights_shift_the_stimulus_ratio() {
        let heavy = stats_of(&synthesize("delta_mult", "alpha_L", (3, 1), 0).unwrap());
        let light = stats_of(&synthesize("delta_mult", "alpha_L", (1, 3), 0).unwrap());
        let mult = emx_hwlib::Category::Multiplier.index();
        let ratio_heavy = heavy.struct_activity[mult] / heavy.class_cycles[1].max(1) as f64;
        let ratio_light = light.struct_activity[mult] / light.class_cycles[1].max(1) as f64;
        assert!(
            ratio_heavy > 2.0 * ratio_light,
            "{ratio_heavy} vs {ratio_light}"
        );
    }

    #[test]
    fn realize_numbers_cases_and_skips_invalid_specs() {
        let specs: [(&str, &str, (u32, u32)); 3] = [
            ("delta_mult", "alpha_A", (3, 1)),
            ("bogus", "alpha_A", (1, 1)),
            ("delta_mult", "alpha_A", (3, 1)),
        ];
        let out = realize(&specs);
        assert_eq!(out.len(), 2);
        // Same spec, different index → different name and width.
        assert_ne!(out[0].name(), out[1].name());
    }
}
