//! Differential tests: extensions written in the TIE language must behave
//! identically to their builder-API definitions — same architectural
//! results and same per-execution resource accounting, so the energy flow
//! cannot tell them apart.

use emx_tie::lang::parse_extension;
use emx_workloads::{exts, gf};

#[test]
fn dsl_mac16_matches_builder_mac16() {
    let dsl = parse_extension(
        "extension mac16 {
            state acc : 40;
            inst mac(a: gpr(16), b: gpr(16), acc_in: state(acc), out acc_out: state(acc)) {
                acc_out = mac(a, b, acc_in);
            }
            inst rdacc(acc_in: state(acc), out d: gpr) {
                d = slice(acc_in, 0, 32);
            }
            inst clracc(out acc_out: state(acc)) {
                acc_out : 40 = 0;
            }
        }",
    )
    .expect("parses");
    let built = exts::mac16();

    // Same instruction inventory and latencies.
    assert_eq!(dsl.len(), built.len());
    for inst in &built {
        let other = dsl.by_name(inst.name()).expect("same mnemonics");
        assert_eq!(other.latency(), inst.latency(), "{}", inst.name());
        assert_eq!(other.signature(), inst.signature(), "{}", inst.name());
        assert_eq!(
            other.resource_vector(),
            inst.resource_vector(),
            "{} resources",
            inst.name()
        );
    }

    // Same architectural behaviour over a data sweep.
    let mut s1 = dsl.initial_state();
    let mut s2 = built.initial_state();
    for k in 0..200u32 {
        let (a, b) = (k.wrapping_mul(2654435761) & 0xffff, (k * 77 + 13) & 0xffff);
        dsl.by_name("mac")
            .expect("exists")
            .execute(a, b, 0, &mut s1)
            .expect("runs");
        built
            .by_name("mac")
            .expect("exists")
            .execute(a, b, 0, &mut s2)
            .expect("runs");
    }
    assert_eq!(s1, s2);
    let r1 = dsl
        .by_name("rdacc")
        .expect("exists")
        .execute(0, 0, 0, &mut s1)
        .expect("runs");
    let r2 = built
        .by_name("rdacc")
        .expect("exists")
        .execute(0, 0, 0, &mut s2)
        .expect("runs");
    assert_eq!(r1.gpr, r2.gpr);
}

#[test]
fn dsl_gfmul_matches_builder_gfmul() {
    let log: Vec<String> = gf::log_table().iter().map(|v| v.to_string()).collect();
    let exp: Vec<String> = gf::exp_table().iter().map(|v| v.to_string()).collect();
    let dsl = parse_extension(&format!(
        "extension gf16 {{
            table logt[16] : 4 = {{ {} }};
            table expt[32] : 4 = {{ {} }};
            inst gfmul(a: gpr(4), b: gpr(4), out d: gpr) {{
                la = logt[a];
                lb = logt[b];
                s : 5 = la + lb;
                p = expt[s];
                nz = redor(a) & redor(b);
                d : 4 = mux(nz, p, 0);
            }}
        }}",
        log.join(", "),
        exp.join(", ")
    ))
    .expect("parses");
    let built = exts::gf16();

    let d = dsl.by_name("gfmul").expect("exists");
    let b = built.by_name("gfmul").expect("exists");
    assert_eq!(d.resource_vector(), b.resource_vector());
    assert_eq!(d.latency(), b.latency());

    let mut s1 = dsl.initial_state();
    let mut s2 = built.initial_state();
    for x in 0..16u32 {
        for y in 0..16u32 {
            let r1 = d.execute(x, y, 0, &mut s1).expect("runs").gpr;
            let r2 = b.execute(x, y, 0, &mut s2).expect("runs").gpr;
            assert_eq!(r1, r2, "{x}⊗{y}");
            assert_eq!(r1.map(|v| v as u8), Some(gf::mul(x as u8, y as u8)));
        }
    }
}

#[test]
fn dsl_extension_runs_through_the_full_energy_flow() {
    // A DSL-defined extension must be estimable exactly like a built one.
    use emx_isa::asm::Assembler;
    use emx_rtlpower::RtlEnergyEstimator;
    use emx_sim::ProcConfig;

    let ext = parse_extension(
        "extension sad {
            state total : 32;
            inst sadacc(a: gpr, b: gpr, t_in: state(total), out t_out: state(total)) {
                lt = ltu(a, b);
                d1 = a - b;
                d2 = b - a;
                ad = mux(lt, d2, d1);
                t_out : 32 = t_in + ad;
            }
            inst rdsad(t_in: state(total), out d: gpr) {
                d = t_in;
            }
        }",
    )
    .expect("parses");

    let mut asm = Assembler::new();
    ext.register_mnemonics(&mut asm);
    let program = asm
        .assemble(
            "movi a2, 50\nmovi a3, 1000\nmovi a4, 977\nloop:\nsadacc a3, a4\n\
             addi a3, a3, 3\naddi a4, a4, 5\naddi a2, a2, -1\nbnez a2, loop\n\
             rdsad a5\nhalt",
        )
        .expect("assembles");

    let report = RtlEnergyEstimator::new()
        .estimate(&program, &ext, ProcConfig::default())
        .expect("estimates");
    assert!(report.breakdown.custom.as_picojoules() > 0.0);
    assert!(report.stats.custom_counts.iter().sum::<u64>() == 51);
}
