//! Benches for the paper's speedup claim (§V): macro-model estimation
//! (fast ISS + dot product) vs the RTL-level reference flow (detailed
//! trace + net-level integration), per application. Thin wrapper over
//! `emx_bench::suites::estimation` so `emx-bench` can run the same
//! definitions headlessly.

use emx_bench::harness::Bench;

fn main() {
    let mut bench = Bench::from_args("estimation");
    emx_bench::suites::estimation(&mut bench);
    bench.finish();
}
