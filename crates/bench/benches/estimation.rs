//! Benches for the paper's speedup claim (§V): macro-model estimation
//! (fast ISS + dot product) vs the RTL-level reference flow (detailed
//! trace + net-level integration), per application. Runs on the
//! registry-free harness in `emx_bench::harness`.

use std::hint::black_box;

use emx_bench::harness::Bench;
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::ProcConfig;

fn main() {
    let characterization = emx_bench::characterize_default();
    let model = characterization.model;
    let estimator = RtlEnergyEstimator::new();
    let apps = emx_workloads::apps::all();

    let mut bench = Bench::from_args("estimation");

    let mut group = bench.group("estimation");
    group.sample_size(10);
    for w in &apps {
        group.bench(&format!("macro_model/{}", w.name()), || {
            let est = model
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("estimation runs");
            black_box(est.energy)
        });
        group.bench(&format!("rtl_reference/{}", w.name()), || {
            let rep = estimator
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("reference runs");
            black_box(rep.total)
        });
    }
    group.finish();

    // The one-time cost of building the macro-model (steps 1–8); done
    // once per base processor, amortized over every later estimate.
    let mut group = bench.group("characterization");
    group.sample_size(10);
    group.bench("full_flow_40_programs", || {
        black_box(emx_bench::characterize_default())
    });
    group.finish();

    bench.finish();
}
