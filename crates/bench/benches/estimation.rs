//! Criterion benches for the paper's speedup claim (§V): macro-model
//! estimation (fast ISS + dot product) vs the RTL-level reference flow
//! (detailed trace + net-level integration), per application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::ProcConfig;

fn bench_estimation(c: &mut Criterion) {
    let characterization = emx_bench::characterize_default();
    let model = characterization.model;
    let estimator = RtlEnergyEstimator::new();
    let apps = emx_workloads::apps::all();

    let mut group = c.benchmark_group("estimation");
    group.sample_size(10);
    for w in &apps {
        group.bench_with_input(BenchmarkId::new("macro_model", w.name()), w, |b, w| {
            b.iter(|| {
                let est = model
                    .estimate(w.program(), w.ext(), ProcConfig::default())
                    .expect("estimation runs");
                black_box(est.energy)
            })
        });
        group.bench_with_input(BenchmarkId::new("rtl_reference", w.name()), w, |b, w| {
            b.iter(|| {
                let rep = estimator
                    .estimate(w.program(), w.ext(), ProcConfig::default())
                    .expect("reference runs");
                black_box(rep.total)
            })
        });
    }
    group.finish();
}

fn bench_characterization(c: &mut Criterion) {
    // The one-time cost of building the macro-model (steps 1–8); done
    // once per base processor, amortized over every later estimate.
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.bench_function("full_flow_40_programs", |b| {
        b.iter(|| black_box(emx_bench::characterize_default()))
    });
    group.finish();
}

criterion_group!(benches, bench_estimation, bench_characterization);
criterion_main!(benches);
