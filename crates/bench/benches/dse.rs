//! Benches for the design-space exploration engine: a full search over
//! the Reed–Solomon space with a cold estimation cache (every candidate
//! pays an ISS run) vs a warm one (every candidate is a hash lookup).
//! Thin wrapper over `emx_bench::suites::dse` so `emx-bench` can run
//! the same definitions headlessly.

use emx_bench::harness::Bench;

fn main() {
    let mut bench = Bench::from_args("dse");
    emx_bench::suites::dse(&mut bench);
    bench.finish();
}
