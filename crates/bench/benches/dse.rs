//! Benches for the design-space exploration engine: a full search over
//! the Reed–Solomon space with a cold estimation cache (every candidate
//! pays an ISS run) vs a warm one (every candidate is a hash lookup).
//! The Melem/s figure is candidates per second.

use std::hint::black_box;

use emx_bench::harness::Bench;
use emx_dse::{self as dse, CandidateSpace, EstimationCache};
use emx_obs::Collector;
use emx_sim::ProcConfig;

fn main() {
    let model = emx_bench::characterize_default().model;
    let space = CandidateSpace::reed_solomon();
    let candidates = space
        .enumerate(None)
        .expect("reed-solomon space enumerates")
        .candidates
        .len() as u64;

    let mut bench = Bench::from_args("dse");
    let mut group = bench.group("dse");
    group.sample_size(10);

    group.throughput_elements(candidates);
    group.bench("explore/cold_cache", || {
        let mut cache = EstimationCache::new();
        let out = dse::explore(
            &model,
            &space,
            None,
            &ProcConfig::default(),
            1,
            &mut cache,
            &mut Collector::disabled(),
        )
        .expect("exploration runs");
        black_box(out.points.len())
    });

    let mut warm = EstimationCache::new();
    dse::explore(
        &model,
        &space,
        None,
        &ProcConfig::default(),
        1,
        &mut warm,
        &mut Collector::disabled(),
    )
    .expect("exploration runs");
    group.throughput_elements(candidates);
    group.bench("explore/warm_cache", || {
        let out = dse::explore(
            &model,
            &space,
            None,
            &ProcConfig::default(),
            1,
            &mut warm,
            &mut Collector::disabled(),
        )
        .expect("exploration runs");
        black_box(out.points.len())
    });

    group.finish();
    bench.finish();
}
