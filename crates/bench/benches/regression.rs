//! Benches for the regression kernel: the paper highlights that
//! "construction and use of regression models are efficient" — the
//! least-squares solve over the whole characterization suite is
//! microseconds, negligible next to the simulations that feed it. Runs
//! on the registry-free harness in `emx_bench::harness`.

use std::hint::black_box;

use emx_bench::harness::Bench;
use emx_regress::solve::{normal_equations_lstsq, qr_lstsq};
use emx_regress::Matrix;

/// Deterministic pseudo-random design matrix shaped like the
/// characterization problem (`samples × 21`).
fn design(samples: usize, vars: usize) -> (Matrix, Vec<f64>) {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let x = Matrix::from_fn(samples, vars, |_, _| next() * 1000.0);
    let c_true: Vec<f64> = (0..vars).map(|i| 50.0 + 10.0 * i as f64).collect();
    let mut y = x.mul_vec(&c_true).expect("shapes match");
    for v in &mut y {
        *v *= 1.0 + 0.02 * (next() - 0.5);
    }
    (x, y)
}

fn main() {
    let mut bench = Bench::from_args("regression");
    let mut group = bench.group("lstsq");
    for &samples in &[25usize, 40, 100] {
        let (x, y) = design(samples, 21);
        group.bench(&format!("qr/{samples}"), || {
            black_box(qr_lstsq(&x, &y).expect("solves"))
        });
        group.bench(&format!("pseudo_inverse/{samples}"), || {
            black_box(normal_equations_lstsq(&x, &y, 0.0).expect("solves"))
        });
    }
    group.finish();
    bench.finish();
}
