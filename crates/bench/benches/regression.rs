//! Benches for the regression kernel: the paper highlights that
//! "construction and use of regression models are efficient" — the
//! least-squares solve over the whole characterization suite is
//! microseconds, negligible next to the simulations that feed it. Thin
//! wrapper over `emx_bench::suites::regression` so `emx-bench` can run
//! the same definitions headlessly.

use emx_bench::harness::Bench;

fn main() {
    let mut bench = Bench::from_args("regression");
    emx_bench::suites::regression(&mut bench);
    bench.finish();
}
