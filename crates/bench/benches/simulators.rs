//! Benches for the simulation substrates: functional ISS throughput vs
//! the activity-streaming pipeline path, per workload class. Thin
//! wrapper over `emx_bench::suites::simulators` so `emx-bench` can run
//! the same definitions headlessly.

use emx_bench::harness::Bench;

fn main() {
    let mut bench = Bench::from_args("simulators");
    emx_bench::suites::simulators(&mut bench);
    bench.finish();
}
