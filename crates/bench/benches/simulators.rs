//! Criterion benches for the simulation substrates: functional ISS
//! throughput vs the activity-streaming pipeline path, per workload
//! class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use emx_sim::{InstRecord, Interp, PipelineSim, ProcConfig};
use emx_workloads::Workload;

fn pick(names: &[&str]) -> Vec<Workload> {
    emx_workloads::suite::characterization_suite()
        .into_iter()
        .filter(|w| names.contains(&w.name()))
        .collect()
}

fn bench_iss(c: &mut Criterion) {
    let workloads = pick(&["matmul", "crc32", "tie_mac_fir", "tie_syn"]);
    let mut group = c.benchmark_group("iss");
    for w in &workloads {
        // Pre-measure instruction count for throughput reporting.
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let insts = sim.run(200_000_000).expect("runs").stats.inst_count;
        group.throughput(Throughput::Elements(insts));
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), w, |b, w| {
            b.iter(|| {
                let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
                black_box(sim.run(200_000_000).expect("runs").stats.total_cycles)
            })
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let workloads = pick(&["matmul", "crc32", "tie_mac_fir", "tie_syn"]);
    let mut group = c.benchmark_group("pipeline_trace");
    for w in &workloads {
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), w, |b, w| {
            b.iter(|| {
                let mut records = 0u64;
                let mut sink = |_: &InstRecord<'_>| records += 1;
                let mut sim = PipelineSim::new(w.program(), w.ext(), ProcConfig::default());
                sim.run(&mut sink, 200_000_000).expect("runs");
                black_box(records)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iss, bench_pipeline);
criterion_main!(benches);
