//! Benches for the simulation substrates: functional ISS throughput vs
//! the activity-streaming pipeline path, per workload class. Runs on the
//! registry-free harness in `emx_bench::harness`.

use std::hint::black_box;

use emx_bench::harness::Bench;
use emx_sim::{InstRecord, Interp, PipelineSim, ProcConfig};
use emx_workloads::Workload;

fn pick(names: &[&str]) -> Vec<Workload> {
    emx_workloads::suite::characterization_suite()
        .into_iter()
        .filter(|w| names.contains(&w.name()))
        .collect()
}

fn main() {
    let workloads = pick(&["matmul", "crc32", "tie_mac_fir", "tie_syn"]);
    let mut bench = Bench::from_args("simulators");

    let mut group = bench.group("iss");
    for w in &workloads {
        // Pre-measure instruction count for throughput reporting.
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let insts = sim.run(200_000_000).expect("runs").stats.inst_count;
        group.throughput_elements(insts);
        group.bench(w.name(), || {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            black_box(sim.run(200_000_000).expect("runs").stats.total_cycles)
        });
    }
    group.finish();

    let mut group = bench.group("pipeline_trace");
    for w in &workloads {
        group.bench(w.name(), || {
            let mut records = 0u64;
            let mut sink = |_: &InstRecord<'_>| records += 1;
            let mut sim = PipelineSim::new(w.program(), w.ext(), ProcConfig::default());
            sim.run(&mut sink, 200_000_000).expect("runs");
            black_box(records)
        });
    }
    group.finish();

    bench.finish();
}
