//! A small, registry-free benchmark harness.
//!
//! The bench targets in `benches/` use this instead of criterion so the
//! workspace keeps zero registry dependencies (`cargo build --offline`
//! must work on machines with no crates.io access — see
//! `crates/proptest` for the same story on the test side).
//!
//! The measurement loop is deliberately simple: per benchmark it
//! auto-calibrates an inner iteration count so one *sample* takes at
//! least `MIN_SAMPLE_NANOS` (2 ms), collects `sample_size` samples, and
//! reports min / p50 / p90 / mean per iteration out of an
//! [`emx_obs::Histogram`] — the same log-linear histogram the
//! observability layer uses, so quantization error is bounded at ~6 %.
//!
//! Run with `cargo bench -p emx-bench [filter]`; only benchmarks whose
//! `group/id` name contains the filter substring execute.

use std::hint::black_box;
use std::time::Instant;

use emx_obs::Histogram;

/// Minimum wall-clock time of one sample, in nanoseconds. Short
/// closures are batched until a sample crosses this threshold.
const MIN_SAMPLE_NANOS: u64 = 2_000_000;

/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Top-level state for one bench binary: name filter and run counts.
pub struct Bench {
    filter: Option<String>,
    ran: usize,
    skipped: usize,
}

impl Bench {
    /// Builds the harness from the command line. The first argument that
    /// is not a flag becomes a substring filter on `group/id` names
    /// (cargo passes `--bench` flags; those are ignored).
    pub fn from_args(suite: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        println!("suite: {suite}");
        Bench {
            filter,
            ran: 0,
            skipped: 0,
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Prints the run/skip tally. Call last in `main`.
    pub fn finish(self) {
        println!(
            "\n{} benchmark(s) run, {} filtered out",
            self.ran, self.skipped
        );
    }

    fn selected(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares that each iteration processes `elements` items, adding
    /// an elements-per-second figure to the report. Applies to the
    /// *next* `bench` call only.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Measures `f`, reporting per-iteration latency statistics.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        let full_name = format!("{}/{}", self.name, id);
        let throughput = self.throughput.take();
        if !self.bench.selected(&full_name) {
            self.bench.skipped += 1;
            return;
        }
        self.bench.ran += 1;

        // Calibrate: batch iterations until one sample is long enough
        // for the clock to resolve it well.
        let once = time_nanos(|| {
            black_box(f());
        });
        let iters_per_sample = (MIN_SAMPLE_NANOS / once.max(1)).clamp(1, 1_000_000);

        let mut hist = Histogram::new();
        for _ in 0..self.sample_size {
            let elapsed = time_nanos(|| {
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
            });
            hist.record(elapsed / iters_per_sample);
        }

        let mut line = format!(
            "{full_name:<40} p50 {:>10}  p90 {:>10}  mean {:>10}  min {:>10}  ({} samples × {} iters)",
            fmt_nanos(hist.percentile(50.0)),
            fmt_nanos(hist.percentile(90.0)),
            fmt_nanos(hist.mean() as u64),
            fmt_nanos(hist.min()),
            self.sample_size,
            iters_per_sample,
        );
        if let Some(elements) = throughput {
            let per_sec = elements as f64 / (hist.percentile(50.0).max(1) as f64 / 1e9);
            line.push_str(&format!("  {:.1} Melem/s", per_sec / 1e6));
        }
        println!("{line}");
    }

    /// Ends the group (provided for symmetry; dropping works too).
    pub fn finish(self) {}
}

fn time_nanos(f: impl FnOnce()) -> u64 {
    let start = Instant::now();
    f();
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Renders a nanosecond count with an adaptive unit.
fn fmt_nanos(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_formatting_scales() {
        assert_eq!(fmt_nanos(512), "512 ns");
        assert_eq!(fmt_nanos(25_300), "25.3 µs");
        assert_eq!(fmt_nanos(18_000_000), "18.0 ms");
        assert_eq!(fmt_nanos(12_000_000_000), "12.00 s");
    }

    #[test]
    fn filter_matches_substrings() {
        let b = Bench {
            filter: Some("iss/mat".into()),
            ran: 0,
            skipped: 0,
        };
        assert!(b.selected("iss/matmul"));
        assert!(!b.selected("pipeline/matmul"));
        let unfiltered = Bench {
            filter: None,
            ran: 0,
            skipped: 0,
        };
        assert!(unfiltered.selected("anything"));
    }

    #[test]
    fn bench_runs_and_counts() {
        let mut b = Bench {
            filter: None,
            ran: 0,
            skipped: 0,
        };
        let mut g = b.group("g");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench("noop", || calls += 1);
        g.finish();
        assert!(calls > 0);
        assert_eq!(b.ran, 1);
    }
}
