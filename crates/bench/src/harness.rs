//! A small, registry-free benchmark harness.
//!
//! The bench targets in `benches/` use this instead of criterion so the
//! workspace keeps zero registry dependencies (`cargo build --offline`
//! must work on machines with no crates.io access — see
//! `crates/proptest` for the same story on the test side).
//!
//! The measurement loop is deliberately simple: per benchmark it
//! auto-calibrates an inner iteration count so one *sample* takes at
//! least `MIN_SAMPLE_NANOS` (2 ms), collects `sample_size` samples, and
//! reports min / p50 / p90 / mean per iteration out of an
//! [`emx_obs::Histogram`] — the same log-linear histogram the
//! observability layer uses, so quantization error is bounded at ~6 %.
//! Measured distributions are also retained as [`BenchRecord`]s, which
//! `emx-bench` serializes into `emx.bench-report/1` snapshots.
//!
//! Run with `cargo bench -p emx-bench [filter]`; only benchmarks whose
//! `group/id` name contains the filter substring execute. `--list`
//! prints the names without running anything; `--samples N` overrides
//! every group's sample count.

use std::hint::black_box;
use std::time::Instant;

use emx_obs::Histogram;

/// Minimum wall-clock time of one sample, in nanoseconds. Short
/// closures are batched until a sample crosses this threshold.
const MIN_SAMPLE_NANOS: u64 = 2_000_000;

/// Default number of samples per benchmark.
const DEFAULT_SAMPLES: usize = 20;

/// Parsed command-line options for a bench binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchOptions {
    /// Substring filter on `group/id` names.
    pub filter: Option<String>,
    /// Print benchmark names without running anything.
    pub list: bool,
    /// Override every group's sample count.
    pub samples: Option<usize>,
}

impl BenchOptions {
    /// Parses bench arguments (everything after the binary name).
    ///
    /// Recognized: one positional substring filter, `--list`,
    /// `--samples N`. Cargo's own `--bench` marker is ignored.
    ///
    /// # Errors
    ///
    /// A usage message naming the first unknown flag, missing value, or
    /// extra positional argument.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchOptions, String> {
        let mut opts = BenchOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                // Passed by `cargo bench` to every bench target.
                "--bench" => {}
                "--list" => opts.list = true,
                "--samples" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--samples requires a value".to_owned())?;
                    let n: usize = value
                        .parse()
                        .map_err(|_| format!("--samples: `{value}` is not a number"))?;
                    if n < 2 {
                        return Err("--samples must be at least 2".to_owned());
                    }
                    opts.samples = Some(n);
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag `{flag}`"));
                }
                positional => {
                    if opts.filter.is_some() {
                        return Err(format!("unexpected extra argument `{positional}`"));
                    }
                    opts.filter = Some(positional.to_owned());
                }
            }
        }
        Ok(opts)
    }

    /// The usage string printed alongside parse errors.
    pub fn usage(program: &str) -> String {
        format!("usage: {program} [FILTER] [--list] [--samples N]")
    }
}

/// One measured benchmark: identity, shape of the measurement, and the
/// per-iteration latency distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Group name (first component of `group/id`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Samples collected.
    pub samples: usize,
    /// Inner iterations batched per sample.
    pub iters_per_sample: u64,
    /// Declared elements processed per iteration, if any.
    pub throughput_elements: Option<u64>,
    /// Per-iteration latency histogram, in nanoseconds.
    pub hist: Histogram,
}

impl BenchRecord {
    /// The full `group/id` name.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.group, self.id)
    }
}

/// Top-level state for one bench binary: options, run counts, and the
/// measured records.
pub struct Bench {
    options: BenchOptions,
    ran: usize,
    skipped: usize,
    records: Vec<BenchRecord>,
}

impl Bench {
    /// Builds the harness from the command line; prints usage and exits
    /// with code 2 on a malformed one.
    pub fn from_args(suite: &str) -> Self {
        let options = match BenchOptions::parse(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{}", BenchOptions::usage(suite));
                std::process::exit(2);
            }
        };
        if !options.list {
            println!("suite: {suite}");
        }
        Bench::with_options(options)
    }

    /// Builds the harness from pre-parsed options (used by `emx-bench`,
    /// which owns its own command line).
    pub fn with_options(options: BenchOptions) -> Self {
        Bench {
            options,
            ran: 0,
            skipped: 0,
            records: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_owned(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Prints the run/skip tally and hands back the measured records.
    /// Call last in `main`.
    pub fn finish(self) -> Vec<BenchRecord> {
        if !self.options.list {
            println!(
                "\n{} benchmark(s) run, {} filtered out",
                self.ran, self.skipped
            );
        }
        self.records
    }

    fn selected(&self, full_name: &str) -> bool {
        self.options
            .filter
            .as_deref()
            .is_none_or(|f| full_name.contains(f))
    }

    /// `true` if a benchmark named `full_name` would actually execute
    /// (selected by the filter and not in `--list` mode). Suites use
    /// this to skip expensive setup for benchmarks that will not run.
    pub fn will_measure(&self, full_name: &str) -> bool {
        !self.options.list && self.selected(full_name)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of samples collected per benchmark (overridden
    /// by `--samples`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares that each iteration processes `elements` items, adding
    /// an elements-per-second figure to the report. Applies to the
    /// *next* `bench` call only.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// `true` if `id` in this group would actually execute; see
    /// [`Bench::will_measure`].
    pub fn will_measure(&self, id: &str) -> bool {
        self.bench.will_measure(&format!("{}/{}", self.name, id))
    }

    /// Measures `f`, reporting per-iteration latency statistics.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        let full_name = format!("{}/{}", self.name, id);
        let throughput = self.throughput.take();
        if self.bench.options.list {
            println!("{full_name}");
            return;
        }
        if !self.bench.selected(&full_name) {
            self.bench.skipped += 1;
            return;
        }
        self.bench.ran += 1;
        let sample_size = self.bench.options.samples.unwrap_or(self.sample_size);

        // Warm up once (pays lazy one-time setup inside the closure),
        // then calibrate: batch iterations until one sample is long
        // enough for the clock to resolve it well.
        black_box(f());
        let once = time_nanos(|| {
            black_box(f());
        });
        let iters_per_sample = (MIN_SAMPLE_NANOS / once.max(1)).clamp(1, 1_000_000);

        let mut hist = Histogram::new();
        for _ in 0..sample_size {
            let elapsed = time_nanos(|| {
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
            });
            hist.record(elapsed / iters_per_sample);
        }

        let mut line = format!(
            "{full_name:<40} p50 {:>10}  p90 {:>10}  mean {:>10}  min {:>10}  ({} samples × {} iters)",
            fmt_nanos(hist.percentile(50.0)),
            fmt_nanos(hist.percentile(90.0)),
            fmt_nanos(hist.mean() as u64),
            fmt_nanos(hist.min()),
            sample_size,
            iters_per_sample,
        );
        if let Some(elements) = throughput {
            let per_sec = elements as f64 / (hist.percentile(50.0).max(1) as f64 / 1e9);
            line.push_str(&format!("  {:.1} Melem/s", per_sec / 1e6));
        }
        println!("{line}");

        self.bench.records.push(BenchRecord {
            group: self.name.clone(),
            id: id.to_owned(),
            samples: sample_size,
            iters_per_sample,
            throughput_elements: throughput,
            hist,
        });
    }

    /// Ends the group (provided for symmetry; dropping works too).
    pub fn finish(self) {}
}

fn time_nanos(f: impl FnOnce()) -> u64 {
    let start = Instant::now();
    f();
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Renders a nanosecond count with an adaptive unit.
pub fn fmt_nanos(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_with(options: BenchOptions) -> Bench {
        Bench::with_options(options)
    }

    #[test]
    fn unit_formatting_scales() {
        assert_eq!(fmt_nanos(512), "512 ns");
        assert_eq!(fmt_nanos(25_300), "25.3 µs");
        assert_eq!(fmt_nanos(18_000_000), "18.0 ms");
        assert_eq!(fmt_nanos(12_000_000_000), "12.00 s");
    }

    #[test]
    fn filter_matches_substrings() {
        let b = bench_with(BenchOptions {
            filter: Some("iss/mat".into()),
            ..BenchOptions::default()
        });
        assert!(b.selected("iss/matmul"));
        assert!(!b.selected("pipeline/matmul"));
        let unfiltered = bench_with(BenchOptions::default());
        assert!(unfiltered.selected("anything"));
    }

    #[test]
    fn bench_runs_and_records() {
        let mut b = bench_with(BenchOptions {
            samples: Some(2),
            ..BenchOptions::default()
        });
        let mut g = b.group("g");
        g.throughput_elements(7);
        let mut calls = 0u64;
        g.bench("noop", || calls += 1);
        g.finish();
        assert!(calls > 0);
        let records = b.finish();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].full_name(), "g/noop");
        assert_eq!(records[0].samples, 2);
        assert_eq!(records[0].throughput_elements, Some(7));
        assert_eq!(records[0].hist.count(), 2);
    }

    #[test]
    fn list_mode_runs_nothing() {
        let mut b = bench_with(BenchOptions {
            list: true,
            ..BenchOptions::default()
        });
        assert!(!b.will_measure("g/expensive"));
        let mut g = b.group("g");
        assert!(!g.will_measure("expensive"));
        let mut calls = 0u64;
        g.bench("expensive", || calls += 1);
        g.finish();
        assert_eq!(calls, 0);
        assert!(b.finish().is_empty());
    }

    #[test]
    fn options_parse_recognizes_flags() {
        let opts =
            BenchOptions::parse(["--bench", "lstsq", "--samples", "5", "--list"].map(String::from))
                .unwrap();
        assert_eq!(
            opts,
            BenchOptions {
                filter: Some("lstsq".into()),
                list: true,
                samples: Some(5),
            }
        );
    }

    #[test]
    fn options_parse_rejects_garbage() {
        for bad in [
            vec!["--frobnicate"],
            vec!["--samples"],
            vec!["--samples", "zero"],
            vec!["--samples", "1"],
            vec!["a", "b"],
        ] {
            let args = bad.iter().map(|s| (*s).to_owned());
            assert!(BenchOptions::parse(args).is_err(), "{bad:?}");
        }
    }
}
