//! Experiment harness: regenerates every table and figure of the paper.
//!
//! One binary per artifact (see `src/bin/`):
//!
//! | binary    | paper artifact | claim reproduced |
//! |-----------|----------------|------------------|
//! | `table1`  | Table I        | the 21 fitted energy coefficients |
//! | `fig3`    | Fig. 3         | per-test-program fitting error; max < 8.9 %, RMS ≈ 3.8 % |
//! | `table2`  | Table II       | per-application estimation error; max ≈ 8.5 %, mean abs ≈ 3.3 % |
//! | `fig4`    | Fig. 4         | relative accuracy across four RS custom-instruction choices |
//! | `speedup` | §V text        | macro-model estimation vs RTL-level reference estimation time |
//! | `ablation`| DESIGN.md A1–A5| value of each macro-model design choice |
//!
//! This library holds the shared plumbing: building the characterization
//! once, evaluating applications through both estimators, and text-table
//! formatting.

pub mod compare;
pub mod harness;
pub mod report;
pub mod suites;

use emx_core::{Characterization, Characterizer, EnergyMacroModel, ModelSpec};
use emx_regress::stats;
use emx_rtlpower::{Energy, RtlEnergyEstimator};
use emx_sim::{Interp, ProcConfig};
use emx_workloads::{suite, Workload};

/// Cycle budget for every experiment run.
pub const MAX_CYCLES: u64 = 200_000_000;

/// Runs the full characterization flow on the 25-program suite with the
/// paper's template.
///
/// # Panics
///
/// Panics if the suite fails to simulate or the regression is singular —
/// both indicate a broken build, not a user error.
pub fn characterize_default() -> Characterization {
    characterize_with_spec(ModelSpec::paper())
}

/// Characterization with an alternative template (ablations).
///
/// # Panics
///
/// See [`characterize_default`].
pub fn characterize_with_spec(spec: ModelSpec) -> Characterization {
    let workloads = suite::full_training_suite();
    characterize_workloads(&workloads, spec)
}

/// Characterization over an explicit workload list.
///
/// # Panics
///
/// See [`characterize_default`].
pub fn characterize_workloads(workloads: &[Workload], spec: ModelSpec) -> Characterization {
    let cases = suite::training_cases(workloads);
    Characterizer::new(ProcConfig::default())
        .with_spec(spec)
        .characterize(&cases)
        .expect("characterization suite must fit")
}

/// One evaluated application: macro-model estimate vs reference.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Workload name.
    pub name: String,
    /// Macro-model estimate.
    pub estimate: Energy,
    /// RTL-level reference ("WattWatcher") measurement.
    pub reference: Energy,
    /// Signed percent error of the estimate.
    pub error_percent: f64,
    /// Cycle count (from the ISS).
    pub cycles: u64,
}

/// Evaluates one workload through both paths, verifying its functional
/// correctness along the way.
///
/// # Panics
///
/// Panics if the workload fails to run or produces wrong results.
pub fn evaluate(model: &EnergyMacroModel, w: &Workload) -> AppRow {
    let config = ProcConfig::default();

    // Functional verification first: energy numbers from a broken
    // workload would be meaningless.
    let mut sim = Interp::new(w.program(), w.ext(), config.clone());
    sim.run(MAX_CYCLES).expect("workload runs");
    w.verify(sim.state()).expect("workload verifies");

    let est = model
        .estimate(w.program(), w.ext(), config.clone())
        .expect("estimation runs");
    let reference = RtlEnergyEstimator::new()
        .estimate(w.program(), w.ext(), config)
        .expect("reference estimation runs");

    AppRow {
        name: w.name().to_owned(),
        estimate: est.energy,
        reference: reference.total,
        error_percent: est.energy.percent_error_vs(reference.total),
        cycles: est.stats.total_cycles,
    }
}

/// Evaluates the ten Table II applications.
///
/// # Panics
///
/// See [`evaluate`].
pub fn table2_rows(model: &EnergyMacroModel) -> Vec<AppRow> {
    emx_workloads::apps::all()
        .iter()
        .map(|w| evaluate(model, w))
        .collect()
}

/// Summary statistics over a set of evaluated rows.
#[derive(Debug, Clone, Copy)]
pub struct ErrorSummary {
    /// Mean of absolute per-row percent errors.
    pub mean_abs: f64,
    /// Largest absolute percent error.
    pub max_abs: f64,
    /// Root mean square percent error.
    pub rms: f64,
}

/// Summarizes per-row errors.
pub fn summarize(rows: &[AppRow]) -> ErrorSummary {
    let errs: Vec<f64> = rows.iter().map(|r| r.error_percent).collect();
    ErrorSummary {
        mean_abs: stats::mean_abs(&errs),
        max_abs: stats::max_abs(&errs),
        rms: stats::rms(&errs),
    }
}

/// Renders rows in Table II format.
pub fn format_table2(rows: &[AppRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>14} {:>14} {:>9}\n",
        "Application", "Estimate (uJ)", "Reference (uJ)", "Error (%)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>14.2} {:>14.2} {:>+9.1}\n",
            r.name,
            r.estimate.as_microjoules(),
            r.reference.as_microjoules(),
            r.error_percent
        ));
    }
    let s = summarize(rows);
    out.push_str(&format!(
        "\nmean |error| = {:.1}%   max |error| = {:.1}%   rms = {:.1}%\n",
        s.mean_abs, s.max_abs, s.rms
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_is_reusable() {
        let c = characterize_default();
        assert_eq!(c.model.coefficients().len(), 21);
        assert!(c.fit.r_squared() > 0.99, "R² = {}", c.fit.r_squared());
    }
}
