//! The `emx.bench-report/1` snapshot: a machine-readable record of one
//! headless benchmark run.
//!
//! A report carries an environment fingerprint (so comparisons across
//! machines can be flagged), per-benchmark latency statistics with the
//! full log-linear histogram (so later tooling can ask new percentile
//! questions of old snapshots), and the ISS per-phase host-time
//! breakdown. Emission is deterministic modulo the measured timings:
//! same records in, same bytes out.

use std::process::Command;

use emx_obs::json::Value;
use emx_obs::Histogram;
use emx_sim::PhaseProfile;

use crate::harness::BenchRecord;

/// Schema identifier of the report document.
pub const SCHEMA: &str = "emx.bench-report/1";

/// Fingerprint of the machine and build that produced a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    /// `rustc --version` output (or `"unknown"`).
    pub rustc: String,
    /// Host triple approximation: `<arch>-<os>`.
    pub target: String,
    /// Logical CPUs available (0 when undetectable).
    pub cpu_count: u64,
    /// `"release"` or `"debug"`.
    pub opt_level: String,
    /// Short git revision of the working tree (or `"unknown"`).
    /// Excluded from mismatch gating: a baseline is *supposed* to come
    /// from an older revision than the run compared against it.
    pub git_rev: String,
}

impl Environment {
    /// Captures the current environment.
    pub fn capture() -> Environment {
        Environment {
            rustc: first_line("rustc", &["--version"]),
            target: format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
            cpu_count: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(0),
            opt_level: if cfg!(debug_assertions) {
                "debug".to_owned()
            } else {
                "release".to_owned()
            },
            git_rev: first_line("git", &["rev-parse", "--short=12", "HEAD"]),
        }
    }

    /// Names of fingerprint fields that differ between `self` and
    /// `other`, ignoring `git_rev` (see its doc). Empty means the two
    /// reports are comparable without a cross-machine caveat.
    pub fn mismatches(&self, other: &Environment) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.rustc != other.rustc {
            out.push("rustc");
        }
        if self.target != other.target {
            out.push("target");
        }
        if self.cpu_count != other.cpu_count {
            out.push("cpu_count");
        }
        if self.opt_level != other.opt_level {
            out.push("opt_level");
        }
        out
    }

    fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("rustc", self.rustc.as_str());
        doc.set("target", self.target.as_str());
        doc.set("cpu_count", self.cpu_count);
        doc.set("opt_level", self.opt_level.as_str());
        doc.set("git_rev", self.git_rev.as_str());
        doc
    }

    fn from_json(doc: &Value) -> Result<Environment, String> {
        let text = |key: &str| -> Result<String, String> {
            Ok(doc
                .get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("environment: missing string field `{key}`"))?
                .to_owned())
        };
        Ok(Environment {
            rustc: text("rustc")?,
            target: text("target")?,
            cpu_count: doc
                .get("cpu_count")
                .and_then(Value::as_u64)
                .ok_or("environment: missing integer field `cpu_count`")?,
            opt_level: text("opt_level")?,
            git_rev: text("git_rev")?,
        })
    }
}

fn first_line(program: &str, args: &[&str]) -> String {
    Command::new(program)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| {
            String::from_utf8(out.stdout)
                .ok()
                .and_then(|s| s.lines().next().map(str::to_owned))
        })
        .unwrap_or_else(|| "unknown".to_owned())
}

/// One benchmark's measured statistics inside a report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Full `group/id` name.
    pub name: String,
    /// Samples collected.
    pub samples: u64,
    /// Inner iterations batched per sample.
    pub iters_per_sample: u64,
    /// Declared elements processed per iteration, if any.
    pub throughput_elements: Option<u64>,
    /// Fastest per-iteration sample, nanoseconds.
    pub min_ns: u64,
    /// Median per-iteration latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile per-iteration latency, nanoseconds.
    pub p90_ns: u64,
    /// Mean per-iteration latency, nanoseconds.
    pub mean_ns: f64,
    /// The full per-iteration latency distribution.
    pub hist: Histogram,
}

impl BenchEntry {
    /// Summarizes a harness record into a report entry.
    pub fn from_record(record: &BenchRecord) -> BenchEntry {
        BenchEntry {
            name: record.full_name(),
            samples: record.samples as u64,
            iters_per_sample: record.iters_per_sample,
            throughput_elements: record.throughput_elements,
            min_ns: record.hist.min(),
            p50_ns: record.hist.percentile(50.0),
            p90_ns: record.hist.percentile(90.0),
            mean_ns: record.hist.mean(),
            hist: record.hist.clone(),
        }
    }

    fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("name", self.name.as_str());
        doc.set("samples", self.samples);
        doc.set("iters_per_sample", self.iters_per_sample);
        if let Some(elements) = self.throughput_elements {
            doc.set("throughput_elements", elements);
        }
        doc.set("min_ns", self.min_ns);
        doc.set("p50_ns", self.p50_ns);
        doc.set("p90_ns", self.p90_ns);
        doc.set("mean_ns", self.mean_ns);
        doc.set("hist", self.hist.to_json());
        doc
    }

    fn from_json(doc: &Value) -> Result<BenchEntry, String> {
        let uint = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("benchmark: missing integer field `{key}`"))
        };
        Ok(BenchEntry {
            name: doc
                .get("name")
                .and_then(Value::as_str)
                .ok_or("benchmark: missing string field `name`")?
                .to_owned(),
            samples: uint("samples")?,
            iters_per_sample: uint("iters_per_sample")?,
            throughput_elements: match doc.get("throughput_elements") {
                None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or("benchmark: non-integer `throughput_elements`")?,
                ),
            },
            min_ns: uint("min_ns")?,
            p50_ns: uint("p50_ns")?,
            p90_ns: uint("p90_ns")?,
            mean_ns: doc
                .get("mean_ns")
                .and_then(Value::as_f64)
                .ok_or("benchmark: missing number field `mean_ns`")?,
            hist: Histogram::from_json(doc.get("hist").ok_or("benchmark: missing `hist` object")?)?,
        })
    }
}

/// The ISS per-phase host-time breakdown for one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Workload name.
    pub workload: String,
    /// Accumulated per-phase times.
    pub profile: PhaseProfile,
}

/// A full `emx.bench-report/1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Machine/build fingerprint.
    pub environment: Environment,
    /// Per-benchmark statistics, in run order.
    pub benchmarks: Vec<BenchEntry>,
    /// ISS phase breakdowns, in run order.
    pub phases: Vec<PhaseEntry>,
}

impl BenchReport {
    /// Assembles a report from harness records and phase breakdowns.
    pub fn new(
        environment: Environment,
        records: &[BenchRecord],
        phases: Vec<PhaseEntry>,
    ) -> BenchReport {
        BenchReport {
            environment,
            benchmarks: records.iter().map(BenchEntry::from_record).collect(),
            phases,
        }
    }

    /// Looks up a benchmark entry by its full name.
    pub fn benchmark(&self, name: &str) -> Option<&BenchEntry> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// The report as a deterministic JSON document.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("schema", SCHEMA);
        doc.set("environment", self.environment.to_json());
        let mut benchmarks = Value::array();
        for entry in &self.benchmarks {
            benchmarks.push(entry.to_json());
        }
        doc.set("benchmarks", benchmarks);
        let mut phases = Value::array();
        for entry in &self.phases {
            let mut p = Value::object();
            p.set("workload", entry.workload.as_str());
            p.set("profile", entry.profile.to_json());
            phases.push(p);
        }
        doc.set("phases", phases);
        doc
    }

    /// Serialized report text (one trailing newline, per the repo's
    /// schema conventions).
    pub fn to_text(&self) -> String {
        let mut text = self.to_json().to_string();
        text.push('\n');
        text
    }

    /// Parses report text.
    ///
    /// # Errors
    ///
    /// A description of the first syntax error, schema mismatch, or
    /// missing field.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let doc = Value::parse(text).map_err(|e| format!("bench report: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("bench report: missing `schema` field")?;
        if schema != SCHEMA {
            return Err(format!("bench report: schema `{schema}` is not `{SCHEMA}`"));
        }
        let environment = Environment::from_json(
            doc.get("environment")
                .ok_or("bench report: missing `environment` object")?,
        )?;
        let benchmarks = doc
            .get("benchmarks")
            .and_then(Value::as_array)
            .ok_or("bench report: missing `benchmarks` array")?
            .iter()
            .map(BenchEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let phases = doc
            .get("phases")
            .and_then(Value::as_array)
            .ok_or("bench report: missing `phases` array")?
            .iter()
            .map(|p| {
                Ok(PhaseEntry {
                    workload: p
                        .get("workload")
                        .and_then(Value::as_str)
                        .ok_or("phase entry: missing string field `workload`")?
                        .to_owned(),
                    profile: PhaseProfile::from_json(
                        p.get("profile")
                            .ok_or("phase entry: missing `profile` object")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchReport {
            environment,
            benchmarks,
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> BenchReport {
        let mut hist = Histogram::new();
        for v in [900u64, 1000, 1000, 1100, 2000] {
            hist.record(v);
        }
        let record = BenchRecord {
            group: "iss".into(),
            id: "matmul".into(),
            samples: 5,
            iters_per_sample: 3,
            throughput_elements: Some(1234),
            hist,
        };
        let mut profile = PhaseProfile::new();
        {
            use emx_sim::PhaseRecorder;
            profile.add(emx_sim::Phase::Execute, 700);
            profile.add(emx_sim::Phase::Fetch, 300);
            profile.retire();
        }
        BenchReport::new(
            Environment {
                rustc: "rustc 1.80.0".into(),
                target: "x86_64-linux".into(),
                cpu_count: 8,
                opt_level: "release".into(),
                git_rev: "abc123def456".into(),
            },
            &[record],
            vec![PhaseEntry {
                workload: "matmul".into(),
                profile,
            }],
        )
    }

    #[test]
    fn round_trip_is_exact() {
        let report = sample_report();
        let back = BenchReport::parse(&report.to_text()).unwrap();
        assert_eq!(back, report);
        // Emission is deterministic: same report, same bytes.
        assert_eq!(back.to_text(), report.to_text());
    }

    #[test]
    fn entry_statistics_come_from_the_histogram() {
        let report = sample_report();
        let entry = report.benchmark("iss/matmul").unwrap();
        assert_eq!(entry.min_ns, entry.hist.min());
        assert_eq!(entry.p50_ns, entry.hist.percentile(50.0));
        assert_eq!(entry.p90_ns, entry.hist.percentile(90.0));
        assert!(entry.p50_ns <= entry.p90_ns);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = sample_report()
            .to_text()
            .replace(SCHEMA, "emx.bench-report/2");
        let err = BenchReport::parse(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn parse_rejects_syntax_and_missing_fields() {
        assert!(BenchReport::parse("not json").is_err());
        assert!(BenchReport::parse("{}").is_err());
        let text = sample_report().to_text().replace("\"benchmarks\"", "\"b\"");
        assert!(BenchReport::parse(&text).is_err());
    }

    #[test]
    fn environment_mismatch_ignores_git_rev() {
        let a = sample_report().environment;
        let mut b = a.clone();
        b.git_rev = "ffffffffffff".into();
        assert!(a.mismatches(&b).is_empty());
        b.cpu_count = 4;
        b.rustc = "rustc 1.81.0".into();
        assert_eq!(a.mismatches(&b), vec!["rustc", "cpu_count"]);
    }
}
