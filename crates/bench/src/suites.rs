//! The benchmark suites as library functions over the harness.
//!
//! Each `benches/*.rs` target is a thin wrapper around one function
//! here, and `emx-bench` runs [`all`] of them headlessly to produce an
//! `emx.bench-report/1` snapshot. Expensive setup (characterization,
//! instruction-count pre-measures, cache warming) is gated on
//! [`Bench::will_measure`] or deferred into the bench closures, so
//! `--list` and narrow filters stay cheap.

use std::cell::OnceCell;
use std::hint::black_box;

use emx_dse::{CandidateSpace, EstimationCache};
use emx_obs::Collector;
use emx_regress::solve::{normal_equations_lstsq, qr_lstsq};
use emx_regress::Matrix;
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::{InstRecord, Interp, PipelineSim, ProcConfig};
use emx_workloads::Workload;

use crate::harness::Bench;
use crate::MAX_CYCLES;

/// A suite registration function: registers its benches on the harness.
pub type SuiteFn = fn(&mut Bench);

/// Every suite, in report order: name plus registration function.
pub const SUITES: &[(&str, SuiteFn)] = &[
    ("simulators", simulators),
    ("estimation", estimation),
    ("regression", regression),
    ("dse", dse),
];

/// Registers every suite on `bench`.
pub fn all(bench: &mut Bench) {
    for (_, suite) in SUITES {
        suite(bench);
    }
}

fn pick(names: &[&str]) -> Vec<Workload> {
    emx_workloads::suite::characterization_suite()
        .into_iter()
        .filter(|w| names.contains(&w.name()))
        .collect()
}

/// The workloads the simulator suites (and the phase-profiling section
/// of the bench report) exercise: two base-ISA kernels and one
/// custom-instruction kernel.
pub fn simulator_workloads() -> Vec<Workload> {
    pick(&["matmul", "crc32", "tie_mac_fir", "tie_syn"])
}

/// Functional ISS throughput vs the activity-streaming pipeline path,
/// per workload class.
pub fn simulators(bench: &mut Bench) {
    let workloads = simulator_workloads();

    let mut group = bench.group("iss");
    for w in &workloads {
        // Pre-measure instruction count for throughput reporting; only
        // worth paying when this benchmark will actually run.
        if group.will_measure(w.name()) {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            let insts = sim.run(MAX_CYCLES).expect("runs").stats.inst_count;
            group.throughput_elements(insts);
        }
        group.bench(w.name(), || {
            let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
            black_box(sim.run(MAX_CYCLES).expect("runs").stats.total_cycles)
        });
    }
    group.finish();

    let mut group = bench.group("pipeline_trace");
    for w in &workloads {
        group.bench(w.name(), || {
            let mut records = 0u64;
            let mut sink = |_: &InstRecord<'_>| records += 1;
            let mut sim = PipelineSim::new(w.program(), w.ext(), ProcConfig::default());
            sim.run(&mut sink, MAX_CYCLES).expect("runs");
            black_box(records)
        });
    }
    group.finish();
}

/// The paper's speedup claim (§V): macro-model estimation (fast ISS +
/// dot product) vs the RTL-level reference flow, per application, plus
/// the one-time characterization cost.
pub fn estimation(bench: &mut Bench) {
    // Characterization is by far the most expensive setup in any suite;
    // build it lazily on first use (the harness's warm-up call pays it
    // outside the timed region).
    let characterization = OnceCell::new();
    let model = || {
        &characterization
            .get_or_init(crate::characterize_default)
            .model
    };
    let estimator = RtlEnergyEstimator::new();
    let apps = emx_workloads::apps::all();

    let mut group = bench.group("estimation");
    group.sample_size(10);
    for w in &apps {
        group.bench(&format!("macro_model/{}", w.name()), || {
            let est = model()
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("estimation runs");
            black_box(est.energy)
        });
        group.bench(&format!("rtl_reference/{}", w.name()), || {
            let rep = estimator
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("reference runs");
            black_box(rep.total)
        });
    }
    group.finish();

    // The one-time cost of building the macro-model (steps 1–8); done
    // once per base processor, amortized over every later estimate.
    let mut group = bench.group("characterization");
    group.sample_size(10);
    group.bench("full_flow", || black_box(crate::characterize_default()));
    group.finish();
}

/// Deterministic pseudo-random design matrix shaped like the
/// characterization problem (`samples × 21`).
fn design(samples: usize, vars: usize) -> (Matrix, Vec<f64>) {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let x = Matrix::from_fn(samples, vars, |_, _| next() * 1000.0);
    let c_true: Vec<f64> = (0..vars).map(|i| 50.0 + 10.0 * i as f64).collect();
    let mut y = x.mul_vec(&c_true).expect("shapes match");
    for v in &mut y {
        *v *= 1.0 + 0.02 * (next() - 0.5);
    }
    (x, y)
}

/// The regression kernel: the paper highlights that "construction and
/// use of regression models are efficient" — the least-squares solve
/// over the whole characterization suite is microseconds.
pub fn regression(bench: &mut Bench) {
    let mut group = bench.group("lstsq");
    for &samples in &[25usize, 40, 100] {
        let (x, y) = design(samples, 21);
        group.bench(&format!("qr/{samples}"), || {
            black_box(qr_lstsq(&x, &y).expect("solves"))
        });
        group.bench(&format!("pseudo_inverse/{samples}"), || {
            black_box(normal_equations_lstsq(&x, &y, 0.0).expect("solves"))
        });
    }
    group.finish();
}

/// The design-space exploration engine: a full search over the
/// Reed–Solomon space with a cold estimation cache (every candidate
/// pays an ISS run) vs a warm one (every candidate is a hash lookup).
/// The Melem/s figure is candidates per second.
pub fn dse(bench: &mut Bench) {
    let mut group = bench.group("dse");
    group.sample_size(10);

    let run_cold = group.will_measure("explore/cold_cache");
    let run_warm = group.will_measure("explore/warm_cache");
    if !run_cold && !run_warm {
        // Register the names (for `--list` and the skip tally) without
        // paying for characterization or cache warming.
        group.bench("explore/cold_cache", || ());
        group.bench("explore/warm_cache", || ());
        group.finish();
        return;
    }

    let model = crate::characterize_default().model;
    let space = CandidateSpace::reed_solomon();
    let candidates = space
        .enumerate(None)
        .expect("reed-solomon space enumerates")
        .candidates
        .len() as u64;

    group.throughput_elements(candidates);
    group.bench("explore/cold_cache", || {
        let mut cache = EstimationCache::new();
        let out = emx_dse::explore(
            &model,
            &space,
            None,
            &ProcConfig::default(),
            1,
            &mut cache,
            &mut Collector::disabled(),
        )
        .expect("exploration runs");
        black_box(out.points.len())
    });

    let mut warm = EstimationCache::new();
    if run_warm {
        emx_dse::explore(
            &model,
            &space,
            None,
            &ProcConfig::default(),
            1,
            &mut warm,
            &mut Collector::disabled(),
        )
        .expect("exploration runs");
    }
    group.throughput_elements(candidates);
    group.bench("explore/warm_cache", || {
        let out = emx_dse::explore(
            &model,
            &space,
            None,
            &ProcConfig::default(),
            1,
            &mut warm,
            &mut Collector::disabled(),
        )
        .expect("exploration runs");
        black_box(out.points.len())
    });

    group.finish();
}
