//! Controlled-pair measurement of marginal event costs in the reference
//! model: program pairs that differ in exactly one event kind isolate
//! that event's true energy (the ground truth the fitted Table I
//! coefficients should approach). Useful when auditing the suite or the
//! substrate parameters.
use emx_isa::asm::Assembler;
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::{Interp, ProcConfig};
use emx_tie::ExtensionSet;

fn run(src: &str) -> (f64, emx_sim::ExecStats) {
    let p = Assembler::new().assemble(src).unwrap();
    let ext = ExtensionSet::empty();
    let mut sim = Interp::new(&p, &ext, ProcConfig::default());
    let stats = sim.run(100_000_000).unwrap().stats;
    let e = RtlEnergyEstimator::new()
        .estimate(&p, &ext, ProcConfig::default())
        .unwrap()
        .total
        .as_picojoules();
    (e, stats)
}

fn main() {
    // Interlock pair: same instructions, hazard broken by reordering.
    let with = ".data\nv: .word 3, 4\n.text\nmovi a2, 2000\nmovi a3, v\nl:\n\
                l32i a4, 0(a3)\nadd a5, a4, a4\nl32i a6, 4(a3)\nadd a7, a6, a6\n\
                addi a2, a2, -1\nbnez a2, l\nhalt";
    let without = ".data\nv: .word 3, 4\n.text\nmovi a2, 2000\nmovi a3, v\nl:\n\
                l32i a4, 0(a3)\nl32i a6, 4(a3)\nadd a5, a4, a4\nadd a7, a6, a6\n\
                addi a2, a2, -1\nbnez a2, l\nhalt";
    let (e1, s1) = run(with);
    let (e2, s2) = run(without);
    println!("interlocks: {} vs {}", s1.interlocks, s2.interlocks);
    println!("cycles:     {} vs {}", s1.total_cycles, s2.total_cycles);
    println!(
        "marginal interlock cost = {:.1} pJ",
        (e1 - e2) / (s1.interlocks as f64 - s2.interlocks as f64)
    );

    // Untaken branch pair: padding with untaken branches vs nops.
    let with = "movi a2, 2000\nmovi a3, 5\nl:\nbeqi a3, 9, x\nbnei a3, 5, x\nblti a3, 0, x\n\
                add a4, a3, a3\naddi a2, a2, -1\nbnez a2, l\nx: halt";
    let without = "movi a2, 2000\nmovi a3, 5\nl:\nnop\nnop\nnop\n\
                add a4, a3, a3\naddi a2, a2, -1\nbnez a2, l\nx: halt";
    let (e1, s1) = run(with);
    let (e2, s2) = run(without);
    let bu1 = s1.class_cycles[emx_isa::DynClass::BranchUntaken.index()];
    let bu2 = s2.class_cycles[emx_isa::DynClass::BranchUntaken.index()];
    println!("\nuntaken cycles: {bu1} vs {bu2}");
    println!(
        "marginal untaken-vs-nop cost = {:.1} pJ (nop itself ~?)",
        (e1 - e2) / (bu1 as f64 - bu2 as f64)
    );

    // Jump pair.
    let with = "movi a2, 2000\nl:\nj s1\ns1:\nj s2\ns2:\nadd a4, a2, a2\naddi a2, a2, -1\nbnez a2, l\nhalt";
    let without = "movi a2, 2000\nl:\nnop\nnop\nadd a4, a2, a2\naddi a2, a2, -1\nbnez a2, l\nhalt";
    let (e1, s1) = run(with);
    let (e2, s2) = run(without);
    let j1 = s1.class_cycles[emx_isa::DynClass::Jump.index()];
    let j2 = s2.class_cycles[emx_isa::DynClass::Jump.index()];
    println!("\njump cycles: {j1} vs {j2}");
    println!(
        "marginal jump-cycle cost = {:.1} pJ/cycle",
        (e1 - e2) / (j1 as f64 - j2 as f64)
    );
}
