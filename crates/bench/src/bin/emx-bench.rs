//! `emx-bench`: headless benchmark runner with versioned snapshots and
//! noise-aware regression gating.
//!
//! ```sh
//! emx-bench                                # run every suite, print stats
//! emx-bench lstsq --samples 5              # substring filter, small budget
//! emx-bench --list                         # print benchmark names, run nothing
//! emx-bench --json BENCH.json              # + write an emx.bench-report/1 snapshot
//! emx-bench --baseline BENCH_OLD.json      # run, then gate against a snapshot
//! emx-bench --baseline A.json --compare B.json
//!                                          # pure file-vs-file comparison (no run)
//! emx-bench --baseline A.json --threshold 25
//! emx-bench --baseline A.json --warn-only  # report regressions, exit 0
//! ```
//!
//! The regression gate uses the noise-aware rule from DESIGN.md §14: a
//! benchmark regresses only when its current p50 climbs above the
//! baseline's p90 *and* the p50 delta exceeds the threshold (default
//! 10 %). When the two reports' environment fingerprints differ (other
//! than the git revision), the comparison is printed but never fails —
//! cross-machine numbers are context, not a gate.

use std::process::ExitCode;

use emx_bench::compare::{self, DEFAULT_THRESHOLD_PCT};
use emx_bench::harness::{Bench, BenchOptions};
use emx_bench::report::{BenchReport, Environment, PhaseEntry};
use emx_bench::suites;
use emx_core::EmxError;
use emx_obs::Collector;
use emx_sim::{Interp, ProcConfig};

struct Options {
    bench: BenchOptions,
    json: Option<String>,
    baseline: Option<String>,
    compare: Option<String>,
    threshold_pct: f64,
    warn_only: bool,
}

const USAGE: &str = "usage: emx-bench [FILTER] [--list] [--samples <n>] \
                     [--json <out.json>] [--baseline <snapshot.json>] \
                     [--compare <snapshot.json>] [--threshold <pct>] \
                     [--warn-only]";

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, EmxError> {
    let mut options = Options {
        bench: BenchOptions::default(),
        json: None,
        baseline: None,
        compare: None,
        threshold_pct: DEFAULT_THRESHOLD_PCT,
        warn_only: false,
    };
    let missing = |what: &str| EmxError::usage(format!("{what}\n{USAGE}"));
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => options.bench.list = true,
            "--samples" => {
                let value = args
                    .next()
                    .ok_or_else(|| missing("--samples needs a value"))?;
                let n: usize = value
                    .parse()
                    .map_err(|_| missing(&format!("--samples: `{value}` is not a number")))?;
                if n < 2 {
                    return Err(missing("--samples must be at least 2"));
                }
                options.bench.samples = Some(n);
            }
            "--json" => {
                options.json = Some(args.next().ok_or_else(|| missing("--json needs a path"))?);
            }
            "--baseline" => {
                options.baseline = Some(
                    args.next()
                        .ok_or_else(|| missing("--baseline needs a path"))?,
                );
            }
            "--compare" => {
                options.compare = Some(
                    args.next()
                        .ok_or_else(|| missing("--compare needs a path"))?,
                );
            }
            "--threshold" => {
                let value = args
                    .next()
                    .ok_or_else(|| missing("--threshold needs a value"))?;
                options.threshold_pct = value
                    .parse()
                    .map_err(|_| missing(&format!("--threshold: `{value}` is not a number")))?;
            }
            "--warn-only" => options.warn_only = true,
            flag if flag.starts_with('-') => {
                return Err(missing(&format!("unknown flag `{flag}`")));
            }
            positional => {
                if options.bench.filter.is_some() {
                    return Err(missing(&format!(
                        "unexpected extra argument `{positional}`"
                    )));
                }
                options.bench.filter = Some(positional.to_owned());
            }
        }
    }
    if options.compare.is_some() && options.baseline.is_none() {
        return Err(missing("--compare requires --baseline"));
    }
    Ok(options)
}

fn load_report(path: &str) -> Result<BenchReport, EmxError> {
    let text = std::fs::read_to_string(path).map_err(|e| EmxError::io(path, &e))?;
    BenchReport::parse(&text).map_err(|e| EmxError::parse("bench.report", format!("`{path}`: {e}")))
}

/// Runs the ISS phase-attribution section: one profiled run per
/// simulator workload, filtered like any benchmark under the pseudo
/// group `phase/`.
fn phase_entries(options: &Options) -> Result<Vec<PhaseEntry>, EmxError> {
    let mut entries = Vec::new();
    for w in suites::simulator_workloads() {
        let name = format!("phase/{}", w.name());
        if options.bench.list {
            println!("{name}");
            continue;
        }
        if let Some(f) = &options.bench.filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let mut collector = Collector::new();
        let mut sim = Interp::new(w.program(), w.ext(), ProcConfig::default());
        let (_, profile) = sim
            .run_profiled(emx_bench::MAX_CYCLES, &mut collector)
            .map_err(|e| {
                EmxError::internal("bench.phase", format!("workload `{name}` failed: {e}"))
            })?;
        println!("\n{name} ({} instructions)", profile.steps());
        println!("{profile}");
        entries.push(PhaseEntry {
            workload: w.name().to_owned(),
            profile,
        });
    }
    Ok(entries)
}

fn gate(
    baseline: &BenchReport,
    current: &BenchReport,
    options: &Options,
) -> Result<ExitCode, EmxError> {
    let mismatches = baseline.environment.mismatches(&current.environment);
    let comparison = compare::compare(baseline, current, options.threshold_pct);
    print!("\n{}", compare::format_table(&comparison));
    if comparison.passed() {
        return Ok(ExitCode::SUCCESS);
    }
    if !mismatches.is_empty() {
        eprintln!(
            "warning: environment differs from baseline ({}); regressions reported but not gated",
            mismatches.join(", ")
        );
        return Ok(ExitCode::SUCCESS);
    }
    if options.warn_only {
        eprintln!("warning: regressions found (--warn-only, not gating)");
        return Ok(ExitCode::SUCCESS);
    }
    eprintln!(
        "error: {} benchmark(s) regressed beyond the noise band (threshold {}%)",
        comparison.regressions().count(),
        options.threshold_pct
    );
    Ok(ExitCode::from(1))
}

fn run(options: &Options) -> Result<ExitCode, EmxError> {
    // Pure file-vs-file mode: no benchmarks run, fully deterministic.
    if let (Some(base_path), Some(cur_path)) = (&options.baseline, &options.compare) {
        let baseline = load_report(base_path)?;
        let current = load_report(cur_path)?;
        return gate(&baseline, &current, options);
    }

    let mut bench = Bench::with_options(options.bench.clone());
    suites::all(&mut bench);
    let phases = phase_entries(options)?;
    let records = bench.finish();
    if options.bench.list {
        return Ok(ExitCode::SUCCESS);
    }

    let report = BenchReport::new(Environment::capture(), &records, phases);
    if let Some(path) = &options.json {
        std::fs::write(path, report.to_text()).map_err(|e| EmxError::io(path, &e))?;
        println!("\nbench report written to {path}");
    }

    match &options.baseline {
        None => Ok(ExitCode::SUCCESS),
        Some(path) => {
            let baseline = load_report(path)?;
            gate(&baseline, &report, options)
        }
    }
}

// Exit-code contract (shared by all emx binaries): 2 = usage error,
// 1 = bad input/data or failed regression gate, 3 = internal error.
fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("{}", e.message());
            return ExitCode::from(e.exit_code());
        }
    };
    match run(&options) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("emx-bench: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Options, EmxError> {
        parse_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_the_full_surface() {
        let o = opts(&[
            "lstsq",
            "--samples",
            "5",
            "--json",
            "out.json",
            "--baseline",
            "base.json",
            "--threshold",
            "25",
            "--warn-only",
        ])
        .unwrap();
        assert_eq!(o.bench.filter.as_deref(), Some("lstsq"));
        assert_eq!(o.bench.samples, Some(5));
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.baseline.as_deref(), Some("base.json"));
        assert_eq!(o.threshold_pct, 25.0);
        assert!(o.warn_only);
    }

    #[test]
    fn rejects_malformed_command_lines() {
        for args in [
            vec!["--frobnicate"],
            vec!["--samples"],
            vec!["--samples", "one"],
            vec!["--samples", "1"],
            vec!["--threshold", "fast"],
            vec!["a", "b"],
            vec!["--compare", "x.json"],
        ] {
            match opts(&args) {
                Ok(_) => panic!("{args:?} must be rejected"),
                Err(e) => assert_eq!(e.exit_code(), 2, "{args:?} must be a usage error"),
            }
        }
    }
}
