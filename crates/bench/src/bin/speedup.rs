//! Regenerates the paper's speedup claim (§V): once the macro-model is
//! built, estimating an application's energy takes "only a few seconds …
//! while the average time taken by WattWatcher … is several hours (an
//! average speedup of three orders of magnitude)".
//!
//! Here both paths are in-process simulators rather than a fast ISS vs a
//! commercial RTL simulation farm, so the measured ratio reflects the
//! cost gap between statistics-only simulation + a dot product and
//! full activity-trace generation + per-block switching-energy
//! integration. The *shape* of the claim — macro-model estimation is
//! orders of magnitude cheaper, enabling in-loop design-space
//! exploration — is the reproduced result; see EXPERIMENTS.md for the
//! honest quantitative comparison.

use std::time::Instant;

use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::ProcConfig;

fn main() {
    let c = emx_bench::characterize_default();
    let apps = emx_workloads::apps::all();
    let estimator = RtlEnergyEstimator::new();

    println!("Estimation-time comparison over the ten Table II applications\n");
    println!(
        "{:<18} {:>14} {:>14} {:>9}",
        "application", "macro-model", "RTL reference", "speedup"
    );

    let mut total_fast = 0.0f64;
    let mut total_slow = 0.0f64;
    for w in &apps {
        // Warm-up + best-of-3 to de-noise.
        let mut fast = f64::INFINITY;
        let mut slow = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            let est = c
                .model
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("estimation runs");
            std::hint::black_box(est.energy);
            fast = fast.min(t.elapsed().as_secs_f64());

            let t = Instant::now();
            let rep = estimator
                .estimate(w.program(), w.ext(), ProcConfig::default())
                .expect("reference runs");
            std::hint::black_box(rep.total);
            slow = slow.min(t.elapsed().as_secs_f64());
        }
        total_fast += fast;
        total_slow += slow;
        println!(
            "{:<18} {:>12.3} ms {:>12.3} ms {:>8.1}x",
            w.name(),
            fast * 1e3,
            slow * 1e3,
            slow / fast
        );
    }
    println!(
        "\ntotal: {:.3} ms vs {:.3} ms — average speedup {:.0}x",
        total_fast * 1e3,
        total_slow * 1e3,
        total_slow / total_fast
    );
    println!("paper: ~1000x (seconds vs hours, against a commercial RTL flow)");
}
