//! Suite-quality diagnostics: variance-inflation factors and leave-one-out
//! cross-validation of the characterization dataset.
//!
//! These quantify *why* the training suite is shaped the way it is (see
//! EXPERIMENTS.md): high VIF names macro-model variables the suite leaves
//! nearly collinear, and LOO errors approximate held-out application
//! accuracy far better than the in-fit residuals of Fig. 3 do.
//!
//! With `--report <report.json>` (a file written by `emx-characterize
//! --report`, schema `emx.characterize-report/1`) the binary first
//! replays that run's per-phase timings and per-case fitting errors, so
//! the in-fit residuals can be read side by side with the LOO errors
//! computed below.

use std::process::ExitCode;

use emx_core::{Characterizer, ModelSpec, TrainingCase};
use emx_obs::json::Value;
use emx_regress::diagnostics::{leave_one_out, variance_inflation};
use emx_regress::FitOptions;
use emx_sim::ProcConfig;

/// Prints the phase timings and per-case errors recorded in a
/// `emx.characterize-report/1` JSON file.
fn print_report(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let doc = Value::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("emx.characterize-report/1") => {}
        other => {
            return Err(format!(
                "`{path}` has schema {other:?}, expected \"emx.characterize-report/1\""
            ))
        }
    }

    println!("Characterization report ({path})\n");
    if let Some(timing) = doc.get("timing_us") {
        let us = |key: &str| timing.get(key).and_then(Value::as_u64).unwrap_or(0);
        println!(
            "  phases: ISS {} ms, reference {} ms, solve {} µs — speedup {:.0}×",
            us("iss_simulate") / 1000,
            us("reference_estimate") / 1000,
            us("solve"),
            doc.get("speedup").and_then(Value::as_f64).unwrap_or(0.0),
        );
    }
    if let Some(fit) = doc.get("fit") {
        let pct = |key: &str| fit.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
        println!(
            "  fit: R^2 = {:.5}, rms = {:.2}%, max |err| = {:.2}%\n",
            pct("r_squared"),
            pct("rms_percent_error"),
            pct("max_abs_percent_error"),
        );
    }
    for case in doc.get("cases").and_then(Value::as_array).unwrap_or(&[]) {
        println!(
            "  {:<16} {:>9} cycles  ISS {:>7} µs  reference {:>9} µs  in-fit {:>+7.2}%",
            case.get("name").and_then(Value::as_str).unwrap_or("?"),
            case.get("cycles").and_then(Value::as_u64).unwrap_or(0),
            case.get("iss_us").and_then(Value::as_u64).unwrap_or(0),
            case.get("reference_us")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            case.get("percent_error")
                .and_then(Value::as_f64)
                .unwrap_or(f64::NAN),
        );
    }
    println!();
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => {
                let Some(path) = args.next() else {
                    eprintln!("--report needs a file path");
                    return ExitCode::FAILURE;
                };
                if let Err(e) = print_report(&path) {
                    eprintln!("emx diagnostics: {e}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("usage: diagnostics [--report <report.json>] (unknown arg `{other}`)");
                return ExitCode::FAILURE;
            }
        }
    }
    suite_diagnostics();
    ExitCode::SUCCESS
}

fn suite_diagnostics() {
    let workloads = emx_workloads::suite::full_training_suite();
    let cases: Vec<TrainingCase<'_>> = workloads
        .iter()
        .map(|w| TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let characterizer = Characterizer::new(ProcConfig::default()).with_spec(ModelSpec::paper());
    let dataset = characterizer
        .build_dataset(&cases)
        .expect("training suite simulates");

    println!("Variance-inflation factors (collinearity of each variable)\n");
    let vif = variance_inflation(&dataset).expect("enough samples");
    for (name, v) in dataset.names().iter().zip(&vif) {
        let flag = if *v > 30.0 {
            "  <-- weakly identified"
        } else {
            ""
        };
        println!("  {name:<16} VIF = {v:>8.1}{flag}");
    }

    println!("\nLeave-one-out cross-validation (held-out prediction per program)\n");
    match leave_one_out(&dataset, FitOptions::default()) {
        Ok(report) => {
            for s in &report.samples {
                println!(
                    "  {:<16} observed {:>9.2} uJ  predicted {:>9.2} uJ  {:>+7.2}%",
                    s.label,
                    s.observed * 1e-6,
                    s.predicted * 1e-6,
                    s.percent
                );
            }
            for label in &report.sole_sources {
                println!("  {label:<16} sole signal source for some variable — not predictable");
            }
            println!(
                "\n  LOO rms = {:.2}%   LOO max |err| = {:.2}%",
                report.rms_percent, report.max_abs_percent
            );
            println!("  (compare: Table II application mean |err| ≈ 4%)");
        }
        Err(e) => println!(
            "  leave-one-out failed: {e} (a sample is the sole source of signal for some variable)"
        ),
    }
}
