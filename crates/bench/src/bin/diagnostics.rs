//! Suite-quality diagnostics: variance-inflation factors and leave-one-out
//! cross-validation of the characterization dataset.
//!
//! These quantify *why* the training suite is shaped the way it is (see
//! EXPERIMENTS.md): high VIF names macro-model variables the suite leaves
//! nearly collinear, and LOO errors approximate held-out application
//! accuracy far better than the in-fit residuals of Fig. 3 do.

use emx_core::{Characterizer, ModelSpec, TrainingCase};
use emx_regress::diagnostics::{leave_one_out, variance_inflation};
use emx_regress::FitOptions;
use emx_sim::ProcConfig;

fn main() {
    let workloads = emx_workloads::suite::full_training_suite();
    let cases: Vec<TrainingCase<'_>> = workloads
        .iter()
        .map(|w| TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let characterizer = Characterizer::new(ProcConfig::default()).with_spec(ModelSpec::paper());
    let dataset = characterizer
        .build_dataset(&cases)
        .expect("training suite simulates");

    println!("Variance-inflation factors (collinearity of each variable)\n");
    let vif = variance_inflation(&dataset).expect("enough samples");
    for (name, v) in dataset.names().iter().zip(&vif) {
        let flag = if *v > 30.0 {
            "  <-- weakly identified"
        } else {
            ""
        };
        println!("  {name:<16} VIF = {v:>8.1}{flag}");
    }

    println!("\nLeave-one-out cross-validation (held-out prediction per program)\n");
    match leave_one_out(&dataset, FitOptions::default()) {
        Ok(report) => {
            for s in &report.samples {
                println!(
                    "  {:<16} observed {:>9.2} uJ  predicted {:>9.2} uJ  {:>+7.2}%",
                    s.label,
                    s.observed * 1e-6,
                    s.predicted * 1e-6,
                    s.percent
                );
            }
            for label in &report.sole_sources {
                println!("  {label:<16} sole signal source for some variable — not predictable");
            }
            println!(
                "\n  LOO rms = {:.2}%   LOO max |err| = {:.2}%",
                report.rms_percent, report.max_abs_percent
            );
            println!("  (compare: Table II application mean |err| ≈ 4%)");
        }
        Err(e) => println!(
            "  leave-one-out failed: {e} (a sample is the sole source of signal for some variable)"
        ),
    }
}
