//! Regenerates Fig. 4: relative accuracy of the macro-model across four
//! custom-instruction choices for the Reed–Solomon application.
//!
//! The paper's claim is not absolute accuracy here but *tracking*: "the
//! energy estimates returned by both these approaches are comparable,
//! while the two profiles track one another. Thus, good relative accuracy
//! is achieved." Rank agreement across the design points is what an
//! energy-aware custom-instruction selection loop needs.

use emx_regress::stats;
use emx_workloads::reed_solomon::RsConfig;

fn main() {
    let c = emx_bench::characterize_default();

    println!("Fig. 4 — RS(15,11) codec energy under four custom-instruction choices\n");
    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>10}",
        "config", "estimate (uJ)", "reference (uJ)", "err (%)", "cycles"
    );
    let mut estimates = Vec::new();
    let mut references = Vec::new();
    for cfg in RsConfig::ALL {
        let w = cfg.workload();
        let row = emx_bench::evaluate(&c.model, &w);
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>+9.1} {:>10}",
            cfg.name(),
            row.estimate.as_microjoules(),
            row.reference.as_microjoules(),
            row.error_percent,
            row.cycles
        );
        estimates.push(row.estimate.as_picojoules());
        references.push(row.reference.as_picojoules());
    }

    let rho = stats::spearman(&estimates, &references);
    let r = stats::pearson(&estimates, &references);
    println!("\nprofile tracking: Spearman rank correlation = {rho:.3}, Pearson = {r:.4}");
    println!("(paper: the macro-model and WattWatcher profiles track one another)");
}
