//! Robustness sweep: the macro-model methodology is not tied to one base
//! configuration. Re-characterize on several micro-architectural variants
//! (cache geometry, miss penalties, branch cost) and check that Table II
//! accuracy holds on each — the characterization flow, not the specific
//! coefficient values, is the reproducible artifact.

use emx_core::{Characterizer, ModelSpec, TrainingCase};
use emx_regress::stats;
use emx_rtlpower::RtlEnergyEstimator;
use emx_sim::{CacheConfig, ProcConfig};

fn sweep_point(label: &str, config: ProcConfig) {
    let workloads = emx_workloads::suite::full_training_suite();
    let cases: Vec<TrainingCase<'_>> = workloads
        .iter()
        .map(|w| TrainingCase {
            name: w.name(),
            program: w.program(),
            ext: w.ext(),
        })
        .collect();
    let c = match Characterizer::new(config.clone())
        .with_spec(ModelSpec::paper())
        .characterize(&cases)
    {
        Ok(c) => c,
        Err(e) => {
            println!("{label:<34} characterization failed: {e}");
            return;
        }
    };

    let estimator = RtlEnergyEstimator::new();
    let mut errors = Vec::new();
    for w in emx_workloads::apps::all() {
        let est = c
            .model
            .estimate(w.program(), w.ext(), config.clone())
            .expect("estimates");
        let reference = estimator
            .estimate(w.program(), w.ext(), config.clone())
            .expect("reference runs");
        errors.push(est.energy.percent_error_vs(reference.total));
    }
    println!(
        "{label:<34} fit rms {:>5.2}%   app mean |err| {:>5.2}%   app max |err| {:>5.2}%",
        c.fit.rms_percent_error(),
        stats::mean_abs(&errors),
        stats::max_abs(&errors)
    );
}

fn main() {
    println!("Micro-architecture sweep: characterize + evaluate per configuration\n");

    sweep_point("T1040 default (16K 4-way, p=14)", ProcConfig::default());

    let two_kb = CacheConfig {
        sets: 32,
        ways: 2,
        line_bytes: 32,
    };
    sweep_point(
        "small caches (2K 2-way)",
        ProcConfig {
            icache: two_kb,
            dcache: two_kb,
            ..ProcConfig::default()
        },
    );

    sweep_point(
        "slow memory (p=40)",
        ProcConfig {
            icache_miss_penalty: 40,
            dcache_miss_penalty: 40,
            uncached_fetch_penalty: 30,
            ..ProcConfig::default()
        },
    );

    sweep_point(
        "deeper pipeline (taken=5, jump=3)",
        ProcConfig {
            branch_taken_cycles: 5,
            jump_cycles: 3,
            ..ProcConfig::default()
        },
    );
}
