//! Regenerates Table I: the fitted energy coefficients of the
//! characterized emx processor.

use emx_hwlib::Category;

fn main() {
    let c = emx_bench::characterize_default();

    println!("Table I — energy coefficients of the characterized emx processor");
    println!("(all values in pJ; per cycle, per event, or per unit f(C)·activation)\n");
    println!(
        "{:<16} {:<42} {:>10}",
        "coefficient", "description", "value"
    );

    let descriptions: &[(&str, &str)] = &[
        ("alpha_A", "arithmetic instruction (per cycle)"),
        ("alpha_L", "load instruction (per cycle)"),
        ("alpha_S", "store instruction (per cycle)"),
        ("alpha_J", "jump instruction (per cycle)"),
        ("alpha_Bt", "branch taken (per cycle)"),
        ("alpha_Bu", "branch untaken (per cycle)"),
        ("beta_icm", "instruction cache miss (per miss)"),
        ("beta_dcm", "data cache miss (per miss)"),
        ("beta_ucf", "uncached instruction fetch (per fetch)"),
        ("beta_ilk", "processor interlock (per stall)"),
        ("gamma_CI", "custom-instruction side effects (per cycle)"),
    ];
    for (name, desc) in descriptions {
        let v = c.model.coefficient(name).expect("paper template");
        println!("{name:<16} {desc:<42} {v:>10.1}");
    }
    for cat in Category::ALL {
        let name = format!("delta_{}", cat.var_name());
        let v = c.model.coefficient(&name).expect("paper template");
        println!(
            "{name:<16} {:<42} {v:>10.1}",
            format!("custom {} (per f(C)-weighted activation)", cat.paper_name()),
        );
    }

    println!(
        "\nfit: R^2 = {:.5}, rms error = {:.2}%, max |error| = {:.2}%  ({} training programs)",
        c.fit.r_squared(),
        c.fit.rms_percent_error(),
        c.fit.max_abs_percent_error(),
        c.fit.sample_errors().len(),
    );
    println!("paper's structural ordering: shifter > custom reg ~ TIE mac > TIE mult > mult > +/- > TIE add > csa > table > logic");
}
