//! Ablation studies A1–A5 (see DESIGN.md): quantifies each design choice
//! of the paper's macro-model by re-running characterization with the
//! choice removed and measuring Table II accuracy.

use emx_core::{ArithGranularity, ModelSpec};
use emx_workloads::suite;

fn evaluate_spec(label: &str, spec: ModelSpec) {
    let c = emx_bench::characterize_with_spec(spec);
    let rows = emx_bench::table2_rows(&c.model);
    let s = emx_bench::summarize(&rows);
    println!(
        "{label:<44} fit rms {:>5.2}%   app mean |err| {:>5.1}%   app max |err| {:>5.1}%",
        c.fit.rms_percent_error(),
        s.mean_abs,
        s.max_abs
    );
}

fn main() {
    println!("Ablation studies (Table II accuracy under template variants)\n");

    evaluate_spec("paper template (hybrid, 21 vars)", ModelSpec::paper());

    // A1: drop the structural variables — the conventional
    // instruction-level-only macro-model the paper argues is insufficient
    // for extensible processors.
    evaluate_spec(
        "A1: instruction-level only (no structural)",
        ModelSpec {
            structural: false,
            ..ModelSpec::paper()
        },
    );

    // A2: drop the custom→base side-effect variable n_CI.
    evaluate_spec(
        "A2: without the n_CI side-effect variable",
        ModelSpec {
            ci_side_effect: false,
            ..ModelSpec::paper()
        },
    );

    // A3: replace the clustered arithmetic class with per-functional-unit
    // variables ("such a clustering is convenient and later seen to be
    // accurate" — how much does finer granularity buy?).
    evaluate_spec(
        "A3: per-unit arithmetic granularity (25 vars)",
        ModelSpec {
            arith: ArithGranularity::PerUnit,
            ..ModelSpec::paper()
        },
    );

    // A4: drop the f(C) bit-width complexity weighting of the structural
    // variables (raw activation counts instead).
    evaluate_spec(
        "A4: without f(C) bit-width weighting",
        ModelSpec {
            width_complexity: false,
            ..ModelSpec::paper()
        },
    );

    // A5: suite diversity — characterize on the kernels alone (without
    // the calibration pairs), and on a deliberately narrowed suite.
    println!();
    {
        let kernels = suite::characterization_suite();
        let c = emx_bench::characterize_workloads(&kernels, ModelSpec::paper());
        let rows = emx_bench::table2_rows(&c.model);
        let s = emx_bench::summarize(&rows);
        println!(
            "{:<44} fit rms {:>5.2}%   app mean |err| {:>5.1}%   app max |err| {:>5.1}%",
            "A5a: kernels only (no calibration pairs)",
            c.fit.rms_percent_error(),
            s.mean_abs,
            s.max_abs
        );
    }
    {
        // Narrow suite: drop whole program families. The paper requires
        // the suite to "cover the instruction space" and "all the custom
        // hardware library components"; a suite without, e.g., the
        // uncached and cache-thrashing programs leaves columns of the
        // design matrix identically zero and the normal equations
        // singular — the regression itself reports the coverage gap.
        use emx_core::{Characterizer, TrainingCase};
        use emx_sim::ProcConfig;
        let mut narrow = suite::full_training_suite();
        narrow.retain(|w| {
            w.name().starts_with("tie_") || w.name() == "matmul" || w.name().starts_with("cal_")
        });
        let cases: Vec<TrainingCase<'_>> = narrow
            .iter()
            .map(|w| TrainingCase {
                name: w.name(),
                program: w.program(),
                ext: w.ext(),
            })
            .collect();
        match Characterizer::new(ProcConfig::default()).characterize(&cases) {
            Ok(c) => {
                let rows = emx_bench::table2_rows(&c.model);
                let s = emx_bench::summarize(&rows);
                println!(
                    "{:<44} fit rms {:>5.2}%   app mean |err| {:>5.1}%   app max |err| {:>5.1}%",
                    "A5b: narrowed suite (custom kernels + cal)",
                    c.fit.rms_percent_error(),
                    s.mean_abs,
                    s.max_abs
                );
            }
            Err(e) => println!(
                "{:<44} cannot characterize: {e} (coverage gap — the paper's diversity requirement)",
                "A5b: narrowed suite (custom kernels + cal)"
            ),
        }
    }
}
