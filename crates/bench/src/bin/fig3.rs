//! Regenerates Fig. 3: fitting error of the 25 characterization test
//! programs.

fn main() {
    let c = emx_bench::characterize_default();
    println!("Fig. 3 — fitting error of the test programs\n");
    println!(
        "{:<4} {:<16} {:>14} {:>14} {:>9}",
        "#", "program", "reference (uJ)", "fitted (uJ)", "err (%)"
    );
    for (i, s) in c.fit.sample_errors().iter().enumerate() {
        println!(
            "{:<4} {:<16} {:>14.2} {:>14.2} {:>+9.2}",
            i + 1,
            s.label,
            s.observed * 1e-6,
            s.fitted * 1e-6,
            s.percent
        );
    }
    println!(
        "\nmax |error| = {:.2}%   rms = {:.2}%   R^2 = {:.5}",
        c.fit.max_abs_percent_error(),
        c.fit.rms_percent_error(),
        c.fit.r_squared()
    );
    println!("paper: max < 8.9%, rms = 3.8%");
}
