//! Regenerates Table II: application energy estimates vs the RTL-level
//! reference, for the ten held-out applications with custom instructions.

fn main() {
    let c = emx_bench::characterize_default();
    let rows = emx_bench::table2_rows(&c.model);
    println!("Table II — application energy estimates: accuracy results\n");
    print!("{}", emx_bench::format_table2(&rows));
    println!("paper: max |error| = 8.5%, mean |error| = 3.3%");
}
