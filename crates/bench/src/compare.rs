//! Noise-aware comparison of two `emx.bench-report/1` snapshots.
//!
//! Plain percent-delta gates flap: micro-benchmarks jitter by several
//! percent run to run, so a naive `p50 > p50 × 1.05` check raises false
//! alarms weekly. The rule here demands that the *distributions*
//! separate before it believes a delta (see DESIGN.md §14):
//!
//! * **regressed** — current p50 above the baseline's p90 (the runs'
//!   noise bands no longer overlap) *and* the p50 delta exceeds the
//!   threshold;
//! * **improved** — mirror image: current p90 below the baseline's p50
//!   and the delta exceeds the threshold downward;
//! * **unchanged** — everything else, including benchmarks whose bands
//!   overlap no matter how large the nominal delta is.

use crate::report::{BenchEntry, BenchReport};

/// Default p50 delta (percent) a verdict must exceed.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Per-benchmark comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Noise bands separated upward and the delta beat the threshold.
    Regressed,
    /// Noise bands separated downward and the delta beat the threshold.
    Improved,
    /// Within noise (or within threshold).
    Unchanged,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Unchanged => "ok",
        }
    }
}

/// One benchmark present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Full `group/id` name.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub base_p50: u64,
    /// Baseline 90th percentile, nanoseconds.
    pub base_p90: u64,
    /// Current median, nanoseconds.
    pub cur_p50: u64,
    /// Current 90th percentile, nanoseconds.
    pub cur_p90: u64,
    /// Signed p50 delta, percent of the baseline.
    pub delta_pct: f64,
    /// The verdict under the noise-aware rule.
    pub verdict: Verdict,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// One row per benchmark present in both reports, in current-report
    /// order.
    pub rows: Vec<Row>,
    /// Benchmarks in the baseline only (renamed or removed).
    pub missing: Vec<String>,
    /// Benchmarks in the current report only (new).
    pub added: Vec<String>,
}

impl Comparison {
    /// Rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed)
    }

    /// `true` when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

fn judge(base: &BenchEntry, cur: &BenchEntry, threshold_pct: f64) -> Row {
    let delta_pct = if base.p50_ns == 0 {
        0.0
    } else {
        100.0 * (cur.p50_ns as f64 - base.p50_ns as f64) / base.p50_ns as f64
    };
    let verdict = if cur.p50_ns > base.p90_ns && delta_pct > threshold_pct {
        Verdict::Regressed
    } else if cur.p90_ns < base.p50_ns && delta_pct < -threshold_pct {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    };
    Row {
        name: cur.name.clone(),
        base_p50: base.p50_ns,
        base_p90: base.p90_ns,
        cur_p50: cur.p50_ns,
        cur_p90: cur.p90_ns,
        delta_pct,
        verdict,
    }
}

/// Compares `current` against `baseline` benchmark by benchmark.
/// `threshold_pct` is the minimum p50 delta (percent) a verdict needs;
/// pass [`DEFAULT_THRESHOLD_PCT`] unless the caller overrides it.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold_pct: f64) -> Comparison {
    let rows = current
        .benchmarks
        .iter()
        .filter_map(|cur| {
            baseline
                .benchmark(&cur.name)
                .map(|base| judge(base, cur, threshold_pct))
        })
        .collect();
    let missing = baseline
        .benchmarks
        .iter()
        .filter(|b| current.benchmark(&b.name).is_none())
        .map(|b| b.name.clone())
        .collect();
    let added = current
        .benchmarks
        .iter()
        .filter(|b| baseline.benchmark(&b.name).is_none())
        .map(|b| b.name.clone())
        .collect();
    Comparison {
        rows,
        missing,
        added,
    }
}

/// Renders the comparison as a fixed-width table plus a summary line.
pub fn format_table(comparison: &Comparison) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>12} {:>12} {:>8}  {}\n",
        "benchmark", "base p50", "cur p50", "delta", "verdict"
    ));
    for row in &comparison.rows {
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>+7.1}%  {}\n",
            row.name,
            crate::harness::fmt_nanos(row.base_p50),
            crate::harness::fmt_nanos(row.cur_p50),
            row.delta_pct,
            row.verdict.label()
        ));
    }
    for name in &comparison.missing {
        out.push_str(&format!("{name:<40} missing from current run\n"));
    }
    for name in &comparison.added {
        out.push_str(&format!("{name:<40} new (no baseline)\n"));
    }
    let regressed = comparison.regressions().count();
    let improved = comparison
        .rows
        .iter()
        .filter(|r| r.verdict == Verdict::Improved)
        .count();
    out.push_str(&format!(
        "\n{} compared: {} regressed, {} improved, {} unchanged\n",
        comparison.rows.len(),
        regressed,
        improved,
        comparison.rows.len() - regressed - improved
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::BenchRecord;
    use crate::report::{BenchReport, Environment, PhaseEntry};
    use emx_obs::Histogram;

    fn env() -> Environment {
        Environment {
            rustc: "rustc 1.80.0".into(),
            target: "x86_64-linux".into(),
            cpu_count: 8,
            opt_level: "release".into(),
            git_rev: "abc".into(),
        }
    }

    fn report_with(entries: &[(&str, &[u64])]) -> BenchReport {
        let records: Vec<BenchRecord> = entries
            .iter()
            .map(|(name, samples)| {
                let mut hist = Histogram::new();
                for &v in *samples {
                    hist.record(v);
                }
                BenchRecord {
                    group: "g".into(),
                    id: (*name).to_owned(),
                    samples: samples.len(),
                    iters_per_sample: 1,
                    throughput_elements: None,
                    hist,
                }
            })
            .collect();
        BenchReport::new(env(), &records, Vec::<PhaseEntry>::new())
    }

    #[test]
    fn self_comparison_is_clean() {
        let report = report_with(&[("a", &[100, 110, 120]), ("b", &[5000, 5100, 5200])]);
        let cmp = compare(&report, &report, DEFAULT_THRESHOLD_PCT);
        assert!(cmp.passed());
        assert_eq!(cmp.rows.len(), 2);
        assert!(cmp.missing.is_empty() && cmp.added.is_empty());
        assert!(cmp.rows.iter().all(|r| r.verdict == Verdict::Unchanged));
    }

    #[test]
    fn clear_slowdown_regresses() {
        let base = report_with(&[("a", &[1000, 1000, 1100])]);
        let cur = report_with(&[("a", &[4000, 4000, 4400])]);
        let cmp = compare(&base, &cur, DEFAULT_THRESHOLD_PCT);
        assert!(!cmp.passed());
        assert_eq!(cmp.rows[0].verdict, Verdict::Regressed);
        assert!(cmp.rows[0].delta_pct > 100.0);
    }

    #[test]
    fn overlapping_bands_stay_unchanged_despite_large_p50_delta() {
        // Baseline is noisy: p90 far above p50. A current p50 inside the
        // baseline's band is not evidence of a regression.
        let base = report_with(&[(
            "a",
            &[1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000, 4000, 4000],
        )]);
        let cur = report_with(&[("a", &[2000, 2000, 2000])]);
        let cmp = compare(&base, &cur, DEFAULT_THRESHOLD_PCT);
        let row = &cmp.rows[0];
        assert!(row.delta_pct > 50.0, "delta {}", row.delta_pct);
        assert_eq!(row.verdict, Verdict::Unchanged);
    }

    #[test]
    fn clear_speedup_improves() {
        let base = report_with(&[("a", &[4000, 4000, 4400])]);
        let cur = report_with(&[("a", &[1000, 1000, 1100])]);
        let cmp = compare(&base, &cur, DEFAULT_THRESHOLD_PCT);
        assert_eq!(cmp.rows[0].verdict, Verdict::Improved);
        assert!(cmp.passed(), "improvements never fail the gate");
    }

    #[test]
    fn renames_are_reported_not_judged() {
        let base = report_with(&[("old", &[100, 100])]);
        let cur = report_with(&[("new", &[100, 100])]);
        let cmp = compare(&base, &cur, DEFAULT_THRESHOLD_PCT);
        assert!(cmp.rows.is_empty());
        assert_eq!(cmp.missing, vec!["g/old".to_owned()]);
        assert_eq!(cmp.added, vec!["g/new".to_owned()]);
        assert!(cmp.passed());
        let table = format_table(&cmp);
        assert!(table.contains("missing from current run"));
        assert!(table.contains("new (no baseline)"));
    }
}
