//! End-to-end tests of the `emx-bench` binary: exit-code contract,
//! snapshot validity, self-comparison, and the regression gate against
//! a doctored (artificially fast) baseline.

use std::path::PathBuf;
use std::process::{Command, Output};

use emx_bench::report::BenchReport;

fn emx_bench(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_emx-bench"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("emx-bench-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn list_prints_names_and_runs_nothing() {
    let dir = temp_dir("list");
    let out = emx_bench(&["--list"], &dir);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "iss/matmul",
        "estimation/macro_model/gcd",
        "characterization/full_flow",
        "lstsq/qr/25",
        "dse/explore/cold_cache",
        "phase/crc32",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
    // --list is instant, so it must not have measured anything.
    assert!(!stdout.contains("p50"), "{stdout}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let dir = temp_dir("usage");
    for args in [
        &["--frobnicate"][..],
        &["--samples"][..],
        &["--samples", "one"][..],
        &["--compare", "x.json"][..],
        &["a", "b"][..],
    ] {
        let out = emx_bench(args, &dir);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn missing_baseline_file_is_an_input_error() {
    let dir = temp_dir("missing");
    let out = emx_bench(
        &["--baseline", "no-such.json", "--compare", "no-such.json"],
        &dir,
    );
    assert_eq!(out.status.code(), Some(1));
}

/// One real (tiny) run drives the full snapshot surface: schema-valid
/// JSON with environment, statistics, histogram buckets, and a phase
/// breakdown; clean self-comparison; and a regression verdict against
/// a baseline doctored to look 4× faster.
#[test]
fn snapshot_compare_and_gate_work_end_to_end() {
    let dir = temp_dir("snapshot");
    let snapshot = dir.join("smoke.json");
    let out = emx_bench(&["matmul", "--samples", "3", "--json", "smoke.json"], &dir);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The snapshot parses under the schema and carries everything the
    // report promises.
    let text = std::fs::read_to_string(&snapshot).unwrap();
    assert!(text.contains("emx.bench-report/1"));
    let report = BenchReport::parse(&text).expect("snapshot is schema-valid");
    assert!(report.environment.cpu_count > 0);
    assert_ne!(report.environment.opt_level, "");
    let entry = report.benchmark("iss/matmul").expect("filtered bench ran");
    assert_eq!(entry.samples, 3);
    assert!(entry.p50_ns > 0 && entry.p50_ns <= entry.p90_ns);
    assert!(
        entry.hist.buckets().count() > 0,
        "histogram buckets present"
    );
    assert_eq!(entry.hist.count(), 3);
    let phase = report
        .phases
        .iter()
        .find(|p| p.workload == "matmul")
        .expect("phase breakdown present");
    assert!(phase.profile.total_ns() > 0);
    assert!(phase.profile.steps() > 0);

    // Self-comparison is deterministic and clean.
    let out = emx_bench(
        &["--baseline", "smoke.json", "--compare", "smoke.json"],
        &dir,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("0 regressed"), "{stdout}");

    // Doctor a baseline that claims to be 4× faster: the current run
    // then sits far above its p90 band and must fail the gate.
    let mut doctored = report.clone();
    for entry in &mut doctored.benchmarks {
        entry.min_ns /= 4;
        entry.p50_ns /= 4;
        entry.p90_ns /= 4;
        entry.mean_ns /= 4.0;
    }
    std::fs::write(dir.join("doctored.json"), doctored.to_text()).unwrap();
    let out = emx_bench(
        &["--baseline", "doctored.json", "--compare", "smoke.json"],
        &dir,
    );
    assert_eq!(out.status.code(), Some(1), "4× slowdown must gate");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // --warn-only downgrades the same comparison to exit 0.
    let out = emx_bench(
        &[
            "--baseline",
            "doctored.json",
            "--compare",
            "smoke.json",
            "--warn-only",
        ],
        &dir,
    );
    assert!(out.status.success());

    // A cross-machine baseline (different fingerprint) warns instead of
    // gating, even with real regressions.
    let mut foreign = doctored.clone();
    foreign.environment.cpu_count += 64;
    std::fs::write(dir.join("foreign.json"), foreign.to_text()).unwrap();
    let out = emx_bench(
        &["--baseline", "foreign.json", "--compare", "smoke.json"],
        &dir,
    );
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("environment differs"), "{stderr}");
}
