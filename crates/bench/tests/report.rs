//! Report round-trip properties and the regression gate's behaviour on
//! real measured distributions: a deliberately slowed benchmark must
//! trip the gate, and a report must always be clean against itself.

use proptest::prelude::*;

use emx_bench::compare::{self, Verdict, DEFAULT_THRESHOLD_PCT};
use emx_bench::harness::{Bench, BenchOptions, BenchRecord};
use emx_bench::report::{BenchEntry, BenchReport, Environment, PhaseEntry};
use emx_obs::Histogram;

fn test_environment() -> Environment {
    Environment {
        rustc: "rustc 1.80.0 (test)".into(),
        target: "x86_64-linux".into(),
        cpu_count: 8,
        opt_level: "release".into(),
        git_rev: "0123456789ab".into(),
    }
}

fn record(group: &str, id: &str, samples: &[u64]) -> BenchRecord {
    let mut hist = Histogram::new();
    for &v in samples {
        hist.record(v);
    }
    BenchRecord {
        group: group.to_owned(),
        id: id.to_owned(),
        samples: samples.len(),
        iters_per_sample: 1,
        throughput_elements: None,
        hist,
    }
}

/// Measures the same two closures twice through the real harness — one
/// fast, one ~20× slower in the second run — and checks the gate trips
/// on the slowed one only.
#[test]
fn slowed_benchmark_trips_the_gate() {
    fn spin(rounds: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..rounds {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            std::hint::black_box(acc);
        }
        acc
    }
    let measure = |slow_rounds: u64| -> BenchReport {
        let mut bench = Bench::with_options(BenchOptions {
            samples: Some(5),
            ..BenchOptions::default()
        });
        let mut group = bench.group("gate");
        group.bench("steady", || spin(20_000));
        group.bench("victim", || spin(slow_rounds));
        group.finish();
        BenchReport::new(test_environment(), &bench.finish(), Vec::new())
    };

    let baseline = measure(20_000);
    let slowed = measure(400_000);

    // Compare at a 100 % threshold: host scheduling noise between the
    // two passes can exceed the default 10 % on a loaded machine, but
    // only the deliberate 20× slowdown clears a 2× bar.
    let cmp = compare::compare(&baseline, &slowed, 100.0);
    assert!(!cmp.passed(), "a 20× slowdown must regress");
    let victim = cmp.rows.iter().find(|r| r.name == "gate/victim").unwrap();
    assert_eq!(victim.verdict, Verdict::Regressed);
    assert!(victim.delta_pct > 100.0, "delta {}", victim.delta_pct);

    // The untouched benchmark stays inside its own noise band.
    let steady = cmp.rows.iter().find(|r| r.name == "gate/steady").unwrap();
    assert_ne!(steady.verdict, Verdict::Regressed);

    // And a report is always clean against itself.
    let self_cmp = compare::compare(&baseline, &baseline, DEFAULT_THRESHOLD_PCT);
    assert!(self_cmp.passed());
    assert!(self_cmp.rows.iter().all(|r| r.delta_pct == 0.0));
}

/// Strategy for plausible per-iteration latencies (ns): sub-µs to
/// tens of ms.
fn latencies() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(100u64..50_000_000, 2..40)
}

proptest! {
    #[test]
    fn report_round_trip_is_exact(
        a in latencies(),
        b in latencies(),
        throughput in (any::<bool>(), 1u64..1_000_000).prop_map(|(some, v)| some.then_some(v)),
    ) {
        let mut first = record("iss", "alpha", &a);
        first.throughput_elements = throughput;
        let second = record("lstsq", "qr/25", &b);
        let report = BenchReport::new(
            test_environment(),
            &[first, second],
            Vec::<PhaseEntry>::new(),
        );
        let back = BenchReport::parse(&report.to_text()).expect("round-trip parses");
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.to_text(), report.to_text());
    }

    #[test]
    fn entry_stats_agree_with_their_histogram(samples in latencies()) {
        let entry = BenchEntry::from_record(&record("g", "x", &samples));
        prop_assert_eq!(entry.min_ns, entry.hist.min());
        prop_assert_eq!(entry.p50_ns, entry.hist.percentile(50.0));
        prop_assert_eq!(entry.p90_ns, entry.hist.percentile(90.0));
        prop_assert!(entry.min_ns <= entry.p50_ns && entry.p50_ns <= entry.p90_ns);
        prop_assert_eq!(entry.hist.count(), samples.len() as u64);
    }

    #[test]
    fn self_comparison_never_regresses(a in latencies(), b in latencies()) {
        let report = BenchReport::new(
            test_environment(),
            &[record("g", "a", &a), record("g", "b", &b)],
            Vec::new(),
        );
        let cmp = compare::compare(&report, &report, DEFAULT_THRESHOLD_PCT);
        prop_assert!(cmp.passed());
        prop_assert!(cmp.missing.is_empty() && cmp.added.is_empty());
    }
}
