//! The `emx.dse-shard-report/1` artifact and the byte-deterministic
//! merge of K shards back into one `emx.dse-report/1`.
//!
//! A shard run (see [`crate::shard`]) evaluates one mask range of the
//! space and writes a **shard report**: its evaluated rows, its
//! contained failures, the extraction-cache delta it produced, the
//! `evaluated`/`reused` counters, and the partition fingerprint that
//! identifies which partition of which search it belongs to. [`merge`]
//! recombines K such artifacts:
//!
//! * it refuses whole on any defect — a truncated file, a foreign
//!   schema, a fingerprint conflict, a missing or duplicated shard
//!   index, or rows that do not add up to the partition's survivor
//!   count all yield a typed [`DseError`] and **no** output (a partial
//!   merge would masquerade as a complete search);
//! * on success it rebuilds the [`ReportInputs`] of the equivalent
//!   single-process run — candidates re-sorted into global
//!   ascending-mask order, failures re-sorted by name — so rendering
//!   them through [`crate::report::render`] is byte-identical to the
//!   report one process would have written;
//! * the shard cache deltas fold into one [`EstimationCache`], ready
//!   for the existing atomic-save/salvage machinery, which is what
//!   makes the *next* refit incremental: re-exploring over the merged
//!   cache re-prices every candidate without a single new ISS pass.

use emx_obs::json::Value;

use crate::cache::EstimationCache;
use crate::engine::Exploration;
use crate::error::DseError;
use crate::report::{self, ReportCandidate, ReportFailure, ReportInputs};
use crate::shard::ShardSpec;

/// The per-shard document schema.
pub const SHARD_SCHEMA: &str = "emx.dse-shard-report/1";

/// One shard's contribution to a partitioned search — everything the
/// merge needs to reconstruct the single-process outcome.
#[derive(Debug)]
pub struct ShardReport {
    /// Which shard of the partition this is.
    pub shard: ShardSpec,
    /// The partition fingerprint all sibling shards must share.
    pub partition_fingerprint: u64,
    /// Name of the explored space.
    pub workload: String,
    /// The area budget applied, if any.
    pub budget: Option<f64>,
    /// The space's option table (name/area pairs, declaration order).
    pub options: Vec<(String, f64)>,
    /// Subsets walked by the full enumeration (global, not per shard).
    pub enumerated: usize,
    /// Subsets dropped for exceeding the budget (global).
    pub over_budget: usize,
    /// Subsets dropped as dominated (global).
    pub pruned: usize,
    /// Global survivor count of the full enumeration — what the shards'
    /// evaluated plus failed rows must sum to.
    pub survivors_total: usize,
    /// Extractions this shard actually simulated (cache misses).
    pub evaluated: usize,
    /// Candidates this shard priced from cached extractions.
    pub reused: usize,
    /// This shard's evaluated rows, in ascending-mask order.
    pub candidates: Vec<ReportCandidate>,
    /// This shard's contained failures, sorted by name.
    pub failed: Vec<ReportFailure>,
    /// The extraction-cache entries this shard's run added.
    pub cache_delta: EstimationCache,
    /// Where this report came from (file path), for error messages.
    /// Not serialized.
    pub source_name: String,
}

impl ShardReport {
    /// Captures a shard exploration as a report, given the space's
    /// option table and the cache delta the run produced (see
    /// [`EstimationCache::delta_since`]).
    pub fn from_exploration(
        exploration: &Exploration,
        options: &[(String, f64)],
        cache_delta: EstimationCache,
    ) -> ShardReport {
        let inputs = report::inputs(exploration, options);
        ShardReport {
            shard: exploration.shard,
            partition_fingerprint: exploration.partition_fingerprint,
            workload: inputs.workload,
            budget: inputs.budget,
            options: inputs.options,
            enumerated: inputs.enumerated,
            over_budget: inputs.over_budget,
            pruned: inputs.pruned,
            survivors_total: exploration.survivors_total,
            evaluated: exploration.evaluated,
            reused: exploration.reused,
            candidates: inputs.candidates,
            failed: inputs.failed,
            cache_delta,
            source_name: "<memory>".to_owned(),
        }
    }

    /// Serializes the shard report. Like the main report, the document
    /// is byte-deterministic: independent of `--jobs`, dependent on
    /// cache warmth only through the honest `evaluated`/`reused`
    /// counters and the delta itself.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object();
        doc.set("schema", SHARD_SCHEMA);
        let mut shard = Value::object();
        shard.set("index", u64::from(self.shard.index()));
        shard.set("count", u64::from(self.shard.count()));
        doc.set("shard", shard);
        // Hex text: a u64 hash does not survive the JSON number type.
        doc.set(
            "partition_fingerprint",
            format!("{:016x}", self.partition_fingerprint),
        );
        doc.set("workload", self.workload.as_str());
        match self.budget {
            Some(b) => doc.set("budget", b),
            None => doc.set("budget", Value::Null),
        }
        let mut opts = Value::array();
        for (name, area) in &self.options {
            let mut o = Value::object();
            o.set("name", name.as_str());
            o.set("area", *area);
            opts.push(o);
        }
        doc.set("options", opts);
        doc.set("enumerated", self.enumerated as u64);
        doc.set("over_budget", self.over_budget as u64);
        doc.set("pruned", self.pruned as u64);
        doc.set("survivors", self.survivors_total as u64);
        doc.set("evaluated", self.evaluated as u64);
        doc.set("reused", self.reused as u64);

        let mut candidates = Value::array();
        for c in &self.candidates {
            let mut v = Value::object();
            v.set("name", c.name.as_str());
            v.set("mask", c.mask as u64);
            let mut names = Value::array();
            for o in &c.options {
                names.push(o.as_str());
            }
            v.set("options", names);
            v.set("workload", c.workload.as_str());
            v.set("area", c.area);
            v.set("energy_pj", c.energy_pj);
            v.set("cycles", c.cycles);
            candidates.push(v);
        }
        doc.set("candidates", candidates);

        let mut failed = Value::array();
        for f in &self.failed {
            let mut v = Value::object();
            v.set("name", f.name.as_str());
            v.set("code", f.code.as_str());
            v.set("error", f.message.as_str());
            failed.push(v);
        }
        doc.set("failed_candidates", failed);

        // The delta rides along as a complete `emx.dse-cache/2`
        // document, so the merge can reuse the cache parser's strict
        // validation unchanged.
        doc.set("cache_delta", self.cache_delta.to_json());
        doc
    }

    /// Parses a shard report, naming `source_name` (the file path) in
    /// any error.
    ///
    /// # Errors
    ///
    /// [`DseError::ShardSchemaMismatch`] for a foreign `schema`;
    /// [`DseError::ShardReportCorrupt`] for anything else wrong with
    /// the document — unparseable JSON (a truncated write), missing or
    /// mistyped fields, an invalid shard index, a damaged cache delta.
    pub fn parse(text: &str, source_name: &str) -> Result<ShardReport, DseError> {
        let corrupt = |detail: String| DseError::ShardReportCorrupt {
            source_name: source_name.to_owned(),
            detail,
        };
        let doc = Value::parse(text).map_err(|e| corrupt(format!("not valid JSON: {e}")))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(SHARD_SCHEMA) => {}
            other => {
                return Err(DseError::ShardSchemaMismatch {
                    source_name: source_name.to_owned(),
                    found: other.unwrap_or("<missing>").to_owned(),
                })
            }
        }
        let count = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| corrupt(format!("missing or non-integer `{key}`")))
        };
        let shard_field = |key: &str| {
            doc.get("shard")
                .and_then(|s| s.get(key))
                .and_then(Value::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| corrupt(format!("missing or non-integer `shard.{key}`")))
        };
        let shard = ShardSpec::new(shard_field("index")?, shard_field("count")?)
            .map_err(|e| corrupt(e.to_string()))?;
        let fingerprint_text = doc
            .get("partition_fingerprint")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("missing `partition_fingerprint`".to_owned()))?;
        let partition_fingerprint = u64::from_str_radix(fingerprint_text, 16)
            .map_err(|_| corrupt(format!("bad partition fingerprint `{fingerprint_text}`")))?;
        let workload = doc
            .get("workload")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("missing `workload`".to_owned()))?
            .to_owned();
        let budget = match doc.get("budget") {
            Some(Value::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| corrupt("non-numeric `budget`".to_owned()))?,
            ),
            None => return Err(corrupt("missing `budget`".to_owned())),
        };
        let mut options = Vec::new();
        for o in doc
            .get("options")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("missing `options` array".to_owned()))?
        {
            let name = o
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| corrupt("option lacks a `name`".to_owned()))?;
            let area = o
                .get("area")
                .and_then(Value::as_f64)
                .ok_or_else(|| corrupt(format!("option `{name}` lacks an `area`")))?;
            options.push((name.to_owned(), area));
        }
        let mut candidates = Vec::new();
        for c in doc
            .get("candidates")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("missing `candidates` array".to_owned()))?
        {
            let name = c
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| corrupt("candidate lacks a `name`".to_owned()))?
                .to_owned();
            let field = |key: &str| {
                c.get(key)
                    .ok_or_else(|| corrupt(format!("candidate `{name}` lacks `{key}`")))
            };
            let mut names = Vec::new();
            for o in field("options")?
                .as_array()
                .ok_or_else(|| corrupt(format!("candidate `{name}` has non-array options")))?
            {
                names.push(
                    o.as_str()
                        .ok_or_else(|| corrupt(format!("candidate `{name}` has a bad option")))?
                        .to_owned(),
                );
            }
            candidates.push(ReportCandidate {
                mask: field("mask")?
                    .as_u64()
                    .ok_or_else(|| corrupt(format!("candidate `{name}` has a bad mask")))?
                    as usize,
                options: names,
                workload: field("workload")?
                    .as_str()
                    .ok_or_else(|| corrupt(format!("candidate `{name}` has a bad workload")))?
                    .to_owned(),
                area: field("area")?
                    .as_f64()
                    .ok_or_else(|| corrupt(format!("candidate `{name}` has a bad area")))?,
                energy_pj: field("energy_pj")?
                    .as_f64()
                    .ok_or_else(|| corrupt(format!("candidate `{name}` has a bad energy")))?,
                cycles: field("cycles")?
                    .as_u64()
                    .ok_or_else(|| corrupt(format!("candidate `{name}` has bad cycles")))?,
                name,
            });
        }
        let mut failed = Vec::new();
        for f in doc
            .get("failed_candidates")
            .and_then(Value::as_array)
            .ok_or_else(|| corrupt("missing `failed_candidates` array".to_owned()))?
        {
            let text = |key: &str| {
                f.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| corrupt(format!("failed candidate lacks `{key}`")))
            };
            failed.push(ReportFailure {
                name: text("name")?,
                code: text("code")?,
                message: text("error")?,
            });
        }
        let delta_doc = doc
            .get("cache_delta")
            .ok_or_else(|| corrupt("missing `cache_delta`".to_owned()))?;
        let cache_delta = EstimationCache::from_json_text(&delta_doc.to_string())
            .map_err(|e| corrupt(format!("bad cache delta: {e}")))?;
        Ok(ShardReport {
            shard,
            partition_fingerprint,
            workload,
            budget,
            options,
            enumerated: count("enumerated")?,
            over_budget: count("over_budget")?,
            pruned: count("pruned")?,
            survivors_total: count("survivors")?,
            evaluated: count("evaluated")?,
            reused: count("reused")?,
            candidates,
            failed,
            cache_delta,
            source_name: source_name.to_owned(),
        })
    }
}

/// The successful recombination of a complete partition.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The reconstructed single-process report inputs — render with
    /// [`crate::report::render`] for the byte-identical
    /// `emx.dse-report/1`.
    pub inputs: ReportInputs,
    /// All shard cache deltas folded into one cache.
    pub cache_delta: EstimationCache,
    /// Total extractions simulated across the shards.
    pub evaluated: usize,
    /// Total candidates priced from cached extractions.
    pub reused: usize,
    /// How many shards were merged.
    pub shards: u32,
}

/// Merges a complete set of shard reports. All-or-nothing: any defect
/// in any input yields a typed error and no output.
///
/// # Errors
///
/// * [`DseError::ShardFingerprintMismatch`] — inputs from different
///   partitions (space, budget, model, simulator, or shard count).
/// * [`DseError::ShardDuplicate`] / [`DseError::ShardMissing`] — the
///   index set is not exactly `1..=count`.
/// * [`DseError::ShardReportCorrupt`] — no inputs at all, or rows that
///   do not sum to the partition's survivor count (a report produced by
///   a damaged or hand-edited flow).
pub fn merge(reports: Vec<ShardReport>) -> Result<MergeOutcome, DseError> {
    let first = reports
        .first()
        .ok_or_else(|| DseError::ShardReportCorrupt {
            source_name: "<merge>".to_owned(),
            detail: "no shard reports given".to_owned(),
        })?;
    let (fingerprint, count) = (first.partition_fingerprint, first.shard.count());
    for r in &reports {
        if r.partition_fingerprint != fingerprint {
            return Err(DseError::ShardFingerprintMismatch {
                expected: format!("{fingerprint:016x}"),
                found: format!("{:016x}", r.partition_fingerprint),
                source_name: r.source_name.clone(),
            });
        }
    }
    // Fingerprint equality implies equal shard counts (the count is
    // hashed), so index coverage is the only set property left to check.
    let mut seen = vec![false; count as usize];
    for r in &reports {
        let slot = &mut seen[(r.shard.index() - 1) as usize];
        if *slot {
            return Err(DseError::ShardDuplicate {
                index: r.shard.index(),
                count,
            });
        }
        *slot = true;
    }
    if let Some(absent) = seen.iter().position(|&s| !s) {
        return Err(DseError::ShardMissing {
            index: absent as u32 + 1,
            count,
        });
    }

    let rows: usize = reports
        .iter()
        .map(|r| r.candidates.len() + r.failed.len())
        .sum();
    if rows != first.survivors_total {
        return Err(DseError::ShardReportCorrupt {
            source_name: "<merge>".to_owned(),
            detail: format!(
                "shards carry {rows} rows but the partition has {} survivors",
                first.survivors_total
            ),
        });
    }

    let mut reports = reports;
    reports.sort_by_key(|r| r.shard.index());
    let mut inputs = ReportInputs {
        workload: reports[0].workload.clone(),
        budget: reports[0].budget,
        options: reports[0].options.clone(),
        enumerated: reports[0].enumerated,
        over_budget: reports[0].over_budget,
        pruned: reports[0].pruned,
        failed: Vec::new(),
        candidates: Vec::new(),
    };
    let mut cache_delta = EstimationCache::new();
    let (mut evaluated, mut reused) = (0usize, 0usize);
    for r in reports {
        inputs.candidates.extend(r.candidates);
        inputs.failed.extend(r.failed);
        evaluated += r.evaluated;
        reused += r.reused;
        cache_delta.absorb(r.cache_delta);
    }
    // Shards arrive in index order, i.e. already in ascending-mask
    // order; the sorts restate the single-process invariants exactly.
    inputs.candidates.sort_by_key(|c| c.mask);
    inputs.failed.sort_by(|a, b| a.name.cmp(&b.name));

    Ok(MergeOutcome {
        inputs,
        cache_delta,
        evaluated,
        reused,
        shards: count,
    })
}
