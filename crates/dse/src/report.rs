//! The stable `emx.dse-report/1` document.
//!
//! The report is a pure function of the search *result* — it carries no
//! wall-clock timings, no worker count, and no cache statistics — so two
//! runs over the same inputs emit byte-identical JSON regardless of
//! `--jobs` and cache warmth. Timing and cache behaviour live in the
//! observability counters and the Chrome trace instead.
//!
//! That purity is what makes the sharded flow ([`crate::shard`],
//! [`mod@crate::merge`]) possible: the document is rendered from a
//! [`ReportInputs`] value that a live [`Exploration`] and a set of merged
//! shard reports can *both* produce, through one code path — the
//! rankings (Pareto front, best energy, best EDP, base deltas) are
//! recomputed inside [`render`] from the rows alone, so a K-shard merge
//! is byte-identical to the single-process report by construction.

use emx_obs::json::Value;
use emx_rtlpower::Energy;

use crate::engine::Exploration;
use crate::point::{pareto_front, rank_by_edp, DesignPoint};

/// Schema identifier written into every report.
pub const SCHEMA: &str = "emx.dse-report/1";

/// One evaluated candidate, as the report sees it — the evaluation
/// result stripped of everything (workload images, cache state) the
/// document is not a function of.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportCandidate {
    /// Display name (`base`, `gf16+rswide`, …).
    pub name: String,
    /// Selection bitmask over the space's options; the report orders
    /// candidates by it and locates the zero-hardware base through it.
    pub mask: usize,
    /// Names of the selected options, in declaration order.
    pub options: Vec<String>,
    /// Name of the workload this selection resolves to.
    pub workload: String,
    /// Summed area cost of the selected units.
    pub area: f64,
    /// Estimated energy in picojoules.
    pub energy_pj: f64,
    /// Execution cycles.
    pub cycles: u64,
}

/// One candidate the search could not evaluate, reduced to the strings
/// the report prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportFailure {
    /// The candidate's display name.
    pub name: String,
    /// The stable machine code of the failure.
    pub code: String,
    /// The human-readable error message.
    pub message: String,
}

/// Everything `emx.dse-report/1` is a pure function of. Built from a
/// live [`Exploration`] by [`inputs`], or from K shard reports by
/// [`crate::merge::merge`] — both render through [`render`].
#[derive(Debug, Clone)]
pub struct ReportInputs {
    /// Name of the explored space.
    pub workload: String,
    /// The area budget applied, if any.
    pub budget: Option<f64>,
    /// The space's option table (name/area pairs, declaration order).
    pub options: Vec<(String, f64)>,
    /// Subsets walked (2^options).
    pub enumerated: usize,
    /// Subsets dropped for exceeding the area budget.
    pub over_budget: usize,
    /// Subsets dropped as dominated.
    pub pruned: usize,
    /// Contained evaluation failures, sorted by candidate name.
    pub failed: Vec<ReportFailure>,
    /// Evaluated candidates in ascending-mask order.
    pub candidates: Vec<ReportCandidate>,
}

/// Reduces an exploration to the report's inputs.
pub fn inputs(exploration: &Exploration, options: &[(String, f64)]) -> ReportInputs {
    ReportInputs {
        workload: exploration.space_name.clone(),
        budget: exploration.budget,
        options: options.to_vec(),
        enumerated: exploration.enumeration.enumerated,
        over_budget: exploration.enumeration.over_budget,
        pruned: exploration.enumeration.pruned,
        failed: exploration
            .failed
            .iter()
            .map(|f| ReportFailure {
                name: f.name.clone(),
                code: f.error.code().to_owned(),
                message: f.error.to_string(),
            })
            .collect(),
        candidates: exploration
            .enumeration
            .candidates
            .iter()
            .zip(&exploration.points)
            .map(|(c, p)| ReportCandidate {
                name: c.name.clone(),
                mask: c.mask,
                options: c.options.clone(),
                workload: c.workload.name().to_owned(),
                area: c.area,
                energy_pj: p.energy.as_picojoules(),
                cycles: p.cycles,
            })
            .collect(),
    }
}

/// Builds the report document for one exploration, given the option list
/// of the explored space (name/area pairs, in declaration order).
pub fn to_json(exploration: &Exploration, options: &[(String, f64)]) -> Value {
    render(&inputs(exploration, options))
}

/// Renders the `emx.dse-report/1` document. The rankings — Pareto front,
/// best energy, best EDP, base deltas — are recomputed here from the
/// rows with the same pure functions the engine uses, so any producer of
/// equal [`ReportInputs`] gets byte-equal documents.
pub fn render(inputs: &ReportInputs) -> Value {
    // Rebuild the design points the rankings are defined over. `Energy`
    // carries picojoules verbatim, so this round-trip is bit-exact.
    let points: Vec<DesignPoint> = inputs
        .candidates
        .iter()
        .map(|c| DesignPoint {
            name: c.name.clone(),
            energy: Energy::from_picojoules(c.energy_pj),
            cycles: c.cycles,
        })
        .collect();
    let pareto = pareto_front(&points);
    let best_energy = (0..points.len()).min_by(|&a, &b| {
        points[a]
            .energy
            .as_picojoules()
            .total_cmp(&points[b].energy.as_picojoules())
    });
    let best_edp = rank_by_edp(&points).first().copied();
    let base = inputs.candidates.iter().position(|c| c.mask == 0);

    let mut doc = Value::object();
    doc.set("schema", SCHEMA);
    doc.set("workload", inputs.workload.as_str());
    match inputs.budget {
        Some(b) => doc.set("budget", b),
        None => doc.set("budget", Value::Null),
    }

    let mut opts = Value::array();
    for (name, area) in &inputs.options {
        let mut o = Value::object();
        o.set("name", name.as_str());
        o.set("area", *area);
        opts.push(o);
    }
    doc.set("options", opts);

    doc.set("enumerated", inputs.enumerated as u64);
    doc.set("over_budget", inputs.over_budget as u64);
    doc.set("pruned", inputs.pruned as u64);
    doc.set("evaluated", inputs.candidates.len() as u64);

    // Contained failures: candidates the engine could not price. The run
    // still succeeded — these are reported, and the rankings below cover
    // the survivors only.
    let mut failed = Value::array();
    for f in &inputs.failed {
        let mut v = Value::object();
        v.set("name", f.name.as_str());
        v.set("code", f.code.as_str());
        v.set("error", f.message.as_str());
        failed.push(v);
    }
    doc.set("failed_candidates", failed);

    let base_point = base.map(|i| &points[i]);
    let mut candidates = Value::array();
    for (i, (candidate, point)) in inputs.candidates.iter().zip(&points).enumerate() {
        let mut c = Value::object();
        c.set("name", candidate.name.as_str());
        let mut names = Value::array();
        for o in &candidate.options {
            names.push(o.as_str());
        }
        c.set("options", names);
        c.set("workload", candidate.workload.as_str());
        c.set("area", candidate.area);
        c.set("energy_pj", point.energy.as_picojoules());
        c.set("cycles", point.cycles);
        c.set("edp", point.edp());
        match base_point {
            Some(b) => {
                let de = 100.0 * (point.energy.as_picojoules() / b.energy.as_picojoules() - 1.0);
                let dc = 100.0 * (point.cycles as f64 / b.cycles as f64 - 1.0);
                c.set("delta_energy_pct", de);
                c.set("delta_cycles_pct", dc);
            }
            None => {
                c.set("delta_energy_pct", Value::Null);
                c.set("delta_cycles_pct", Value::Null);
            }
        }
        c.set("pareto", pareto.contains(&i));
        candidates.push(c);
    }
    doc.set("candidates", candidates);

    let mut pareto_names = Value::array();
    for &i in &pareto {
        pareto_names.push(points[i].name.as_str());
    }
    doc.set("pareto", pareto_names);

    let mut best = Value::object();
    match best_energy {
        Some(i) => best.set("min_energy", points[i].name.as_str()),
        None => best.set("min_energy", Value::Null),
    }
    match best_edp {
        Some(i) => best.set("min_edp", points[i].name.as_str()),
        None => best.set("min_edp", Value::Null),
    }
    doc.set("best", best);
    doc
}
