//! The stable `emx.dse-report/1` document.
//!
//! The report is a pure function of the search *result* — it carries no
//! wall-clock timings, no worker count, and no cache statistics — so two
//! runs over the same inputs emit byte-identical JSON regardless of
//! `--jobs` and cache warmth. Timing and cache behaviour live in the
//! observability counters and the Chrome trace instead.

use emx_obs::json::Value;

use crate::engine::Exploration;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "emx.dse-report/1";

/// Builds the report document for one exploration, given the option list
/// of the explored space (name/area pairs, in declaration order).
pub fn to_json(exploration: &Exploration, options: &[(String, f64)]) -> Value {
    let mut doc = Value::object();
    doc.set("schema", SCHEMA);
    doc.set("workload", exploration.space_name.as_str());
    match exploration.budget {
        Some(b) => doc.set("budget", b),
        None => doc.set("budget", Value::Null),
    }

    let mut opts = Value::array();
    for (name, area) in options {
        let mut o = Value::object();
        o.set("name", name.as_str());
        o.set("area", *area);
        opts.push(o);
    }
    doc.set("options", opts);

    doc.set("enumerated", exploration.enumeration.enumerated as u64);
    doc.set("over_budget", exploration.enumeration.over_budget as u64);
    doc.set("pruned", exploration.enumeration.pruned as u64);
    doc.set("evaluated", exploration.enumeration.candidates.len() as u64);

    // Contained failures: candidates the engine could not price. The run
    // still succeeded — these are reported, and the rankings below cover
    // the survivors only.
    let mut failed = Value::array();
    for f in &exploration.failed {
        let mut v = Value::object();
        v.set("name", f.name.as_str());
        v.set("code", f.error.code());
        let message = f.error.to_string();
        v.set("error", message.as_str());
        failed.push(v);
    }
    doc.set("failed_candidates", failed);

    let base = exploration.base.map(|i| &exploration.points[i]);
    let mut candidates = Value::array();
    for (i, (candidate, point)) in exploration
        .enumeration
        .candidates
        .iter()
        .zip(&exploration.points)
        .enumerate()
    {
        let mut c = Value::object();
        c.set("name", candidate.name.as_str());
        let mut names = Value::array();
        for o in &candidate.options {
            names.push(o.as_str());
        }
        c.set("options", names);
        c.set("workload", candidate.workload.name());
        c.set("area", candidate.area);
        c.set("energy_pj", point.energy.as_picojoules());
        c.set("cycles", point.cycles);
        c.set("edp", point.edp());
        match base {
            Some(b) => {
                let de = 100.0 * (point.energy.as_picojoules() / b.energy.as_picojoules() - 1.0);
                let dc = 100.0 * (point.cycles as f64 / b.cycles as f64 - 1.0);
                c.set("delta_energy_pct", de);
                c.set("delta_cycles_pct", dc);
            }
            None => {
                c.set("delta_energy_pct", Value::Null);
                c.set("delta_cycles_pct", Value::Null);
            }
        }
        c.set("pareto", exploration.pareto.contains(&i));
        candidates.push(c);
    }
    doc.set("candidates", candidates);

    let mut pareto = Value::array();
    for &i in &exploration.pareto {
        pareto.push(exploration.points[i].name.as_str());
    }
    doc.set("pareto", pareto);

    let mut best = Value::object();
    match exploration.best_energy {
        Some(i) => best.set("min_energy", exploration.points[i].name.as_str()),
        None => best.set("min_energy", Value::Null),
    }
    match exploration.best_edp {
        Some(i) => best.set("min_edp", exploration.points[i].name.as_str()),
        None => best.set("min_edp", Value::Null),
    }
    doc.set("best", best);
    doc
}
