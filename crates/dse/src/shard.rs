//! Deterministic partitioning of a candidate enumeration across worker
//! processes.
//!
//! A shard is a contiguous **mask range**: shard *i* of *N* owns every
//! subset whose selection bitmask falls in
//! `[(i-1)·2^n/N, i·2^n/N)`. Because [`CandidateSpace::enumerate`] is a
//! pure function of the space and budget — every process walks the same
//! subsets, prunes the same dominated selections, and sorts survivors by
//! ascending mask — restricting the *survivor list* to a mask range
//! yields K sub-spaces that are pairwise disjoint, jointly complete, and
//! each ordered exactly as the global enumeration orders its members.
//! Concatenating the shards in index order therefore reproduces the
//! single-process candidate list byte for byte, which is what the merge
//! contract in [`mod@crate::merge`] is built on.
//!
//! Every shard also computes the same **partition fingerprint**: a
//! content hash of the space geometry (name, budget, options, funnel
//! counts, survivor masks), the shard count, the estimator's extraction
//! and pricing fingerprints, and the processor configuration. Two shard
//! reports merge only if their fingerprints agree, so artifacts produced
//! from different spaces, budgets, models, simulators, or shard counts
//! can never be silently combined.
//!
//! [`CandidateSpace::enumerate`]: crate::space::CandidateSpace::enumerate

use std::fmt;
use std::ops::Range;

use emx_sim::ProcConfig;

use crate::cache::content_fingerprint;
use crate::error::DseError;
use crate::space::Enumeration;

/// One shard of an N-way partition: `index` is 1-based, so the CLI form
/// `--shard 2/3` reads naturally as "the second of three".
///
/// The fields are private to keep the invariant `1 <= index <= count`
/// unrepresentable to violate; construct via [`ShardSpec::new`] or
/// [`ShardSpec::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: u32,
    count: u32,
}

/// The whole space as a single shard (`1/1`) — what a non-sharded run is.
pub const FULL: ShardSpec = ShardSpec { index: 1, count: 1 };

impl ShardSpec {
    /// Builds a validated shard spec.
    ///
    /// # Errors
    ///
    /// [`DseError::ShardInvalid`] unless `1 <= index <= count`.
    pub fn new(index: u32, count: u32) -> Result<Self, DseError> {
        if count == 0 || index == 0 || index > count {
            return Err(DseError::ShardInvalid { index, count });
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI form `i/N` (e.g. `2/3`).
    ///
    /// # Errors
    ///
    /// [`DseError::ShardInvalid`] for malformed text or an out-of-range
    /// index.
    pub fn parse(text: &str) -> Result<Self, DseError> {
        let bad = DseError::ShardInvalid { index: 0, count: 0 };
        let Some((index, count)) = text.split_once('/') else {
            return Err(bad);
        };
        let (Ok(index), Ok(count)) = (index.trim().parse(), count.trim().parse()) else {
            return Err(bad);
        };
        Self::new(index, count)
    }

    /// The 1-based shard index.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The number of shards in the partition.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// `true` for the trivial `1/1` partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// The half-open mask range this shard owns, over `total` subsets.
    ///
    /// Ranges are computed as `[(i-1)·total/N, i·total/N)` in widened
    /// arithmetic, so consecutive shards tile `0..total` exactly — no
    /// mask is shared and none is dropped, even when `N` does not divide
    /// `total`.
    pub fn mask_range(&self, total: usize) -> Range<usize> {
        let (i, n) = (u128::from(self.index), u128::from(self.count));
        let total = total as u128;
        let lo = ((i - 1) * total / n) as usize;
        let hi = (i * total / n) as usize;
        lo..hi
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Restricts an enumeration's survivor list to the masks `shard` owns,
/// in place. The funnel counts (`enumerated`, `over_budget`, `pruned`)
/// stay global — every shard walked the same full space.
pub fn restrict(enumeration: &mut Enumeration, shard: ShardSpec) {
    let range = shard.mask_range(enumeration.enumerated);
    enumeration.candidates.retain(|c| range.contains(&c.mask));
}

/// The two halves of a [`CandidateEstimator`]'s identity that bind a
/// partition: `extraction` keys what an ISS pass would record (and so
/// the cache), `pricing` keys how extractions are turned into energy
/// (the fitted model). A refit changes `pricing` but not `extraction`.
///
/// [`CandidateEstimator`]: crate::CandidateEstimator
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorFingerprints {
    /// `CandidateEstimator::fingerprint()` — extraction semantics.
    pub extraction: u64,
    /// `CandidateEstimator::pricing_fingerprint()` — pricing semantics.
    pub pricing: u64,
}

/// Content hash identifying one partition of one search. Equal
/// fingerprints certify that two shard artifacts came from the same
/// space (name, options, budget), the same enumeration outcome (funnel
/// counts and survivor masks), the same shard count, the same extraction
/// and pricing semantics, and the same processor configuration — i.e.
/// that merging them reconstructs a run that could have happened in one
/// process.
pub fn partition_fingerprint(
    space_name: &str,
    budget: Option<f64>,
    options: &[(String, f64)],
    enumeration: &Enumeration,
    shard_count: u32,
    estimator: EstimatorFingerprints,
    config: &ProcConfig,
) -> u64 {
    let EstimatorFingerprints {
        extraction: extraction_fp,
        pricing: pricing_fp,
    } = estimator;
    use std::fmt::Write as _;
    let mut buf = String::new();
    let _ = write!(buf, "emx.dse-partition/1|space={space_name}|");
    match budget {
        // Hash the bit pattern: fingerprints must not depend on float
        // formatting, and -0.0 vs 0.0 budgets genuinely differ as inputs.
        Some(b) => {
            let _ = write!(buf, "budget={:016x}|", b.to_bits());
        }
        None => buf.push_str("budget=none|"),
    }
    let _ = write!(
        buf,
        "shards={shard_count}|extract={extraction_fp:016x}|price={pricing_fp:016x}|"
    );
    for (name, area) in options {
        let _ = write!(buf, "opt={name}:{:016x}|", area.to_bits());
    }
    let _ = write!(
        buf,
        "walked={}|over={}|pruned={}|",
        enumeration.enumerated, enumeration.over_budget, enumeration.pruned
    );
    for c in &enumeration.candidates {
        let _ = write!(buf, "m={:x}|", c.mask);
    }
    let _ = write!(buf, "config={config:?}");
    content_fingerprint(buf.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_cli_form_and_rejects_nonsense() {
        let s = ShardSpec::parse("2/3").unwrap();
        assert_eq!((s.index(), s.count()), (2, 3));
        assert_eq!(s.to_string(), "2/3");
        assert!(!s.is_full());
        assert!(ShardSpec::parse("1/1").unwrap().is_full());
        for bad in ["", "2", "/", "a/b", "0/0", "0/3", "3/2", "-1/2", "1/0"] {
            assert!(
                matches!(ShardSpec::parse(bad), Err(DseError::ShardInvalid { .. })),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn mask_ranges_tile_the_space_exactly() {
        for total in [0usize, 1, 2, 7, 16, 100, 1 << 20] {
            for count in 1..=9u32 {
                let mut next = 0usize;
                for index in 1..=count {
                    let r = ShardSpec::new(index, count).unwrap().mask_range(total);
                    assert_eq!(r.start, next, "shard {index}/{count} over {total}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, total, "{count} shards must cover 0..{total}");
            }
        }
    }

    #[test]
    fn more_shards_than_masks_leaves_some_empty_but_loses_none() {
        // 4 masks over 7 shards: every mask lands somewhere exactly once.
        let total = 4usize;
        let mut owners = vec![0u32; total];
        for index in 1..=7 {
            let r = ShardSpec::new(index, 7).unwrap().mask_range(total);
            for m in r {
                owners[m] += 1;
            }
        }
        assert!(owners.iter().all(|&n| n == 1), "{owners:?}");
    }
}
