//! Candidate enumeration: power sets of extension units under an area
//! budget, with dominance pruning before any evaluation.
//!
//! A [`CandidateSpace`] is a list of *design options* — independent
//! hardware units from the TIE extension library — plus a resolver that
//! maps any subset of them to the application workload the software would
//! actually be compiled to (which custom instructions the codec can use).
//! Enumeration walks every subset, drops those over the area budget, and
//! prunes *dominated* subsets: two subsets that resolve to the same
//! workload execute identically, so only the cheapest (by area, then
//! option count, then enumeration order) can ever be worth building.

use emx_hwlib::Category;
use emx_tie::ExtensionSet;
use emx_workloads::reed_solomon::RsConfig;
use emx_workloads::{exts, Workload};

use crate::error::DseError;

/// Largest option count [`CandidateSpace::enumerate`] will walk: `2^24`
/// subsets (~16M) is the most an exhaustive pass can visit in reasonable
/// time, and it keeps every mask comfortably inside `usize` on all
/// supported targets. Larger spaces get a typed [`DseError::SpaceTooLarge`]
/// instead of a silently truncated walk.
pub const MAX_OPTIONS: usize = 24;

/// Area cost of one extension set, in *net-equivalents*: each structural
/// category's instantiated complexity `f(C)` (the paper's Eq. 4 scaling)
/// weighted by the per-bit net count of that component class in the RTL
/// power library (`rtlpower::gates` — 64 nets/bit for a multiplier, 4 for
/// an adder, 3 for logic, 5 for a shifter), times the 32-bit reference
/// width. Decode/control logic rides on the logic weight.
pub fn area_cost(ext: &ExtensionSet) -> f64 {
    // One weight per `Category::ALL` slot: [Multiplier, AdderCmp,
    // LogicMux, Shifter, CustomReg, TieMult, TieMac, TieAdd, TieCsa,
    // Table]. The specialized TIE modules reuse the weight of the
    // library component they are assembled from.
    const NETS_PER_BIT: [f64; 10] = [64.0, 4.0, 3.0, 5.0, 1.0, 64.0, 64.0, 4.0, 4.0, 2.0];
    const LOGIC_NETS: f64 = 3.0;
    const REF_WIDTH: f64 = 32.0;
    debug_assert_eq!(Category::ALL.len(), NETS_PER_BIT.len());
    let f = ext.instantiated_complexity();
    // fold from +0.0, not `sum()`: the empty set must cost 0.0, not -0.0.
    let datapath = f
        .iter()
        .zip(NETS_PER_BIT)
        .fold(0.0f64, |acc, (x, w)| acc + x * w);
    REF_WIDTH * (datapath + LOGIC_NETS * ext.control_complexity())
}

/// One independently selectable hardware unit.
#[derive(Debug, Clone)]
pub struct DesignOption {
    /// Short display name (`gf16`, `rswide`, …).
    pub name: String,
    /// The compiled extension unit.
    pub ext: ExtensionSet,
}

impl DesignOption {
    /// Area cost of this unit (see [`area_cost`]).
    pub fn area(&self) -> f64 {
        area_cost(&self.ext)
    }
}

/// A subset of the space's options, as seen by the resolver.
#[derive(Debug, Clone, Copy)]
pub struct Selection<'a> {
    options: &'a [&'a DesignOption],
}

impl Selection<'_> {
    /// Does any selected unit provide custom instruction `mnemonic`?
    pub fn has_inst(&self, mnemonic: &str) -> bool {
        self.options
            .iter()
            .any(|o| o.ext.by_name(mnemonic).is_some())
    }

    /// The selected options.
    pub fn options(&self) -> &[&DesignOption] {
        self.options
    }
}

type ResolveFn = Box<dyn Fn(&Selection<'_>) -> Workload>;

/// An enumerable family of candidate configurations for one application.
pub struct CandidateSpace {
    name: String,
    options: Vec<DesignOption>,
    resolve: ResolveFn,
}

/// One surviving candidate: a selection of options plus the workload the
/// application resolves to under that selection.
#[derive(Debug, Clone)]
pub struct EnumeratedCandidate {
    /// Display name: `+`-joined option names, or `base` for the empty set.
    pub name: String,
    /// Selection bitmask over the space's options (bit *i* = option *i*).
    /// `usize` wide so every mask of a [`MAX_OPTIONS`]-option space is
    /// representable; a narrower type would silently alias subsets.
    pub mask: usize,
    /// Names of the selected options, in declaration order.
    pub options: Vec<String>,
    /// Summed area cost of the selected units.
    pub area: f64,
    /// The application workload this selection resolves to.
    pub workload: Workload,
}

/// The outcome of [`CandidateSpace::enumerate`].
#[derive(Debug)]
pub struct Enumeration {
    /// Surviving candidates, in ascending-mask order.
    pub candidates: Vec<EnumeratedCandidate>,
    /// Subsets walked (2^options).
    pub enumerated: usize,
    /// Subsets dropped for exceeding the area budget.
    pub over_budget: usize,
    /// Subsets dropped as dominated (same resolved workload, no cheaper).
    pub pruned: usize,
}

impl CandidateSpace {
    /// Builds a space from options and a resolver. The resolver maps any
    /// selection to the workload the application would be compiled to.
    pub fn new(
        name: impl Into<String>,
        options: Vec<DesignOption>,
        resolve: impl Fn(&Selection<'_>) -> Workload + 'static,
    ) -> Self {
        CandidateSpace {
            name: name.into(),
            options,
            resolve: Box::new(resolve),
        }
    }

    /// The space's name (`reed-solomon`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The selectable options, in declaration order.
    pub fn options(&self) -> &[DesignOption] {
        &self.options
    }

    /// Names of the built-in spaces, for CLI listings.
    pub fn names() -> &'static [&'static str] {
        &["reed-solomon"]
    }

    /// Looks up a built-in space by name.
    pub fn by_name(name: &str) -> Option<CandidateSpace> {
        match name {
            "reed-solomon" => Some(Self::reed_solomon()),
            _ => None,
        }
    }

    /// The paper's Fig. 4 study as a searchable space: the GF(16)
    /// multiplier, the GF MAC unit, the four-way syndrome unit, and the
    /// combined RS unit are free choices; the resolver picks the best
    /// codec variant the selected instructions support.
    pub fn reed_solomon() -> CandidateSpace {
        let options = vec![
            DesignOption {
                name: "gf16".to_owned(),
                ext: exts::gf16(),
            },
            DesignOption {
                name: "gf16mac".to_owned(),
                ext: exts::gf16_mac(),
            },
            DesignOption {
                name: "rswide".to_owned(),
                ext: exts::rs_wide(),
            },
            DesignOption {
                name: "rsfull".to_owned(),
                ext: exts::rs_full(),
            },
        ];
        // Resolving a selection assembles the codec from source — by far
        // the dominant cost of enumeration. All 2^4 selections collapse
        // onto the four `RsConfig` variants, so each variant is assembled
        // once and cloned after that; equal selections therefore resolve
        // to byte-identical workloads, exactly as before.
        let memo: [std::cell::OnceCell<Workload>; 4] = Default::default();
        CandidateSpace::new("reed-solomon", options, move |sel| {
            // The codec needs `gfmul` everywhere (encoder feedback taps);
            // the syndrome loop then uses the best unit available.
            let cfg = if sel.has_inst("gfmul") && sel.has_inst("synstep") {
                RsConfig::Rs3
            } else if sel.has_inst("gfmac") {
                RsConfig::Rs2
            } else if sel.has_inst("gfmul") {
                RsConfig::Rs1
            } else {
                RsConfig::Rs0
            };
            memo[cfg as usize].get_or_init(|| cfg.workload()).clone()
        })
    }

    /// Walks every subset of the options, applies the optional area
    /// `budget` (a candidate at exactly the budget survives; only strictly
    /// larger areas are dropped), resolves each survivor to its effective
    /// workload, and prunes dominated selections.
    ///
    /// # Errors
    ///
    /// [`DseError::SpaceTooLarge`] when the space has more than
    /// [`MAX_OPTIONS`] options — `2^n` subsets would exceed the enumerable
    /// width, and truncating the walk would silently skip candidates.
    pub fn enumerate(&self, budget: Option<f64>) -> Result<Enumeration, DseError> {
        let n = self.options.len();
        if n > MAX_OPTIONS {
            return Err(DseError::SpaceTooLarge {
                options: n,
                max: MAX_OPTIONS,
            });
        }
        let total = 1usize << n;
        let mut survivors: Vec<EnumeratedCandidate> = Vec::new();
        let mut over_budget = 0usize;
        let mut pruned = 0usize;

        for mask in 0..total {
            let selected: Vec<&DesignOption> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| &self.options[i])
                .collect();
            let area = selected.iter().fold(0.0f64, |acc, o| acc + o.area());
            if budget.is_some_and(|b| area > b) {
                over_budget += 1;
                continue;
            }
            let workload = (self.resolve)(&Selection { options: &selected });
            let candidate = EnumeratedCandidate {
                name: if selected.is_empty() {
                    "base".to_owned()
                } else {
                    selected
                        .iter()
                        .map(|o| o.name.as_str())
                        .collect::<Vec<_>>()
                        .join("+")
                },
                mask,
                options: selected.iter().map(|o| o.name.clone()).collect(),
                area,
                workload,
            };
            // Dominance: same resolved workload ⇒ identical execution, so
            // only the cheapest build matters. Ties break toward fewer
            // units, then earlier enumeration order — deterministic.
            match survivors
                .iter_mut()
                .find(|c| c.workload.name() == candidate.workload.name())
            {
                Some(existing) => {
                    // Areas that differ only by accumulated rounding (the
                    // same hardware summed in a different order) count as
                    // equal, so the tie-break stays physical.
                    let tolerance = 1e-9 * existing.area.abs().max(1.0);
                    let better = if (candidate.area - existing.area).abs() <= tolerance {
                        candidate.options.len() < existing.options.len()
                    } else {
                        candidate.area < existing.area
                    };
                    if better {
                        *existing = candidate;
                    }
                    pruned += 1;
                }
                None => survivors.push(candidate),
            }
        }
        survivors.sort_by_key(|c| c.mask);
        Ok(Enumeration {
            candidates: survivors,
            enumerated: total,
            over_budget,
            pruned,
        })
    }
}

impl std::fmt::Debug for CandidateSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateSpace")
            .field("name", &self.name)
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_cost_is_positive_and_monotone_in_content() {
        assert_eq!(area_cost(&ExtensionSet::empty()), 0.0);
        let gf16 = area_cost(&exts::gf16());
        let gf16_mac = area_cost(&exts::gf16_mac());
        assert!(gf16 > 0.0);
        // The MAC unit contains a multiplier plus state: strictly bigger.
        assert!(gf16_mac > gf16, "{gf16_mac} !> {gf16}");
    }

    #[test]
    fn rs_space_enumerates_to_the_four_paper_configs() -> Result<(), DseError> {
        let space = CandidateSpace::reed_solomon();
        let e = space.enumerate(None)?;
        assert_eq!(e.enumerated, 16);
        assert_eq!(e.over_budget, 0);
        assert_eq!(e.candidates.len(), 4);
        assert_eq!(e.pruned, 12);
        let names: Vec<&str> = e.candidates.iter().map(|c| c.workload.name()).collect();
        assert_eq!(
            names,
            [
                "reed_solomon_rs0",
                "reed_solomon_rs1",
                "reed_solomon_rs2",
                "reed_solomon_rs3"
            ]
        );
        // The base candidate carries no hardware.
        assert_eq!(e.candidates[0].name, "base");
        assert_eq!(e.candidates[0].area, 0.0);
        // rs3 resolves to a single-unit build, not a redundant pair.
        assert_eq!(e.candidates[3].options, ["rsfull"]);
        Ok(())
    }

    #[test]
    fn budget_excludes_expensive_candidates() -> Result<(), DseError> {
        let space = CandidateSpace::reed_solomon();
        let unbounded = space.enumerate(None)?;
        let costliest = unbounded
            .candidates
            .iter()
            .map(|c| c.area)
            .fold(0.0f64, f64::max);
        let e = space.enumerate(Some(costliest / 2.0))?;
        assert!(e.over_budget > 0);
        assert!(e.candidates.len() < unbounded.candidates.len());
        // The base candidate (zero area) always survives a non-negative budget.
        assert!(e.candidates.iter().any(|c| c.name == "base"));
        for c in &e.candidates {
            assert!(c.area <= costliest / 2.0);
        }
        Ok(())
    }

    #[test]
    fn budget_boundary_is_inclusive() -> Result<(), DseError> {
        // A candidate at *exactly* the budget must survive; only strictly
        // larger areas count as over budget.
        let space = CandidateSpace::reed_solomon();
        let gf16_area = space.options()[0].area();
        let at_budget = space.enumerate(Some(gf16_area))?;
        assert!(
            at_budget
                .candidates
                .iter()
                .any(|c| (c.area - gf16_area).abs() < 1e-12),
            "candidate with area == budget must survive"
        );
        // Shave the budget below that area: the same candidate now counts
        // in over_budget instead.
        let under = space.enumerate(Some(gf16_area * (1.0 - 1e-6)))?;
        assert!(under.over_budget > at_budget.over_budget);
        assert!(!under
            .candidates
            .iter()
            .any(|c| (c.area - gf16_area).abs() < 1e-12));
        Ok(())
    }

    #[test]
    fn redundant_pairs_are_pruned_by_dominance() -> Result<(), DseError> {
        // {gf16, rswide} resolves to rs3 like {rsfull}, at no less area —
        // it must never survive next to it.
        let space = CandidateSpace::reed_solomon();
        let e = space.enumerate(None)?;
        let rs3: Vec<&EnumeratedCandidate> = e
            .candidates
            .iter()
            .filter(|c| c.workload.name() == "reed_solomon_rs3")
            .collect();
        assert_eq!(rs3.len(), 1);
        Ok(())
    }

    #[test]
    fn oversized_spaces_get_a_typed_error_not_a_truncated_walk() {
        let options = (0..MAX_OPTIONS + 1)
            .map(|i| DesignOption {
                name: format!("opt{i}"),
                ext: ExtensionSet::empty(),
            })
            .collect();
        let space = CandidateSpace::new("too-big", options, |_| RsConfig::Rs0.workload());
        match space.enumerate(None) {
            Err(DseError::SpaceTooLarge { options, max }) => {
                assert_eq!(options, MAX_OPTIONS + 1);
                assert_eq!(max, MAX_OPTIONS);
            }
            other => panic!("expected SpaceTooLarge, got {other:?}"),
        }
    }
}
