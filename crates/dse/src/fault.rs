//! Fault injection for exercising the engine's failure containment.
//!
//! Production code never imports this module; the fault-injection suite
//! (`tests/faults.rs`) and downstream robustness tests do. The shims wrap
//! a real estimator and misbehave — return an error, or panic outright —
//! for exactly the candidates a *trigger* predicate selects, so a test
//! can prove that one poisoned candidate costs one candidate and nothing
//! else.
//!
//! Triggers see what the engine passes an estimator: the program and the
//! extension set. Select candidates structurally (e.g. "anything whose
//! extension set provides `gfmac`") rather than by display name, which
//! the estimator never learns.

use emx_isa::Program;
use emx_rtlpower::Energy;
use emx_sim::{ExecStats, ProcConfig, SimError};
use emx_tie::ExtensionSet;

use crate::engine::CandidateEstimator;

/// What the shim does when its trigger matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return a [`SimError::CycleLimit`] — the recoverable-error path.
    Error,
    /// Panic mid-evaluation — the contained-panic path.
    Panic,
}

type Trigger = Box<dyn Fn(&Program, &ExtensionSet) -> bool + Send + Sync>;

/// A [`CandidateEstimator`] that misbehaves on selected candidates and
/// delegates the rest to the wrapped estimator.
pub struct FailingEstimator<E> {
    inner: E,
    mode: FaultMode,
    trigger: Trigger,
}

impl<E: CandidateEstimator> FailingEstimator<E> {
    /// Fails (typed [`SimError`]) every candidate the trigger matches.
    pub fn fail_when(
        inner: E,
        trigger: impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync + 'static,
    ) -> Self {
        FailingEstimator {
            inner,
            mode: FaultMode::Error,
            trigger: Box::new(trigger),
        }
    }

    /// Panics on every candidate the trigger matches.
    pub fn panic_when(
        inner: E,
        trigger: impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync + 'static,
    ) -> Self {
        FailingEstimator {
            inner,
            mode: FaultMode::Panic,
            trigger: Box::new(trigger),
        }
    }
}

/// Trigger matching any candidate whose extension set provides the custom
/// instruction `mnemonic` — the structural way to name a candidate from
/// inside an estimator.
pub fn has_inst(mnemonic: &str) -> impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync {
    let mnemonic = mnemonic.to_owned();
    move |_, ext| ext.by_name(&mnemonic).is_some()
}

impl<E: CandidateEstimator> CandidateEstimator for FailingEstimator<E> {
    // Faults strike the extraction half — the part the engine runs on
    // worker threads and contains per candidate.
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError> {
        if (self.trigger)(program, ext) {
            match self.mode {
                FaultMode::Error => return Err(SimError::CycleLimit(0)),
                FaultMode::Panic => panic!("injected fault: estimator panicked"),
            }
        }
        self.inner.extract(program, ext, config)
    }

    fn price(&self, stats: &ExecStats) -> (Energy, u64) {
        self.inner.price(stats)
    }

    // Salted so a faulty run can never share cache entries with a healthy
    // one (successful extractions do get cached).
    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint() ^ 0xFA17_FA17_FA17_FA17
    }
}

/// Truncates the file at `path` to its first `keep` bytes — simulates a
/// write cut short by a crash, for cache-recovery tests.
///
/// # Errors
///
/// Propagates read/write failures as strings (test-support only).
pub fn truncate_file(path: &str, keep: usize) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read `{path}`: {e}"))?;
    let keep = keep.min(bytes.len());
    std::fs::write(path, &bytes[..keep]).map_err(|e| format!("write `{path}`: {e}"))
}
