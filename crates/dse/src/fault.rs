//! Fault injection for exercising the engine's failure containment.
//!
//! Production code never imports this module; the fault-injection suite
//! (`tests/faults.rs`) and downstream robustness tests do. The shims wrap
//! a real estimator and misbehave — return an error, or panic outright —
//! for exactly the candidates a *trigger* predicate selects, so a test
//! can prove that one poisoned candidate costs one candidate and nothing
//! else.
//!
//! Triggers see what the engine passes an estimator: the program and the
//! extension set. Select candidates structurally (e.g. "anything whose
//! extension set provides `gfmac`") rather than by display name, which
//! the estimator never learns.

use emx_isa::Program;
use emx_rtlpower::Energy;
use emx_sim::{ExecStats, ProcConfig, SimError};
use emx_tie::ExtensionSet;

use crate::engine::CandidateEstimator;

/// What the shim does when its trigger matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Return a [`SimError::CycleLimit`] — the recoverable-error path.
    Error,
    /// Panic mid-evaluation — the contained-panic path.
    Panic,
}

type Trigger = Box<dyn Fn(&Program, &ExtensionSet) -> bool + Send + Sync>;

/// A [`CandidateEstimator`] that misbehaves on selected candidates and
/// delegates the rest to the wrapped estimator.
pub struct FailingEstimator<E> {
    inner: E,
    mode: FaultMode,
    trigger: Trigger,
}

impl<E: CandidateEstimator> FailingEstimator<E> {
    /// Fails (typed [`SimError`]) every candidate the trigger matches.
    pub fn fail_when(
        inner: E,
        trigger: impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync + 'static,
    ) -> Self {
        FailingEstimator {
            inner,
            mode: FaultMode::Error,
            trigger: Box::new(trigger),
        }
    }

    /// Panics on every candidate the trigger matches.
    pub fn panic_when(
        inner: E,
        trigger: impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync + 'static,
    ) -> Self {
        FailingEstimator {
            inner,
            mode: FaultMode::Panic,
            trigger: Box::new(trigger),
        }
    }
}

/// Trigger matching any candidate whose extension set provides the custom
/// instruction `mnemonic` — the structural way to name a candidate from
/// inside an estimator.
pub fn has_inst(mnemonic: &str) -> impl Fn(&Program, &ExtensionSet) -> bool + Send + Sync {
    let mnemonic = mnemonic.to_owned();
    move |_, ext| ext.by_name(&mnemonic).is_some()
}

impl<E: CandidateEstimator> CandidateEstimator for FailingEstimator<E> {
    // Faults strike the extraction half — the part the engine runs on
    // worker threads and contains per candidate.
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError> {
        if (self.trigger)(program, ext) {
            match self.mode {
                FaultMode::Error => return Err(SimError::CycleLimit(0)),
                FaultMode::Panic => panic!("injected fault: estimator panicked"),
            }
        }
        self.inner.extract(program, ext, config)
    }

    fn price(&self, stats: &ExecStats) -> (Energy, u64) {
        self.inner.price(stats)
    }

    // Salted so a faulty run can never share cache entries with a healthy
    // one (successful extractions do get cached).
    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint() ^ 0xFA17_FA17_FA17_FA17
    }
}

/// A [`CandidateEstimator`] that counts how many times each half of an
/// evaluation actually runs, delegating everything — including both
/// fingerprints — to the wrapped estimator unchanged.
///
/// Because the fingerprints pass through, a counting run shares cache
/// entries with an uncounted one: the shim observes the engine's
/// simulate-vs-reprice decisions without perturbing them. That is
/// exactly what the incremental-reuse tests need — "a refit over a warm
/// merged cache performs zero ISS passes" is an assertion on
/// [`extractions`](CountingEstimator::extractions) staying flat while
/// [`pricings`](CountingEstimator::pricings) advances.
pub struct CountingEstimator<E> {
    inner: E,
    extractions: std::sync::atomic::AtomicUsize,
    pricings: std::sync::atomic::AtomicUsize,
}

impl<E: CandidateEstimator> CountingEstimator<E> {
    /// Wraps an estimator with call counters starting at zero.
    pub fn new(inner: E) -> Self {
        CountingEstimator {
            inner,
            extractions: std::sync::atomic::AtomicUsize::new(0),
            pricings: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// How many extractions (ISS passes) have been attempted.
    pub fn extractions(&self) -> usize {
        self.extractions.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// How many pricings (pure dot products) have run.
    pub fn pricings(&self) -> usize {
        self.pricings.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl<E: CandidateEstimator> CandidateEstimator for CountingEstimator<E> {
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError> {
        self.extractions
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.inner.extract(program, ext, config)
    }

    fn price(&self, stats: &ExecStats) -> (Energy, u64) {
        self.pricings
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.inner.price(stats)
    }

    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }

    fn pricing_fingerprint(&self) -> u64 {
        self.inner.pricing_fingerprint()
    }
}

/// Truncates the file at `path` to its first `keep` bytes — simulates a
/// write cut short by a crash, for cache-recovery tests.
///
/// # Errors
///
/// Propagates read/write failures as strings (test-support only).
pub fn truncate_file(path: &str, keep: usize) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read `{path}`: {e}"))?;
    let keep = keep.min(bytes.len());
    std::fs::write(path, &bytes[..keep]).map_err(|e| format!("write `{path}`: {e}"))
}
