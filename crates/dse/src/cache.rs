//! Content-addressed estimation cache.
//!
//! Estimating a candidate costs one full ISS run; across a search, across
//! repeated CLI invocations, and across spaces that share configurations,
//! the same (program, extension set, processor config) triple recurs. The
//! cache keys each estimate by an FNV-1a hash of the *content* of that
//! triple plus a fingerprint of the fitted macro-model, so a stale model
//! can never serve stale energies — a different model changes every key.
//!
//! The cache serializes to a stable `emx.dse-cache/1` JSON document via
//! `obs::json` for reuse across CLI invocations.

use std::collections::BTreeMap;

use emx_core::EnergyMacroModel;
use emx_isa::Program;
use emx_obs::json::Value;
use emx_sim::ProcConfig;
use emx_tie::ExtensionSet;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over raw bytes.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
}

/// Fingerprint of a fitted macro-model (hash of its stable text form).
pub fn model_fingerprint(model: &EnergyMacroModel) -> u64 {
    let mut h = Fnv::new();
    h.write(model.to_text().as_bytes());
    h.0
}

/// Content hash of one estimation request. Two requests collide only if
/// the encoded program, data image, extension set and processor
/// configuration are all identical — in which case the estimate is too.
pub fn candidate_key(
    model_fp: u64,
    program: &Program,
    ext: &ExtensionSet,
    config: &ProcConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.write(&model_fp.to_le_bytes());
    h.write_u32(program.text_base());
    h.write_u32(program.data_base());
    h.write_u32(program.entry());
    for inst in program.text() {
        h.write_u32(emx_isa::encode(inst));
    }
    h.write(program.data());
    // The extension set and config lack a binary serialization; their
    // derived Debug forms are content-complete and stable within a build.
    h.write(format!("{ext:?}").as_bytes());
    h.write(format!("{config:?}").as_bytes());
    h.0
}

/// One cached estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheEntry {
    /// Estimated energy in picojoules.
    pub energy_pj: f64,
    /// Execution cycles from the ISS.
    pub cycles: u64,
}

/// A content-addressed map from [`candidate_key`] to estimates.
#[derive(Debug, Default)]
pub struct EstimationCache {
    entries: BTreeMap<u64, CacheEntry>,
}

impl EstimationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached estimates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a cached estimate.
    pub fn get(&self, key: u64) -> Option<CacheEntry> {
        self.entries.get(&key).copied()
    }

    /// Stores an estimate.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Serializes the cache as a stable `emx.dse-cache/1` document.
    /// Entries are emitted in ascending key order.
    pub fn to_json(&self) -> Value {
        let mut entries = Value::object();
        for (key, e) in &self.entries {
            let mut v = Value::object();
            v.set("energy_pj", e.energy_pj);
            v.set("cycles", e.cycles);
            entries.set(&format!("{key:016x}"), v);
        }
        let mut doc = Value::object();
        doc.set("schema", "emx.dse-cache/1");
        doc.set("entries", entries);
        doc
    }

    /// Parses a cache document written by [`EstimationCache::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON, declares a
    /// different schema, or contains a malformed entry.
    pub fn from_json_text(text: &str) -> Result<Self, String> {
        let doc = Value::parse(text).map_err(|e| format!("cache file: {e}"))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some("emx.dse-cache/1") => {}
            other => return Err(format!("cache file: unexpected schema {other:?}")),
        }
        let mut cache = EstimationCache::new();
        let entries = doc
            .get("entries")
            .and_then(Value::as_object)
            .ok_or("cache file: missing entries object")?;
        for (key, v) in entries {
            let key =
                u64::from_str_radix(key, 16).map_err(|_| format!("cache file: bad key `{key}`"))?;
            let energy_pj = v
                .get("energy_pj")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("cache file: entry {key:016x} lacks energy_pj"))?;
            let cycles = v
                .get("cycles")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("cache file: entry {key:016x} lacks cycles"))?;
            cache.insert(key, CacheEntry { energy_pj, cycles });
        }
        Ok(cache)
    }

    /// Loads a cache from `path`. A missing file yields an empty cache; a
    /// present-but-corrupt file is an error (silent discard would hide
    /// real problems).
    ///
    /// # Errors
    ///
    /// Propagates read failures other than "not found" and parse errors.
    pub fn load(path: &str) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(format!("cannot read `{path}`: {e}")),
        }
    }

    /// Writes the cache to `path`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_workloads::{exts, suite};

    #[test]
    fn keys_separate_programs_exts_and_configs() {
        let suite = suite::calibration_programs();
        let (a, b) = (&suite[0], &suite[1]);
        let config = ProcConfig::default();
        let ka = candidate_key(1, a.program(), a.ext(), &config);
        let kb = candidate_key(1, b.program(), b.ext(), &config);
        assert_ne!(ka, kb, "different programs must have different keys");

        let ke = candidate_key(1, a.program(), &exts::gf16(), &config);
        assert_ne!(ka, ke, "different extension sets must differ");

        let mut other = ProcConfig::default();
        other.clock_mhz += 1.0;
        let kc = candidate_key(1, a.program(), a.ext(), &other);
        assert_ne!(ka, kc, "different configs must differ");

        let km = candidate_key(2, a.program(), a.ext(), &config);
        assert_ne!(ka, km, "different models must differ");

        // Same content twice: identical key.
        assert_eq!(ka, candidate_key(1, a.program(), a.ext(), &config));
    }

    #[test]
    fn json_round_trip() {
        let mut cache = EstimationCache::new();
        cache.insert(
            42,
            CacheEntry {
                energy_pj: 123456.789,
                cycles: 9876,
            },
        );
        cache.insert(
            7,
            CacheEntry {
                energy_pj: 0.125,
                cycles: 1,
            },
        );
        let text = cache.to_json().to_string();
        let reloaded = EstimationCache::from_json_text(&text).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(42), cache.get(42));
        assert_eq!(reloaded.get(7), cache.get(7));
        // Serialization is canonical: a second dump is byte-identical.
        assert_eq!(reloaded.to_json().to_string(), text);
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(EstimationCache::from_json_text("not json").is_err());
        assert!(EstimationCache::from_json_text("{\"schema\":\"other/1\"}").is_err());
        assert!(EstimationCache::from_json_text(
            "{\"schema\":\"emx.dse-cache/1\",\"entries\":{\"zz\":{}}}"
        )
        .is_err());
    }
}
