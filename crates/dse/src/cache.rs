//! Content-addressed extraction cache.
//!
//! Simulating a candidate costs one full ISS run; across a search, across
//! repeated CLI invocations, and across spaces that share configurations,
//! the same (program, extension set, processor config) triple recurs. The
//! cache keys each **extraction** — the raw [`ExecStats`] counts, not a
//! priced energy — by an FNV-1a hash of the *content* of that triple plus
//! a fingerprint of the extraction semantics (see
//! [`crate::extract::EXTRACTION_SCHEMA`]). Storing counts instead of
//! energies means a refitted macro-model re-prices every cached entry
//! without a single new simulation, and a changed *simulator* (which
//! would change the counts) still invalidates every key.
//!
//! The cache serializes to a stable `emx.dse-cache/2` JSON document via
//! `obs::json` for reuse across CLI invocations. Version 1 files (which
//! stored priced energies keyed by model fingerprint) are quarantined on
//! load like any other foreign schema, and the run starts cold.

use std::collections::BTreeMap;

use emx_core::EnergyMacroModel;
use emx_isa::Program;
use emx_obs::json::Value;
use emx_sim::{ExecStats, ProcConfig};
use emx_tie::ExtensionSet;

use crate::error::CacheError;

/// The persisted document schema this cache reads and writes.
pub const SCHEMA: &str = "emx.dse-cache/2";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over raw bytes.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
}

/// FNV-1a fingerprint of arbitrary content bytes.
pub fn content_fingerprint(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.0
}

/// Fingerprint of a fitted macro-model (hash of its stable text form).
///
/// Since the cache stores model-independent extractions, this no longer
/// feeds [`candidate_key`] — the engine keys by
/// [`crate::extract::extraction_fingerprint`] instead — but reports and
/// model cards still use it to identify a fitted model.
pub fn model_fingerprint(model: &EnergyMacroModel) -> u64 {
    content_fingerprint(model.to_text().as_bytes())
}

/// Content hash of one extraction request. Two requests collide only if
/// the encoded program, data image, extension set and processor
/// configuration are all identical — in which case the extracted counts
/// are too.
pub fn candidate_key(
    extraction_fp: u64,
    program: &Program,
    ext: &ExtensionSet,
    config: &ProcConfig,
) -> u64 {
    let mut h = Fnv::new();
    h.write(&extraction_fp.to_le_bytes());
    h.write_u32(program.text_base());
    h.write_u32(program.data_base());
    h.write_u32(program.entry());
    for inst in program.text() {
        h.write_u32(emx_isa::encode(inst));
    }
    h.write(program.data());
    // The extension set and config lack a binary serialization; their
    // derived Debug forms are content-complete and stable within a build.
    h.write(format!("{ext:?}").as_bytes());
    h.write(format!("{config:?}").as_bytes());
    h.0
}

/// One cached extraction: the full template-variable counts of one
/// simulated candidate, ready to be re-priced under any macro-model.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// The extracted execution statistics.
    pub stats: ExecStats,
}

/// A content-addressed map from [`candidate_key`] to extractions.
#[derive(Debug, Default)]
pub struct EstimationCache {
    entries: BTreeMap<u64, CacheEntry>,
}

impl EstimationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached extractions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a cached extraction.
    pub fn get(&self, key: u64) -> Option<CacheEntry> {
        self.entries.get(&key).cloned()
    }

    /// Stores an extraction.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) {
        self.entries.insert(key, entry);
    }

    /// Iterates the cached extractions in ascending key order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &CacheEntry)> {
        self.entries.iter().map(|(&k, e)| (k, e))
    }

    /// The set of keys currently cached. Snapshot it before a run and
    /// feed it to [`EstimationCache::delta_since`] afterwards to get the
    /// extractions that run added — what a shard report ships.
    pub fn key_set(&self) -> std::collections::BTreeSet<u64> {
        self.entries.keys().copied().collect()
    }

    /// The entries whose keys are absent from `baseline` — the delta a
    /// run added on top of a snapshotted [`EstimationCache::key_set`].
    pub fn delta_since(&self, baseline: &std::collections::BTreeSet<u64>) -> EstimationCache {
        let mut delta = EstimationCache::new();
        for (k, e) in self.entries() {
            if !baseline.contains(&k) {
                delta.insert(k, e.clone());
            }
        }
        delta
    }

    /// Folds every entry of `other` into this cache. Keys are content
    /// hashes, so a key present on both sides addresses the same
    /// extraction; which copy wins is immaterial.
    pub fn absorb(&mut self, other: EstimationCache) {
        self.entries.extend(other.entries);
    }

    /// Serializes the cache as a stable `emx.dse-cache/2` document.
    /// Entries are emitted in ascending key order; each entry value is
    /// the `emx.exec-stats/1` document of its extraction.
    pub fn to_json(&self) -> Value {
        let mut entries = Value::object();
        for (key, e) in &self.entries {
            entries.set(&format!("{key:016x}"), e.stats.to_json());
        }
        let mut doc = Value::object();
        doc.set("schema", SCHEMA);
        doc.set("entries", entries);
        doc
    }

    /// Parses a cache document written by [`EstimationCache::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`CacheError`] if the text is not valid JSON, declares a
    /// different schema, or contains a malformed entry. For
    /// best-effort recovery of a damaged file use
    /// [`EstimationCache::salvage_json_text`] instead.
    pub fn from_json_text(text: &str) -> Result<Self, CacheError> {
        let (cache, salvage) = Self::salvage_json_text(text)?;
        if let Some(first_bad) = salvage.skipped.into_iter().next() {
            return Err(CacheError::BadEntry(first_bad));
        }
        Ok(cache)
    }

    /// Best-effort parse: returns every well-formed entry of the document
    /// plus a description of what was skipped.
    ///
    /// Unlike [`EstimationCache::from_json_text`], malformed *entries* do
    /// not fail the whole document — keys are content hashes, so a good
    /// entry stays valid no matter what sits next to it in the file.
    ///
    /// # Errors
    ///
    /// Still errors when nothing is salvageable: unparseable JSON
    /// (typically a write cut short by a crash), a different `schema`
    /// (entries keyed by another scheme must not be trusted), or a missing
    /// `entries` object.
    pub fn salvage_json_text(text: &str) -> Result<(Self, CacheSalvage), CacheError> {
        let doc = Value::parse(text).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        match doc.get("schema").and_then(Value::as_str) {
            Some(SCHEMA) => {}
            other => return Err(CacheError::SchemaMismatch(format!("{other:?}"))),
        }
        let entries = doc
            .get("entries")
            .and_then(Value::as_object)
            .ok_or_else(|| CacheError::Corrupt("missing entries object".to_owned()))?;
        let mut cache = EstimationCache::new();
        let mut salvage = CacheSalvage::default();
        for (key, v) in entries {
            let Ok(key_value) = u64::from_str_radix(key, 16) else {
                salvage.skipped.push(format!("bad key `{key}`"));
                continue;
            };
            match ExecStats::from_json(v) {
                Some(stats) => {
                    cache.insert(key_value, CacheEntry { stats });
                    salvage.recovered += 1;
                }
                None => salvage.skipped.push(format!(
                    "entry {key_value:016x} lacks a well-formed stats document"
                )),
            }
        }
        Ok((cache, salvage))
    }

    /// Loads a cache from `path`. A missing file yields an empty cache; a
    /// present-but-corrupt file is an error (use
    /// [`EstimationCache::load_or_recover`] for the quarantine-and-rebuild
    /// behaviour the CLI wants).
    ///
    /// # Errors
    ///
    /// Propagates read failures other than "not found" and parse errors.
    pub fn load(path: &str) -> Result<Self, CacheError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json_text(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::new()),
            Err(e) => Err(CacheError::Io(format!("`{path}`: {e}"))),
        }
    }

    /// Loads a cache from `path`, recovering from corruption instead of
    /// refusing to start: a damaged or schema-mismatched file is
    /// **quarantined** (renamed to `<path>.corrupt`, preserving the
    /// evidence) and every salvageable entry is kept. The exploration then
    /// proceeds — at worst cold, never aborted.
    ///
    /// Returns the cache plus a [`CacheRecovery`] describing what happened
    /// (`None` when the file was absent or fully healthy).
    ///
    /// # Errors
    ///
    /// Only unrecoverable conditions: the file exists but cannot be read,
    /// or the quarantine rename itself fails (both leave the bad file in
    /// place, so nothing is lost).
    pub fn load_or_recover(path: &str) -> Result<(Self, Option<CacheRecovery>), CacheError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Self::new(), None)),
            Err(e) => return Err(CacheError::Io(format!("`{path}`: {e}"))),
        };
        let (cache, cause, salvage) = match Self::salvage_json_text(&text) {
            Ok((cache, salvage)) if salvage.skipped.is_empty() => return Ok((cache, None)),
            Ok((cache, salvage)) => {
                let cause = CacheError::BadEntry(salvage.skipped.join("; "));
                (cache, cause, salvage)
            }
            Err(cause) => (Self::new(), cause, CacheSalvage::default()),
        };
        let quarantine = format!("{path}.corrupt");
        std::fs::rename(path, &quarantine)
            .map_err(|e| CacheError::WriteFailed(format!("quarantine to `{quarantine}`: {e}")))?;
        Ok((
            cache,
            Some(CacheRecovery {
                cause,
                quarantined_to: quarantine,
                recovered: salvage.recovered,
                skipped: salvage.skipped.len(),
            }),
        ))
    }

    /// Writes the cache to `path` **atomically**: the document is written
    /// to `<path>.tmp` and renamed into place, so a crash mid-write can
    /// never leave a truncated cache where a good one stood.
    ///
    /// # Errors
    ///
    /// Propagates write and rename failures (the temp file is cleaned up).
    pub fn save(&self, path: &str) -> Result<(), CacheError> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, text).map_err(|e| CacheError::WriteFailed(format!("`{tmp}`: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CacheError::WriteFailed(format!("rename `{tmp}` -> `{path}`: {e}"))
        })
    }
}

/// A clonable, thread-safe handle to one [`EstimationCache`] shared by
/// many readers and writers — the form a long-running service needs,
/// where concurrent request lanes and a batch evaluator all consult the
/// same memo.
///
/// The handle recovers from lock poisoning instead of propagating it:
/// every cache operation (a `BTreeMap<u64, CacheEntry>` lookup-clone or
/// insert of an already-constructed entry) leaves the map valid between
/// operations — the `u64` key's `Ord` cannot panic, and a panic while
/// cloning an entry out happens before the map is touched — so a thread
/// that panicked while holding the lock cannot have left a half-written
/// entry behind. Recovering the guard is therefore sound, and one
/// panicking request must not take the cache away from every other lane
/// (the same argument as `engine::lock_recovering`).
#[derive(Debug, Clone, Default)]
pub struct SharedEstimationCache {
    inner: std::sync::Arc<std::sync::Mutex<EstimationCache>>,
}

impl SharedEstimationCache {
    /// Wraps a cache in a shared handle.
    pub fn new(cache: EstimationCache) -> Self {
        SharedEstimationCache {
            inner: std::sync::Arc::new(std::sync::Mutex::new(cache)),
        }
    }

    /// Loads a cache from `path` with the quarantine-and-salvage
    /// behaviour of [`EstimationCache::load_or_recover`], wrapped in a
    /// shared handle.
    ///
    /// # Errors
    ///
    /// As for [`EstimationCache::load_or_recover`].
    pub fn load_or_recover(path: &str) -> Result<(Self, Option<CacheRecovery>), CacheError> {
        let (cache, recovery) = EstimationCache::load_or_recover(path)?;
        Ok((Self::new(cache), recovery))
    }

    /// Locks the cache, recovering the guard if a previous holder
    /// panicked (see the type-level soundness argument).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, EstimationCache> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a cached estimate.
    pub fn get(&self, key: u64) -> Option<CacheEntry> {
        self.lock().get(key)
    }

    /// Stores an estimate.
    pub fn insert(&self, key: u64, entry: CacheEntry) {
        self.lock().insert(key, entry);
    }

    /// Number of cached estimates.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Writes the cache to `path` atomically (see
    /// [`EstimationCache::save`]). The lock is held across the write, so
    /// the snapshot is consistent.
    ///
    /// # Errors
    ///
    /// As for [`EstimationCache::save`].
    pub fn save(&self, path: &str) -> Result<(), CacheError> {
        self.lock().save(path)
    }
}

/// What [`EstimationCache::salvage_json_text`] managed to keep.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheSalvage {
    /// Entries recovered intact.
    pub recovered: usize,
    /// Human-readable descriptions of the entries skipped.
    pub skipped: Vec<String>,
}

/// The outcome of a [`EstimationCache::load_or_recover`] that found a
/// damaged file.
#[derive(Debug)]
pub struct CacheRecovery {
    /// Why the file could not be used as-is.
    pub cause: CacheError,
    /// Where the damaged file was preserved.
    pub quarantined_to: String,
    /// Entries salvaged into the returned cache.
    pub recovered: usize,
    /// Entries dropped as malformed.
    pub skipped: usize,
}

impl std::fmt::Display for CacheRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}; quarantined to `{}`, salvaged {} entries ({} skipped)",
            self.cause, self.quarantined_to, self.recovered, self.skipped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_workloads::{exts, suite};

    /// A distinguishable extraction entry for round-trip tests.
    fn entry(cycles: u64) -> CacheEntry {
        let mut stats = ExecStats::new(1);
        stats.total_cycles = cycles;
        stats.inst_count = cycles / 2;
        stats.class_cycles[0] = cycles / 3;
        stats.custom_counts[0] = cycles % 5;
        stats.struct_activity[0] = cycles as f64 / 3.0;
        CacheEntry { stats }
    }

    #[test]
    fn keys_separate_programs_exts_and_configs() {
        let suite = suite::calibration_programs();
        let (a, b) = (&suite[0], &suite[1]);
        let config = ProcConfig::default();
        let ka = candidate_key(1, a.program(), a.ext(), &config);
        let kb = candidate_key(1, b.program(), b.ext(), &config);
        assert_ne!(ka, kb, "different programs must have different keys");

        let ke = candidate_key(1, a.program(), &exts::gf16(), &config);
        assert_ne!(ka, ke, "different extension sets must differ");

        let mut other = ProcConfig::default();
        other.clock_mhz += 1.0;
        let kc = candidate_key(1, a.program(), a.ext(), &other);
        assert_ne!(ka, kc, "different configs must differ");

        let km = candidate_key(2, a.program(), a.ext(), &config);
        assert_ne!(ka, km, "different models must differ");

        // Same content twice: identical key.
        assert_eq!(ka, candidate_key(1, a.program(), a.ext(), &config));
    }

    #[test]
    fn json_round_trip() -> Result<(), CacheError> {
        let mut cache = EstimationCache::new();
        cache.insert(42, entry(9876));
        cache.insert(7, entry(1));
        let text = cache.to_json().to_string();
        let reloaded = EstimationCache::from_json_text(&text)?;
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get(42), cache.get(42));
        assert_eq!(reloaded.get(7), cache.get(7));
        // Serialization is canonical: a second dump is byte-identical.
        assert_eq!(reloaded.to_json().to_string(), text);
        Ok(())
    }

    #[test]
    fn bad_documents_are_rejected() {
        assert!(matches!(
            EstimationCache::from_json_text("not json"),
            Err(CacheError::Corrupt(_))
        ));
        assert!(matches!(
            EstimationCache::from_json_text("{\"schema\":\"other/1\"}"),
            Err(CacheError::SchemaMismatch(_))
        ));
        assert!(matches!(
            EstimationCache::from_json_text(
                "{\"schema\":\"emx.dse-cache/2\",\"entries\":{\"zz\":{}}}"
            ),
            Err(CacheError::BadEntry(_))
        ));
        // A well-formed key whose value is not a stats document is a bad
        // entry, not a panic or a zeroed extraction.
        assert!(matches!(
            EstimationCache::from_json_text(
                "{\"schema\":\"emx.dse-cache/2\",\"entries\":{\"0000000000000001\":{}}}"
            ),
            Err(CacheError::BadEntry(_))
        ));
    }

    /// A scratch path under the system temp dir, cleaned up on drop.
    struct Scratch(String);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let path = std::env::temp_dir().join(format!("emx-dse-cache-{tag}-{pid}.json"));
            Scratch(path.to_string_lossy().into_owned())
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            for suffix in ["", ".tmp", ".corrupt"] {
                let _ = std::fs::remove_file(format!("{}{suffix}", self.0));
            }
        }
    }

    #[test]
    fn shared_cache_survives_concurrent_hammering_and_poisoning() {
        let shared = SharedEstimationCache::new(EstimationCache::new());

        // Poison the lock on purpose: a panic while holding the guard
        // must not take the cache away from every other thread.
        let poisoner = shared.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock();
            panic!("poisoning the shared cache lock on purpose");
        })
        .join();

        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 400;
        let scratch = Scratch::new("shared-hammer");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let shared = shared.clone();
                let path = scratch.0.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let key = (t << 32) | i;
                        shared.insert(key, entry(i));
                        // Reads of our own writes are immediate; reads of
                        // other threads' keys must never tear or panic.
                        assert_eq!(shared.get(key).map(|e| e.stats.total_cycles), Some(i));
                        let _ = shared.get(((t + 1) % THREADS) << 32 | i);
                        // One thread interleaves atomic saves with the
                        // writers: every snapshot it takes is consistent.
                        if t == 0 && i % 64 == 0 {
                            shared.save(&path).expect("concurrent save");
                        }
                    }
                });
            }
        });
        assert_eq!(shared.len() as u64, THREADS * PER_THREAD);

        // The last snapshot written concurrently still parses cleanly.
        shared.save(&scratch.0).expect("final save");
        let reloaded = EstimationCache::load(&scratch.0).expect("reload");
        assert_eq!(reloaded.len() as u64, THREADS * PER_THREAD);
    }

    #[test]
    fn save_is_atomic_and_round_trips_through_disk() -> Result<(), CacheError> {
        let scratch = Scratch::new("atomic");
        let mut cache = EstimationCache::new();
        cache.insert(3, entry(2));
        cache.save(&scratch.0)?;
        assert!(
            !std::path::Path::new(&format!("{}.tmp", scratch.0)).exists(),
            "temp file must be renamed away"
        );
        let reloaded = EstimationCache::load(&scratch.0)?;
        assert_eq!(reloaded.get(3), cache.get(3));
        Ok(())
    }

    #[test]
    fn truncated_write_is_quarantined_and_run_starts_cold() -> Result<(), CacheError> {
        let scratch = Scratch::new("truncated");
        let mut cache = EstimationCache::new();
        cache.insert(9, entry(8));
        cache.save(&scratch.0)?;
        // Simulate a crash mid-write: chop the file in half.
        let text =
            std::fs::read_to_string(&scratch.0).map_err(|e| CacheError::Io(e.to_string()))?;
        std::fs::write(&scratch.0, &text[..text.len() / 2])
            .map_err(|e| CacheError::Io(e.to_string()))?;

        // Strict load refuses; recovery quarantines and starts cold.
        assert!(matches!(
            EstimationCache::load(&scratch.0),
            Err(CacheError::Corrupt(_))
        ));
        let (recovered, recovery) = EstimationCache::load_or_recover(&scratch.0)?;
        assert!(recovered.is_empty(), "nothing salvageable from cut JSON");
        let recovery = recovery.ok_or(CacheError::Corrupt("expected recovery".into()))?;
        assert!(matches!(recovery.cause, CacheError::Corrupt(_)));
        assert!(std::path::Path::new(&recovery.quarantined_to).exists());
        assert!(
            !std::path::Path::new(&scratch.0).exists(),
            "damaged file must be moved out of the way"
        );

        // A fresh save then works and reloads cleanly: the rebuild path.
        cache.save(&scratch.0)?;
        let (warm, recovery) = EstimationCache::load_or_recover(&scratch.0)?;
        assert!(recovery.is_none());
        assert_eq!(warm.get(9), cache.get(9));
        Ok(())
    }

    #[test]
    fn partial_damage_salvages_good_entries() -> Result<(), CacheError> {
        let scratch = Scratch::new("salvage");
        // One intact extraction plus one malformed entry, spliced in
        // through the document tree so the test is immune to the
        // serializer's formatting.
        let mut entries = Value::object();
        entries.set("zz", Value::object());
        entries.set("000000000000002a", entry(5).stats.to_json());
        let mut doc = Value::object();
        doc.set("schema", SCHEMA);
        doc.set("entries", entries);
        std::fs::write(&scratch.0, doc.to_string()).map_err(|e| CacheError::Io(e.to_string()))?;
        let (cache, recovery) = EstimationCache::load_or_recover(&scratch.0)?;
        assert_eq!(cache.len(), 1, "the intact entry survives");
        assert_eq!(cache.get(0x2a).map(|e| e.stats.total_cycles), Some(5));
        let recovery = recovery.ok_or(CacheError::Corrupt("expected recovery".into()))?;
        assert_eq!(recovery.recovered, 1);
        assert_eq!(recovery.skipped, 1);
        Ok(())
    }

    #[test]
    fn schema_mismatch_is_quarantined_not_trusted() -> Result<(), CacheError> {
        // A version-1 file (priced energies keyed by model fingerprint)
        // is the realistic foreign schema after the v2 migration: its
        // entries cannot be re-priced and must not be trusted.
        let scratch = Scratch::new("schema");
        std::fs::write(
            &scratch.0,
            "{\"schema\":\"emx.dse-cache/1\",\"entries\":{\
             \"000000000000002a\":{\"energy_pj\":1.0,\"cycles\":5}}}",
        )
        .map_err(|e| CacheError::Io(e.to_string()))?;
        let (cache, recovery) = EstimationCache::load_or_recover(&scratch.0)?;
        assert!(
            cache.is_empty(),
            "foreign-schema entries must not be trusted"
        );
        let recovery = recovery.ok_or(CacheError::Corrupt("expected recovery".into()))?;
        assert!(matches!(recovery.cause, CacheError::SchemaMismatch(_)));
        Ok(())
    }
}
