//! The exploration engine: cached parallel batch evaluation plus the
//! search driver that turns a candidate space into a ranked outcome.
//!
//! Parallelism is deterministic by construction: the work queue only
//! decides *which thread* evaluates a candidate, never the result — each
//! estimate is a pure function of (model, program, extension, config) and
//! lands in an index-addressed slot. Cache hits and misses are decided
//! before any thread starts, so the observability counters are stable
//! across worker counts too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use emx_core::EnergyMacroModel;
use emx_obs::{Collector, Track};
use emx_rtlpower::Energy;
use emx_sim::{ProcConfig, SimError};

use crate::cache::{candidate_key, model_fingerprint, CacheEntry, EstimationCache};
use crate::point::{pareto_front, rank_by_edp, DesignPoint};
use crate::space::{CandidateSpace, Enumeration};

/// Resolves a `--jobs` request: 0 means "one worker per available core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Evaluates every candidate of an enumeration through the macro-model
/// fast path, in parallel, with content-addressed caching.
///
/// Cache lookups happen up front on the calling thread; only misses enter
/// the shared work queue, where up to `jobs` scoped workers (0 = auto)
/// drain them. Each worker records its evaluations as spans on its own
/// [`Track::Worker`] lane, merged back into `obs` afterwards. Counters
/// `dse.cache.hits` / `dse.cache.misses` are added here.
///
/// The returned points are in candidate order and are byte-for-byte
/// independent of `jobs` and of cache warmth.
///
/// # Errors
///
/// Returns the first simulation failure observed; remaining work is
/// abandoned and nothing from the failed batch enters the cache.
pub fn evaluate_batch(
    model: &EnergyMacroModel,
    candidates: &[crate::space::EnumeratedCandidate],
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> Result<Vec<DesignPoint>, SimError> {
    let fp = model_fingerprint(model);
    let keys: Vec<u64> = candidates
        .iter()
        .map(|c| candidate_key(fp, c.workload.program(), c.workload.ext(), config))
        .collect();

    let mut results: Vec<Option<DesignPoint>> = vec![None; candidates.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        match cache.get(keys[i]) {
            Some(entry) => {
                results[i] = Some(DesignPoint {
                    name: c.name.clone(),
                    energy: Energy::from_picojoules(entry.energy_pj),
                    cycles: entry.cycles,
                });
            }
            None => misses.push(i),
        }
    }
    obs.add("dse.cache.hits", (candidates.len() - misses.len()) as f64);
    obs.add("dse.cache.misses", misses.len() as f64);

    if !misses.is_empty() {
        let workers = resolve_jobs(jobs).min(misses.len());
        let next = Mutex::new(0usize);
        let out: Mutex<Vec<Option<(Energy, u64)>>> = Mutex::new(vec![None; misses.len()]);
        let failed: Mutex<Option<SimError>> = Mutex::new(None);
        let abort = AtomicBool::new(false);

        let mut children: Vec<Collector> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    let mut child = obs.fork();
                    let (next, out, failed, abort) = (&next, &out, &failed, &abort);
                    let misses = &misses;
                    s.spawn(move || {
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let slot = {
                                let mut guard = next.lock().expect("queue lock");
                                let slot = *guard;
                                *guard += 1;
                                slot
                            };
                            if slot >= misses.len() {
                                break;
                            }
                            let c = &candidates[misses[slot]];
                            let span = child
                                .begin_on(format!("evaluate:{}", c.name), Track::Worker(k as u32));
                            let r = model.estimate(
                                c.workload.program(),
                                c.workload.ext(),
                                config.clone(),
                            );
                            child.end(span);
                            match r {
                                Ok(est) => {
                                    out.lock().expect("result lock")[slot] =
                                        Some((est.energy, est.stats.total_cycles));
                                }
                                Err(e) => {
                                    let mut guard = failed.lock().expect("error lock");
                                    guard.get_or_insert(e);
                                    abort.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        child
                    })
                })
                .collect();
            for h in handles {
                children.push(h.join().expect("worker panicked"));
            }
        });
        for child in children {
            obs.absorb(child);
        }

        if let Some(e) = failed.into_inner().expect("error lock") {
            return Err(e);
        }
        for (slot, value) in out
            .into_inner()
            .expect("result lock")
            .into_iter()
            .enumerate()
        {
            let (energy, cycles) = value.expect("every miss evaluated");
            let i = misses[slot];
            cache.insert(
                keys[i],
                CacheEntry {
                    energy_pj: energy.as_picojoules(),
                    cycles,
                },
            );
            results[i] = Some(DesignPoint {
                name: candidates[i].name.clone(),
                energy,
                cycles,
            });
        }
    }

    Ok(results.into_iter().map(|p| p.expect("filled")).collect())
}

/// The complete outcome of one search: the enumeration, the evaluated
/// points (parallel to `enumeration.candidates`), and derived rankings.
#[derive(Debug)]
pub struct Exploration {
    /// Name of the explored space.
    pub space_name: String,
    /// The area budget applied, if any.
    pub budget: Option<f64>,
    /// The enumeration that produced the candidates.
    pub enumeration: Enumeration,
    /// One evaluated point per surviving candidate, in candidate order.
    pub points: Vec<DesignPoint>,
    /// Candidate indices on the energy/cycles Pareto front (ascending
    /// cycles).
    pub pareto: Vec<usize>,
    /// Index of the candidate with the lowest energy.
    pub best_energy: Option<usize>,
    /// Index of the candidate with the lowest energy-delay product.
    pub best_edp: Option<usize>,
    /// Index of the zero-hardware base candidate, if it survived.
    pub base: Option<usize>,
}

/// Runs the full search: enumerate under the budget, evaluate the
/// survivors (cached, parallel), and rank the outcome.
///
/// Adds `dse.enumerated`, `dse.over_budget`, `dse.pruned` and
/// `dse.evaluated` counters and wraps the two phases in spans.
///
/// # Errors
///
/// Propagates the first evaluation failure (see [`evaluate_batch`]).
pub fn explore(
    model: &EnergyMacroModel,
    space: &CandidateSpace,
    budget: Option<f64>,
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> Result<Exploration, SimError> {
    let span = obs.begin("dse.enumerate");
    let enumeration = space.enumerate(budget);
    obs.end(span);
    obs.add("dse.enumerated", enumeration.enumerated as f64);
    obs.add("dse.over_budget", enumeration.over_budget as f64);
    obs.add("dse.pruned", enumeration.pruned as f64);
    obs.add("dse.evaluated", enumeration.candidates.len() as f64);

    let span = obs.begin("dse.evaluate");
    let points = evaluate_batch(model, &enumeration.candidates, config, jobs, cache, obs)?;
    obs.end(span);

    let pareto = pareto_front(&points);
    let best_energy = (0..points.len()).min_by(|&a, &b| {
        points[a]
            .energy
            .as_picojoules()
            .total_cmp(&points[b].energy.as_picojoules())
    });
    let best_edp = rank_by_edp(&points).first().copied();
    let base = enumeration.candidates.iter().position(|c| c.mask == 0);

    Ok(Exploration {
        space_name: space.name().to_owned(),
        budget,
        enumeration,
        points,
        pareto,
        best_energy,
        best_edp,
        base,
    })
}
