//! The exploration engine: cached parallel batch evaluation plus the
//! search driver that turns a candidate space into a ranked outcome.
//!
//! Parallelism is deterministic by construction: the work queue only
//! decides *which thread* extracts a candidate, never the result — each
//! extraction is a pure function of (program, extension, config), lands
//! in an index-addressed slot, and is priced by the coordinator with one
//! pure dot product. Cache hits and misses are decided before any thread
//! starts, so the observability counters are stable across worker counts
//! too.
//!
//! Failures are *contained*: a candidate whose evaluation errors — or
//! panics — costs exactly that candidate. The worker catches the panic,
//! records a typed [`FailedCandidate`], and moves to the next slot; the
//! coordinator never unwinds, the batch completes, and the ranking is
//! computed over the survivors. A poisoned queue or result lock is
//! recovered (the protected data is an index or a slot table, both valid
//! at every step), so one bad candidate cannot cascade into a dead batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, PoisonError};

use emx_core::EnergyMacroModel;
use emx_isa::Program;
use emx_obs::{Collector, Track};
use emx_rtlpower::Energy;
use emx_sim::{ExecStats, ProcConfig, SimError};
use emx_tie::ExtensionSet;

use crate::cache::{candidate_key, CacheEntry, EstimationCache};
use crate::error::DseError;
use crate::point::{pareto_front, rank_by_edp, DesignPoint};
use crate::shard::{self, ShardSpec};
use crate::space::{CandidateSpace, Enumeration};

/// Resolves a `--jobs` request: 0 means "one worker per available core".
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Sound here because every structure behind a lock in this module is
/// valid between operations: the queue index is a plain counter and the
/// slot table holds independent per-candidate cells, so a panicking
/// holder cannot leave either in a half-updated state.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Anything that can evaluate one candidate: the macro-model in
/// production, a fault-injecting shim in tests (see [`crate::fault`]).
///
/// Evaluation is split into its two differently priced halves (see
/// [`crate::extract`]): [`extract`](CandidateEstimator::extract) runs
/// the simulation once and returns raw counts, and
/// [`price`](CandidateEstimator::price) turns counts into `(energy,
/// cycles)` without simulating. The engine caches extractions and
/// re-prices them on every hit, so pricing must be cheap, pure and
/// deterministic in its input.
///
/// The `fingerprint` feeds the content-addressed cache key, so two
/// estimators that could **extract** different counts for any candidate
/// must report different fingerprints. Estimators that differ only in
/// pricing (e.g. refitted coefficient vectors over the same simulator)
/// should share one, so cached extractions survive a model refit.
pub trait CandidateEstimator: Sync {
    /// Simulates one candidate and returns its raw template-variable
    /// counts — the expensive, model-independent half.
    ///
    /// # Errors
    ///
    /// Whatever simulation error the underlying flow hits; the engine
    /// contains it to this candidate.
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError>;

    /// Prices already-extracted counts: `(energy, cycles)`. Pure — no
    /// simulation, no I/O.
    fn price(&self, stats: &ExecStats) -> (Energy, u64);

    /// Content fingerprint of the extraction semantics, for cache keying.
    fn fingerprint(&self) -> u64;

    /// Content fingerprint of the *pricing* semantics. Two estimators
    /// whose [`price`](CandidateEstimator::price) could differ on any
    /// counts must report different values — the partition fingerprint
    /// hashes this so shards priced under different models can never be
    /// merged into one report. Defaults to the extraction fingerprint
    /// for estimators whose pricing has no independent identity.
    fn pricing_fingerprint(&self) -> u64 {
        self.fingerprint()
    }

    /// Extraction and pricing in one call, for flows that evaluate a
    /// single candidate without a cache.
    ///
    /// # Errors
    ///
    /// As for [`CandidateEstimator::extract`].
    fn estimate_candidate(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<(Energy, u64), SimError> {
        Ok(self.price(&self.extract(program, ext, config)?))
    }
}

impl<T: CandidateEstimator + ?Sized> CandidateEstimator for &T {
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError> {
        (**self).extract(program, ext, config)
    }

    fn price(&self, stats: &ExecStats) -> (Energy, u64) {
        (**self).price(stats)
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }

    fn pricing_fingerprint(&self) -> u64 {
        (**self).pricing_fingerprint()
    }

    fn estimate_candidate(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<(Energy, u64), SimError> {
        (**self).estimate_candidate(program, ext, config)
    }
}

impl CandidateEstimator for EnergyMacroModel {
    fn extract(
        &self,
        program: &Program,
        ext: &ExtensionSet,
        config: ProcConfig,
    ) -> Result<ExecStats, SimError> {
        crate::extract::extract_counts(program, ext, config)
    }

    fn price(&self, stats: &ExecStats) -> (Energy, u64) {
        crate::extract::price(self, stats)
    }

    // Extraction ignores the fitted coefficients entirely, so every
    // macro-model shares the extraction-schema fingerprint and a refit
    // re-prices the warm cache instead of going cold.
    fn fingerprint(&self) -> u64 {
        crate::extract::extraction_fingerprint()
    }

    // Pricing *is* the fitted coefficient vector: refitting changes the
    // energies a shard report carries, so it must change the partition
    // fingerprint even though the extraction cache stays valid.
    fn pricing_fingerprint(&self) -> u64 {
        crate::cache::model_fingerprint(self)
    }
}

/// One candidate the batch could not price, with the typed cause. The
/// batch itself survives; these are reported, not thrown.
#[derive(Debug)]
pub struct FailedCandidate {
    /// The candidate's display name.
    pub name: String,
    /// Why its evaluation failed.
    pub error: DseError,
}

/// The outcome of [`evaluate_batch`]: per-candidate points (slot *i*
/// belongs to candidate *i*; `None` marks a failure) plus the failure
/// records.
#[derive(Debug)]
pub struct BatchResult {
    /// One slot per input candidate, `None` where evaluation failed.
    pub points: Vec<Option<DesignPoint>>,
    /// The failed candidates, in candidate order.
    pub failed: Vec<FailedCandidate>,
    /// Candidates priced from cached extractions (cache hits).
    pub reused: usize,
    /// Candidates whose extraction was attempted this run (cache
    /// misses — including the ones that failed).
    pub evaluated: usize,
}

/// Evaluates every candidate of an enumeration through the macro-model
/// fast path, in parallel, with content-addressed extraction caching.
///
/// Cache lookups happen up front on the calling thread, and hits are
/// re-priced there (a dot product each — simulate once, price many);
/// only misses enter the shared work queue, where up to `jobs` scoped
/// workers (0 = auto) drain them. Each worker records its evaluations as spans on its own
/// [`Track::Worker`] lane, merged back into `obs` afterwards. Counters
/// `dse.cache.hits` / `dse.cache.misses` are added here.
///
/// The returned points are in candidate order and are byte-for-byte
/// independent of `jobs` and of cache warmth.
///
/// A failing — or panicking — candidate does not abort the batch: its
/// slot comes back `None` with a [`FailedCandidate`] record, nothing of
/// it enters the cache, and every other candidate is still evaluated.
pub fn evaluate_batch(
    model: &EnergyMacroModel,
    candidates: &[crate::space::EnumeratedCandidate],
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> BatchResult {
    evaluate_batch_with(model, candidates, config, jobs, cache, obs)
}

/// [`evaluate_batch`] over any [`CandidateEstimator`] — the injection
/// point for fault testing.
pub fn evaluate_batch_with<E: CandidateEstimator + ?Sized>(
    estimator: &E,
    candidates: &[crate::space::EnumeratedCandidate],
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> BatchResult {
    let fp = estimator.fingerprint();
    let keys: Vec<u64> = candidates
        .iter()
        .map(|c| candidate_key(fp, c.workload.program(), c.workload.ext(), config))
        .collect();

    let mut results: Vec<Option<DesignPoint>> = vec![None; candidates.len()];
    let mut misses: Vec<usize> = Vec::new();
    for (i, c) in candidates.iter().enumerate() {
        match cache.get(keys[i]) {
            Some(entry) => {
                // A hit skips the simulation, never the pricing: the
                // estimator prices the cached counts with the same pure
                // function a fresh extraction would go through, so warm
                // results are byte-identical to cold ones.
                let (energy, cycles) = estimator.price(&entry.stats);
                results[i] = Some(DesignPoint {
                    name: c.name.clone(),
                    energy,
                    cycles,
                });
            }
            None => misses.push(i),
        }
    }
    let reused = candidates.len() - misses.len();
    let evaluated = misses.len();
    obs.add("dse.cache.hits", reused as f64);
    obs.add("dse.cache.misses", evaluated as f64);

    let mut failed: Vec<FailedCandidate> = Vec::new();
    if !misses.is_empty() {
        type Slot = Option<Result<ExecStats, DseError>>;
        let workers = resolve_jobs(jobs).min(misses.len());
        let next = Mutex::new(0usize);
        let out: Mutex<Vec<Slot>> = Mutex::new((0..misses.len()).map(|_| None).collect());

        let mut children: Vec<Collector> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    let mut child = obs.fork();
                    let (next, out) = (&next, &out);
                    let misses = &misses;
                    let estimator = &estimator;
                    s.spawn(move || {
                        loop {
                            let slot = {
                                let mut guard = lock_recovering(next);
                                let slot = *guard;
                                *guard += 1;
                                slot
                            };
                            if slot >= misses.len() {
                                break;
                            }
                            let c = &candidates[misses[slot]];
                            let span = child
                                .begin_on(format!("evaluate:{}", c.name), Track::Worker(k as u32));
                            // Contain panics to the candidate being
                            // extracted: the estimator call touches only
                            // its own arguments, so unwinding cannot leave
                            // shared state torn (hence AssertUnwindSafe).
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                estimator.extract(
                                    c.workload.program(),
                                    c.workload.ext(),
                                    config.clone(),
                                )
                            }));
                            child.end(span);
                            let outcome: Result<ExecStats, DseError> = match r {
                                Ok(Ok(v)) => Ok(v),
                                Ok(Err(e)) => Err(DseError::WorkerFailed {
                                    candidate: c.name.clone(),
                                    source: e,
                                }),
                                Err(payload) => Err(DseError::WorkerPanicked {
                                    candidate: c.name.clone(),
                                    message: panic_message(payload.as_ref()),
                                }),
                            };
                            lock_recovering(out)[slot] = Some(outcome);
                        }
                        child
                    })
                })
                .collect();
            for h in handles {
                // A worker that dies outside the contained region (a bug
                // in the loop itself) loses its obs lane but must not
                // bring down the coordinator; its unfinished slots are
                // reported below.
                if let Ok(child) = h.join() {
                    children.push(child);
                }
            }
        });
        for child in children {
            obs.absorb(child);
        }

        for (slot, value) in lock_recovering(&out).drain(..).enumerate() {
            let i = misses[slot];
            match value {
                Some(Ok(stats)) => {
                    let (energy, cycles) = estimator.price(&stats);
                    cache.insert(keys[i], CacheEntry { stats });
                    results[i] = Some(DesignPoint {
                        name: candidates[i].name.clone(),
                        energy,
                        cycles,
                    });
                }
                Some(Err(error)) => failed.push(FailedCandidate {
                    name: candidates[i].name.clone(),
                    error,
                }),
                None => failed.push(FailedCandidate {
                    name: candidates[i].name.clone(),
                    error: DseError::WorkerPanicked {
                        candidate: candidates[i].name.clone(),
                        message: "worker thread lost before evaluating this slot".to_owned(),
                    },
                }),
            }
        }
        failed.sort_by(|a, b| a.name.cmp(&b.name));
    }

    BatchResult {
        points: results,
        failed,
        reused,
        evaluated,
    }
}

/// Renders a caught panic payload (`&str` and `String` payloads, which is
/// what `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The complete outcome of one search: the enumeration, the evaluated
/// points (parallel to `enumeration.candidates`), and derived rankings.
#[derive(Debug)]
pub struct Exploration {
    /// Name of the explored space.
    pub space_name: String,
    /// The area budget applied, if any.
    pub budget: Option<f64>,
    /// The enumeration that produced the candidates. Candidates whose
    /// evaluation failed are removed, so `candidates` stays parallel to
    /// `points`.
    pub enumeration: Enumeration,
    /// One evaluated point per surviving candidate, in candidate order.
    pub points: Vec<DesignPoint>,
    /// Candidates that could not be evaluated, with typed causes. The
    /// search completed over the survivors.
    pub failed: Vec<FailedCandidate>,
    /// Candidate indices on the energy/cycles Pareto front (ascending
    /// cycles).
    pub pareto: Vec<usize>,
    /// Index of the candidate with the lowest energy.
    pub best_energy: Option<usize>,
    /// Index of the candidate with the lowest energy-delay product.
    pub best_edp: Option<usize>,
    /// Index of the zero-hardware base candidate, if it survived.
    pub base: Option<usize>,
    /// Which shard of the partition this exploration covered
    /// ([`shard::FULL`] for a whole-space run).
    pub shard: ShardSpec,
    /// Fingerprint of the partition this run belongs to (see
    /// [`crate::shard::partition_fingerprint`]).
    pub partition_fingerprint: u64,
    /// Global survivor count of the full enumeration, before the shard
    /// restriction and before failure-dropping.
    pub survivors_total: usize,
    /// Candidates priced from cached extractions (cache hits).
    pub reused: usize,
    /// Candidates whose extraction was attempted this run (cache
    /// misses — the number of ISS passes the run paid for).
    pub evaluated: usize,
}

/// Runs the full search: enumerate under the budget, evaluate the
/// survivors (cached, parallel), and rank the outcome.
///
/// Adds `dse.enumerated`, `dse.over_budget`, `dse.pruned`,
/// `dse.evaluated` and `dse.failed` counters and wraps the two phases in
/// spans.
///
/// # Errors
///
/// Only enumeration can fail ([`DseError::SpaceTooLarge`]). Evaluation
/// failures are contained per candidate and reported in
/// [`Exploration::failed`]; the ranking covers the survivors.
pub fn explore(
    model: &EnergyMacroModel,
    space: &CandidateSpace,
    budget: Option<f64>,
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> Result<Exploration, DseError> {
    explore_with(model, space, budget, config, jobs, cache, obs)
}

/// [`explore`] over any [`CandidateEstimator`] — the injection point for
/// fault testing.
///
/// # Errors
///
/// See [`explore`].
pub fn explore_with<E: CandidateEstimator + ?Sized>(
    estimator: &E,
    space: &CandidateSpace,
    budget: Option<f64>,
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
) -> Result<Exploration, DseError> {
    explore_shard_with(
        estimator,
        space,
        budget,
        config,
        jobs,
        cache,
        obs,
        shard::FULL,
    )
}

/// [`explore_with`] restricted to one shard of a deterministic N-way
/// partition (see [`crate::shard`]): the full space is enumerated — so
/// every shard agrees on the funnel counts and the partition fingerprint
/// — but only the survivors in this shard's mask range are evaluated.
///
/// With [`shard::FULL`] this *is* `explore_with`.
///
/// # Errors
///
/// See [`explore`].
#[allow(clippy::too_many_arguments)] // mirrors explore_with + the shard
pub fn explore_shard_with<E: CandidateEstimator + ?Sized>(
    estimator: &E,
    space: &CandidateSpace,
    budget: Option<f64>,
    config: &ProcConfig,
    jobs: usize,
    cache: &mut EstimationCache,
    obs: &mut Collector,
    shard: ShardSpec,
) -> Result<Exploration, DseError> {
    let span = obs.begin("dse.enumerate");
    let enumeration = space.enumerate(budget);
    obs.end(span);
    let mut enumeration = enumeration?;

    // Fingerprint the partition over the *global* enumeration, before
    // the restriction: every shard of one partition hashes identical
    // inputs and therefore agrees.
    let options: Vec<(String, f64)> = space
        .options()
        .iter()
        .map(|o| (o.name.clone(), o.area()))
        .collect();
    let partition_fingerprint = shard::partition_fingerprint(
        space.name(),
        budget,
        &options,
        &enumeration,
        shard.count(),
        shard::EstimatorFingerprints {
            extraction: estimator.fingerprint(),
            pricing: estimator.pricing_fingerprint(),
        },
        config,
    );
    let survivors_total = enumeration.candidates.len();
    shard::restrict(&mut enumeration, shard);

    obs.add("dse.enumerated", enumeration.enumerated as f64);
    obs.add("dse.over_budget", enumeration.over_budget as f64);
    obs.add("dse.pruned", enumeration.pruned as f64);
    obs.add("dse.evaluated", enumeration.candidates.len() as f64);

    let span = obs.begin("dse.evaluate");
    let batch = evaluate_batch_with(estimator, &enumeration.candidates, config, jobs, cache, obs);
    obs.end(span);
    obs.add("dse.failed", batch.failed.len() as f64);

    // Drop failed candidates so `candidates` and `points` stay parallel
    // and every ranking index below is valid for both.
    let mut points: Vec<DesignPoint> = Vec::with_capacity(batch.points.len());
    let mut survivors = Vec::with_capacity(batch.points.len());
    for (candidate, point) in enumeration.candidates.drain(..).zip(batch.points) {
        if let Some(point) = point {
            survivors.push(candidate);
            points.push(point);
        }
    }
    enumeration.candidates = survivors;

    let pareto = pareto_front(&points);
    let best_energy = (0..points.len()).min_by(|&a, &b| {
        points[a]
            .energy
            .as_picojoules()
            .total_cmp(&points[b].energy.as_picojoules())
    });
    let best_edp = rank_by_edp(&points).first().copied();
    let base = enumeration.candidates.iter().position(|c| c.mask == 0);

    Ok(Exploration {
        space_name: space.name().to_owned(),
        budget,
        enumeration,
        points,
        failed: batch.failed,
        pareto,
        best_energy,
        best_edp,
        base,
        shard,
        partition_fingerprint,
        survivors_total,
        reused: batch.reused,
        evaluated: batch.evaluated,
    })
}
