//! # emx-dse — design-space exploration on top of the macro-model
//!
//! The paper's one-time hybrid characterization exists to make energy
//! evaluation cheap enough to sit *inside* a design-space exploration
//! loop. This crate is that loop:
//!
//! * [`space`] — candidate generation: power sets of TIE extension units
//!   under an area budget (net-equivalents derived from the RTL power
//!   library's component sizes), with dominance pruning before any
//!   evaluation,
//! * [`extract`] — the simulate-once / price-many split: one ISS run
//!   extracts a candidate's template-variable counts, and a pure dot
//!   product prices them under any fitted model,
//! * [`cache`] — a content-addressed extraction cache keyed by the hash
//!   of (extraction semantics, program, extension set, processor
//!   config), with optional JSON persistence across CLI invocations —
//!   a refitted model re-prices the warm cache instead of going cold,
//! * [`engine`] — a deterministic parallel batch evaluator over a shared
//!   work queue (`std::thread` scoped workers) plus the search driver,
//! * [`point`] — design points, Pareto front extraction and energy-delay
//!   ranking (absorbed from the former `core::dse`),
//! * [`shard`] — deterministic mask-range partitioning of the
//!   enumeration across worker processes, with a partition fingerprint
//!   that identifies which shards belong together,
//! * [`mod@merge`] — the per-shard `emx.dse-shard-report/1` artifact and
//!   the all-or-nothing merge of K shards back into a report
//!   byte-identical to the single-process one, folding the shards'
//!   cache deltas into one warm [`EstimationCache`],
//! * [`report`] — the stable `emx.dse-report/1` schema,
//! * [`error`] — the typed failure taxonomy ([`DseError`], [`CacheError`])
//!   that keeps failures *contained*: a bad candidate, a poisoned lock or
//!   a corrupt cache file costs that candidate or file, never the search,
//! * [`fault`] — injectable misbehaving estimators and IO shims for
//!   proving the containment contract in tests.
//!
//! # Example
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let model: emx_core::EnergyMacroModel = unimplemented!();
//! use emx_dse::{explore, CandidateSpace, EstimationCache};
//! use emx_obs::Collector;
//! use emx_sim::ProcConfig;
//!
//! let space = CandidateSpace::reed_solomon();
//! let mut cache = EstimationCache::new();
//! let mut obs = Collector::new();
//! let out = explore(
//!     &model,
//!     &space,
//!     None,
//!     &ProcConfig::default(),
//!     0, // one worker per core
//!     &mut cache,
//!     &mut obs,
//! )?;
//! for &i in &out.pareto {
//!     let p = &out.points[i];
//!     println!("{}: {} in {} cycles", p.name, p.energy, p.cycles);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod extract;
pub mod fault;
pub mod merge;
pub mod point;
pub mod report;
pub mod shard;
pub mod space;

pub use cache::{
    candidate_key, content_fingerprint, model_fingerprint, CacheEntry, CacheRecovery, CacheSalvage,
    EstimationCache, SharedEstimationCache,
};
pub use engine::{
    evaluate_batch, evaluate_batch_with, explore, explore_shard_with, explore_with, resolve_jobs,
    BatchResult, CandidateEstimator, Exploration, FailedCandidate,
};
pub use error::{CacheError, DseError};
pub use extract::{extract_counts, extraction_fingerprint, price, EXTRACTION_SCHEMA};
pub use merge::{merge, MergeOutcome, ShardReport, SHARD_SCHEMA};
pub use point::{evaluate, pareto_front, rank_by_edp, Candidate, DesignPoint};
pub use shard::{partition_fingerprint, EstimatorFingerprints, ShardSpec};
pub use space::{
    area_cost, CandidateSpace, DesignOption, EnumeratedCandidate, Enumeration, MAX_OPTIONS,
};
