//! Typed errors for the exploration engine.
//!
//! The design goal is *failure containment*: a design-space search runs
//! unattended for hours, so one bad candidate, one poisoned lock or one
//! corrupt cache file must fail **small** — the affected candidate or file
//! — never the whole session. Every variant here records enough context
//! (candidate name, file path, entry key) to diagnose the failure from a
//! report alone, and every variant maps onto the workspace-wide
//! [`EmxError`] taxonomy with a stable machine-readable code.

use std::error::Error;
use std::fmt;

use emx_core::{error::sim_error_code, EmxError, ErrorKind};
use emx_sim::SimError;

/// Why one persisted cache file could not be used as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// The file exists but could not be read.
    Io(String),
    /// The file is not valid JSON (often: a write cut short by a crash).
    Corrupt(String),
    /// The file parses but declares a different schema than
    /// [`crate::cache::SCHEMA`] (e.g. a pre-migration `emx.dse-cache/1`
    /// file, whose priced entries cannot be re-priced).
    SchemaMismatch(String),
    /// One entry inside an otherwise valid document is malformed.
    BadEntry(String),
    /// The recovered file could not be quarantined or rewritten.
    WriteFailed(String),
}

impl CacheError {
    /// The stable machine code for this failure.
    pub fn code(&self) -> &'static str {
        match self {
            CacheError::Io(_) => "cache.io",
            CacheError::Corrupt(_) => "cache.corrupt",
            CacheError::SchemaMismatch(_) => "cache.schema_mismatch",
            CacheError::BadEntry(_) => "cache.bad_entry",
            CacheError::WriteFailed(_) => "cache.write_failed",
        }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(m) => write!(f, "cache file unreadable: {m}"),
            CacheError::Corrupt(m) => write!(f, "cache file corrupt: {m}"),
            CacheError::SchemaMismatch(m) => write!(f, "cache schema mismatch: {m}"),
            CacheError::BadEntry(m) => write!(f, "malformed cache entry: {m}"),
            CacheError::WriteFailed(m) => write!(f, "cache write failed: {m}"),
        }
    }
}

impl Error for CacheError {}

/// Errors from candidate enumeration and batch evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DseError {
    /// The candidate space has more options than the enumerator can
    /// address: `2^options` subsets would exceed the enumerable width.
    SpaceTooLarge {
        /// Number of design options in the space.
        options: usize,
        /// Largest supported option count.
        max: usize,
    },
    /// A worker's estimate of one candidate returned a simulation error.
    /// Contained: only this candidate is lost.
    WorkerFailed {
        /// The candidate being evaluated.
        candidate: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A worker panicked while evaluating one candidate. The panic was
    /// caught; only this candidate is lost.
    WorkerPanicked {
        /// The candidate being evaluated.
        candidate: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A persisted cache file could not be used (see [`CacheError`]).
    Cache(CacheError),
}

impl DseError {
    /// The stable machine code for this failure (mirrors
    /// [`EmxError::code`]).
    pub fn code(&self) -> &'static str {
        match self {
            DseError::SpaceTooLarge { .. } => "space.too_large",
            DseError::WorkerFailed { source, .. } => sim_error_code(source),
            DseError::WorkerPanicked { .. } => "worker.panicked",
            DseError::Cache(e) => e.code(),
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::SpaceTooLarge { options, max } => write!(
                f,
                "candidate space has {options} options; at most {max} are enumerable"
            ),
            DseError::WorkerFailed { candidate, source } => {
                write!(f, "evaluating `{candidate}` failed: {source}")
            }
            DseError::WorkerPanicked { candidate, message } => {
                write!(f, "worker panicked evaluating `{candidate}`: {message}")
            }
            DseError::Cache(e) => write!(f, "{e}"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::WorkerFailed { source, .. } => Some(source),
            DseError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for DseError {
    fn from(e: CacheError) -> Self {
        DseError::Cache(e)
    }
}

impl From<CacheError> for EmxError {
    fn from(e: CacheError) -> Self {
        EmxError::new(ErrorKind::Cache, e.code(), e.to_string()).with_source(e)
    }
}

impl From<DseError> for EmxError {
    fn from(e: DseError) -> Self {
        let kind = match &e {
            DseError::SpaceTooLarge { .. } => ErrorKind::Space,
            DseError::WorkerFailed { .. } | DseError::WorkerPanicked { .. } => ErrorKind::Worker,
            DseError::Cache(_) => ErrorKind::Cache,
        };
        EmxError::new(kind, e.code(), e.to_string()).with_source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_kind_mapped() {
        let e = DseError::SpaceTooLarge {
            options: 99,
            max: 24,
        };
        assert_eq!(e.code(), "space.too_large");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Space);
        assert_eq!(u.exit_code(), 1);

        let e = DseError::WorkerPanicked {
            candidate: "gf16".into(),
            message: "boom".into(),
        };
        assert_eq!(e.code(), "worker.panicked");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Worker);
        assert_eq!(u.exit_code(), 3);

        let e = DseError::WorkerFailed {
            candidate: "base".into(),
            source: SimError::CycleLimit(7),
        };
        assert_eq!(e.code(), "sim.cycle_limit");
        assert!(std::error::Error::source(&e).is_some());

        let e: DseError = CacheError::SchemaMismatch("other/1".into()).into();
        assert_eq!(e.code(), "cache.schema_mismatch");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Cache);
    }
}
