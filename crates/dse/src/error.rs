//! Typed errors for the exploration engine.
//!
//! The design goal is *failure containment*: a design-space search runs
//! unattended for hours, so one bad candidate, one poisoned lock or one
//! corrupt cache file must fail **small** — the affected candidate or file
//! — never the whole session. Every variant here records enough context
//! (candidate name, file path, entry key) to diagnose the failure from a
//! report alone, and every variant maps onto the workspace-wide
//! [`EmxError`] taxonomy with a stable machine-readable code.

use std::error::Error;
use std::fmt;

use emx_core::{error::sim_error_code, EmxError, ErrorKind};
use emx_sim::SimError;

/// Why one persisted cache file could not be used as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheError {
    /// The file exists but could not be read.
    Io(String),
    /// The file is not valid JSON (often: a write cut short by a crash).
    Corrupt(String),
    /// The file parses but declares a different schema than
    /// [`crate::cache::SCHEMA`] (e.g. a pre-migration `emx.dse-cache/1`
    /// file, whose priced entries cannot be re-priced).
    SchemaMismatch(String),
    /// One entry inside an otherwise valid document is malformed.
    BadEntry(String),
    /// The recovered file could not be quarantined or rewritten.
    WriteFailed(String),
}

impl CacheError {
    /// The stable machine code for this failure.
    pub fn code(&self) -> &'static str {
        match self {
            CacheError::Io(_) => "cache.io",
            CacheError::Corrupt(_) => "cache.corrupt",
            CacheError::SchemaMismatch(_) => "cache.schema_mismatch",
            CacheError::BadEntry(_) => "cache.bad_entry",
            CacheError::WriteFailed(_) => "cache.write_failed",
        }
    }
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io(m) => write!(f, "cache file unreadable: {m}"),
            CacheError::Corrupt(m) => write!(f, "cache file corrupt: {m}"),
            CacheError::SchemaMismatch(m) => write!(f, "cache schema mismatch: {m}"),
            CacheError::BadEntry(m) => write!(f, "malformed cache entry: {m}"),
            CacheError::WriteFailed(m) => write!(f, "cache write failed: {m}"),
        }
    }
}

impl Error for CacheError {}

/// Errors from candidate enumeration and batch evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DseError {
    /// The candidate space has more options than the enumerator can
    /// address: `2^options` subsets would exceed the enumerable width.
    SpaceTooLarge {
        /// Number of design options in the space.
        options: usize,
        /// Largest supported option count.
        max: usize,
    },
    /// A worker's estimate of one candidate returned a simulation error.
    /// Contained: only this candidate is lost.
    WorkerFailed {
        /// The candidate being evaluated.
        candidate: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A worker panicked while evaluating one candidate. The panic was
    /// caught; only this candidate is lost.
    WorkerPanicked {
        /// The candidate being evaluated.
        candidate: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A persisted cache file could not be used (see [`CacheError`]).
    Cache(CacheError),
    /// A shard request does not describe a valid partition: the index is
    /// outside `1..=count` or the count is zero.
    ShardInvalid {
        /// The requested 1-based shard index.
        index: u32,
        /// The requested shard count.
        count: u32,
    },
    /// A shard report file is not a well-formed
    /// `emx.dse-shard-report/1` document (often: a write cut short).
    /// The merge refuses whole — a partial merge is never produced.
    ShardReportCorrupt {
        /// Which file (or in-memory source) was damaged.
        source_name: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A shard report declares a different schema than
    /// [`crate::merge::SHARD_SCHEMA`].
    ShardSchemaMismatch {
        /// Which file declared it.
        source_name: String,
        /// The schema it declared.
        found: String,
    },
    /// Two shard reports carry different partition fingerprints — they
    /// come from different spaces, budgets, models, or shard counts and
    /// must not be merged.
    ShardFingerprintMismatch {
        /// Fingerprint of the first report (hex).
        expected: String,
        /// The conflicting fingerprint (hex).
        found: String,
        /// Which file carried the conflicting fingerprint.
        source_name: String,
    },
    /// The merge input covers only part of the partition: shard `index`
    /// of `count` has no report.
    ShardMissing {
        /// The absent 1-based shard index.
        index: u32,
        /// The partition's shard count.
        count: u32,
    },
    /// Two merge inputs claim the same shard index.
    ShardDuplicate {
        /// The duplicated 1-based shard index.
        index: u32,
        /// The partition's shard count.
        count: u32,
    },
}

impl DseError {
    /// The stable machine code for this failure (mirrors
    /// [`EmxError::code`]).
    pub fn code(&self) -> &'static str {
        match self {
            DseError::SpaceTooLarge { .. } => "space.too_large",
            DseError::WorkerFailed { source, .. } => sim_error_code(source),
            DseError::WorkerPanicked { .. } => "worker.panicked",
            DseError::Cache(e) => e.code(),
            DseError::ShardInvalid { .. } => "shard.invalid",
            DseError::ShardReportCorrupt { .. } => "shard.report_corrupt",
            DseError::ShardSchemaMismatch { .. } => "shard.schema_mismatch",
            DseError::ShardFingerprintMismatch { .. } => "shard.fingerprint_mismatch",
            DseError::ShardMissing { .. } => "shard.missing",
            DseError::ShardDuplicate { .. } => "shard.duplicate",
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::SpaceTooLarge { options, max } => write!(
                f,
                "candidate space has {options} options; at most {max} are enumerable"
            ),
            DseError::WorkerFailed { candidate, source } => {
                write!(f, "evaluating `{candidate}` failed: {source}")
            }
            DseError::WorkerPanicked { candidate, message } => {
                write!(f, "worker panicked evaluating `{candidate}`: {message}")
            }
            DseError::Cache(e) => write!(f, "{e}"),
            DseError::ShardInvalid { index, count } => write!(
                f,
                "invalid shard {index}/{count}: expected 1 <= index <= count"
            ),
            DseError::ShardReportCorrupt {
                source_name,
                detail,
            } => write!(f, "shard report `{source_name}` corrupt: {detail}"),
            DseError::ShardSchemaMismatch { source_name, found } => write!(
                f,
                "shard report `{source_name}` declares schema `{found}`, \
                 expected `{}`",
                crate::merge::SHARD_SCHEMA
            ),
            DseError::ShardFingerprintMismatch {
                expected,
                found,
                source_name,
            } => write!(
                f,
                "shard report `{source_name}` has partition fingerprint \
                 {found}, conflicting with {expected}: shards come from \
                 different spaces, budgets, models, or shard counts"
            ),
            DseError::ShardMissing { index, count } => {
                write!(f, "merge input is missing shard {index}/{count}")
            }
            DseError::ShardDuplicate { index, count } => {
                write!(
                    f,
                    "merge input has more than one report for shard {index}/{count}"
                )
            }
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::WorkerFailed { source, .. } => Some(source),
            DseError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CacheError> for DseError {
    fn from(e: CacheError) -> Self {
        DseError::Cache(e)
    }
}

impl From<CacheError> for EmxError {
    fn from(e: CacheError) -> Self {
        EmxError::new(ErrorKind::Cache, e.code(), e.to_string()).with_source(e)
    }
}

impl From<DseError> for EmxError {
    fn from(e: DseError) -> Self {
        let kind = match &e {
            DseError::SpaceTooLarge { .. } => ErrorKind::Space,
            DseError::WorkerFailed { .. } | DseError::WorkerPanicked { .. } => ErrorKind::Worker,
            DseError::Cache(_) => ErrorKind::Cache,
            // A bad `i/N` request is a usage error (exit 2); bad or
            // inconsistent merge *input files* are data errors (exit 1).
            DseError::ShardInvalid { .. } => ErrorKind::Usage,
            DseError::ShardReportCorrupt { .. } | DseError::ShardSchemaMismatch { .. } => {
                ErrorKind::Parse
            }
            DseError::ShardFingerprintMismatch { .. }
            | DseError::ShardMissing { .. }
            | DseError::ShardDuplicate { .. } => ErrorKind::Space,
        };
        EmxError::new(kind, e.code(), e.to_string()).with_source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_kind_mapped() {
        let e = DseError::SpaceTooLarge {
            options: 99,
            max: 24,
        };
        assert_eq!(e.code(), "space.too_large");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Space);
        assert_eq!(u.exit_code(), 1);

        let e = DseError::WorkerPanicked {
            candidate: "gf16".into(),
            message: "boom".into(),
        };
        assert_eq!(e.code(), "worker.panicked");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Worker);
        assert_eq!(u.exit_code(), 3);

        let e = DseError::WorkerFailed {
            candidate: "base".into(),
            source: SimError::CycleLimit(7),
        };
        assert_eq!(e.code(), "sim.cycle_limit");
        assert!(std::error::Error::source(&e).is_some());

        let e: DseError = CacheError::SchemaMismatch("other/1".into()).into();
        assert_eq!(e.code(), "cache.schema_mismatch");
        let u: EmxError = e.into();
        assert_eq!(u.kind(), ErrorKind::Cache);
    }
}
