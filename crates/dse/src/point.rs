//! Design points and Pareto/EDP analysis (absorbed from `core::dse`).
//!
//! The paper's motivation is "evaluating energy-performance trade-offs
//! among different candidate custom instructions" inside an ASIP design
//! cycle — possible only because macro-model estimation needs no synthesis
//! per candidate. This module holds the evaluated-point vocabulary: a
//! [`DesignPoint`] in the energy/cycles plane, the Pareto front over a set
//! of points, and an energy-delay-product ranking.

use emx_isa::Program;
use emx_rtlpower::Energy;
use emx_sim::{ProcConfig, SimError};
use emx_tie::ExtensionSet;

use emx_core::EnergyMacroModel;

/// One candidate configuration: the application compiled against one
/// custom-instruction choice.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    /// Display name of the design point.
    pub name: &'a str,
    /// The application built for this extension set.
    pub program: &'a Program,
    /// The candidate extension set.
    pub ext: &'a ExtensionSet,
}

/// An evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Display name.
    pub name: String,
    /// Macro-model energy estimate.
    pub energy: Energy,
    /// Execution cycles (from the ISS).
    pub cycles: u64,
}

impl DesignPoint {
    /// Energy–delay product in pJ·cycles (lower is better).
    pub fn edp(&self) -> f64 {
        self.energy.as_picojoules() * self.cycles as f64
    }
}

/// Evaluates every candidate sequentially through the fast estimation path
/// (one ISS run plus a dot product each — no synthesis, no reference power
/// run). The parallel, cached equivalent is
/// [`evaluate_batch`](crate::engine::evaluate_batch).
///
/// # Errors
///
/// Propagates the first simulation failure, tagged by nothing more than
/// order — candidates are expected to be pre-verified workloads.
pub fn evaluate(
    model: &EnergyMacroModel,
    candidates: &[Candidate<'_>],
    config: ProcConfig,
) -> Result<Vec<DesignPoint>, SimError> {
    candidates
        .iter()
        .map(|c| {
            let est = model.estimate(c.program, c.ext, config.clone())?;
            Ok(DesignPoint {
                name: c.name.to_owned(),
                energy: est.energy,
                cycles: est.stats.total_cycles,
            })
        })
        .collect()
}

/// Indices of the energy/performance Pareto-optimal points, sorted by
/// ascending cycle count.
///
/// A point is Pareto-optimal if no other point is at least as good in both
/// dimensions and strictly better in one.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].cycles.cmp(&points[b].cycles).then(
            points[a]
                .energy
                .as_picojoules()
                .total_cmp(&points[b].energy.as_picojoules()),
        )
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    for &i in &order {
        let e = points[i].energy.as_picojoules();
        if e < best_energy {
            front.push(i);
            best_energy = e;
        }
    }
    front
}

/// Indices sorted by ascending energy–delay product.
pub fn rank_by_edp(points: &[DesignPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| points[a].edp().total_cmp(&points[b].edp()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str, pj: f64, cycles: u64) -> DesignPoint {
        DesignPoint {
            name: name.to_owned(),
            energy: Energy::from_picojoules(pj),
            cycles,
        }
    }

    #[test]
    fn pareto_front_filters_dominated_points() {
        let points = vec![
            point("slow_cheap", 10.0, 100),
            point("fast_costly", 30.0, 20),
            point("dominated", 40.0, 120), // worse than slow_cheap in both
            point("balanced", 15.0, 50),
        ];
        let front = pareto_front(&points);
        let names: Vec<&str> = front.iter().map(|&i| points[i].name.as_str()).collect();
        assert_eq!(names, vec!["fast_costly", "balanced", "slow_cheap"]);
    }

    #[test]
    fn pareto_front_handles_ties_and_empty() {
        assert!(pareto_front(&[]).is_empty());
        let points = vec![point("a", 10.0, 50), point("b", 10.0, 50)];
        // Equal points: exactly one survives.
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn edp_ranking() {
        let points = vec![
            point("a", 10.0, 100), // edp 1000
            point("b", 30.0, 20),  // edp 600
            point("c", 5.0, 300),  // edp 1500
        ];
        let ranked = rank_by_edp(&points);
        let names: Vec<&str> = ranked.iter().map(|&i| points[i].name.as_str()).collect();
        assert_eq!(names, vec!["b", "a", "c"]);
        assert_eq!(points[0].edp(), 1000.0);
    }
}
