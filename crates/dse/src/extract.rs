//! The simulate-once / price-many split.
//!
//! Estimating a candidate has two very differently priced halves:
//!
//! 1. **Extraction** — one full instruction-set simulation of
//!    (program, extension set, processor config), producing the raw
//!    template-variable counts ([`ExecStats`]). This is the expensive
//!    half and depends only on what executes, never on the fitted
//!    macro-model.
//! 2. **Pricing** — one dot product of those counts with the model's
//!    coefficient vector (the paper's Eq. 1–4 evaluation). Microseconds,
//!    and the only half that changes when the model is refitted.
//!
//! The engine caches *extractions*, not prices: a refitted model —
//! or a whole sweep of candidate models — re-prices cached counts
//! without a single new simulation. Pricing is exact over the cache
//! because [`ExecStats`] round-trips through its JSON form
//! bit-for-bit (see [`ExecStats::from_json`]), so a cache hit yields
//! byte-identical energies to a fresh run.

use emx_core::EnergyMacroModel;
use emx_isa::Program;
use emx_rtlpower::Energy;
use emx_sim::{ExecStats, Interp, ProcConfig, SimError};
use emx_tie::ExtensionSet;

/// Version tag of the extraction semantics, hashed into every cache key.
///
/// Bump the suffix whenever the ISS could legally produce different
/// [`ExecStats`] for the same (program, extension set, config) — e.g. a
/// changed timing rule — so stale counts can never be re-priced.
pub const EXTRACTION_SCHEMA: &str = "emx.iss-extraction/1";

/// Fingerprint of [`EXTRACTION_SCHEMA`] for [`crate::candidate_key`].
///
/// Deliberately model-independent: two estimators sharing this
/// fingerprint assert they extract identical counts, even if they price
/// them differently.
pub fn extraction_fingerprint() -> u64 {
    crate::cache::content_fingerprint(EXTRACTION_SCHEMA.as_bytes())
}

/// Simulates one candidate to completion (2³²-cycle budget, matching
/// [`EnergyMacroModel::estimate`]) and returns the raw counts.
///
/// # Errors
///
/// Propagates simulator errors; nothing is extracted from a failed run.
pub fn extract_counts(
    program: &Program,
    ext: &ExtensionSet,
    config: ProcConfig,
) -> Result<ExecStats, SimError> {
    let mut sim = Interp::new(program, ext, config);
    Ok(sim.run(u64::from(u32::MAX))?.stats)
}

/// Prices already-extracted counts under a fitted model: `(energy,
/// cycles)`, by the same dot product as [`EnergyMacroModel::estimate`]
/// — so `price(model, &extract_counts(..)?)` is byte-identical to the
/// one-shot estimate.
pub fn price(model: &EnergyMacroModel, stats: &ExecStats) -> (Energy, u64) {
    (model.energy_of_stats(stats), stats.total_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emx_workloads::suite;

    fn fitted_model() -> EnergyMacroModel {
        let spec = emx_core::ModelSpec::paper();
        let coeffs: Vec<f64> = (0..spec.len()).map(|i| 1.0 + i as f64 * 0.25).collect();
        EnergyMacroModel::new(spec, coeffs)
    }

    #[test]
    fn price_of_extracted_counts_equals_one_shot_estimate() -> Result<(), SimError> {
        let model = fitted_model();
        let config = ProcConfig::default();
        for w in suite::calibration_programs().iter().take(4) {
            let stats = extract_counts(w.program(), w.ext(), config.clone())?;
            let (energy, cycles) = price(&model, &stats);
            let est = model.estimate(w.program(), w.ext(), config.clone())?;
            assert_eq!(stats, est.stats, "{}: extraction must match", w.name());
            assert_eq!(
                energy.as_picojoules().to_bits(),
                est.energy.as_picojoules().to_bits(),
                "{}: pricing must be bit-identical",
                w.name()
            );
            assert_eq!(cycles, est.stats.total_cycles);
        }
        Ok(())
    }

    #[test]
    fn repricing_cached_counts_is_exact_across_models() -> Result<(), SimError> {
        // The cache round-trips counts through JSON; pricing the reloaded
        // counts under a *different* model must equal pricing the fresh
        // counts under it — the refit-without-resimulation guarantee.
        let w = &suite::calibration_programs()[0];
        let stats = extract_counts(w.program(), w.ext(), ProcConfig::default())?;
        let doc_text = stats.to_json().to_string();
        let doc = emx_obs::json::Value::parse(&doc_text).expect("valid JSON");
        let reloaded = ExecStats::from_json(&doc).expect("round trip");
        let other = fitted_model();
        let (fresh, _) = price(&other, &stats);
        let (cached, _) = price(&other, &reloaded);
        assert_eq!(
            fresh.as_picojoules().to_bits(),
            cached.as_picojoules().to_bits()
        );
        Ok(())
    }

    #[test]
    fn extraction_fingerprint_is_stable_and_model_free() {
        assert_eq!(extraction_fingerprint(), extraction_fingerprint());
        // Changing a model must not move the fingerprint (it hashes the
        // extraction schema, nothing else).
        assert_ne!(extraction_fingerprint(), 0);
    }
}
