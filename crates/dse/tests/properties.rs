//! Property-based tests for the Pareto front: the structural guarantees a
//! search driver relies on when it presents "the trade-off curve" to a
//! designer.
//!
//! The small integer grids are deliberate — they force duplicate points
//! and single-axis ties, the cases where dominance logic usually breaks.

use proptest::prelude::*;

use emx_dse::{pareto_front, DesignPoint};
use emx_rtlpower::Energy;

fn build(pairs: &[(u64, u64)]) -> Vec<DesignPoint> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(energy, cycles))| DesignPoint {
            name: format!("p{i}"),
            energy: Energy::from_picojoules(energy as f64),
            cycles,
        })
        .collect()
}

/// `a` is at least as good as `b` on both axes.
fn weakly_dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    a.cycles <= b.cycles && a.energy.as_picojoules() <= b.energy.as_picojoules()
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..8, 0u64..8), 0..24)
}

/// Same-length point list and shuffle keys, for the permutation property.
fn pairs_and_keys() -> impl Strategy<Value = (Vec<(u64, u64)>, Vec<u64>)> {
    (0usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec((0u64..8, 0u64..8), n),
            proptest::collection::vec(any::<u64>(), n),
        )
    })
}

proptest! {
    #[test]
    fn front_members_are_mutually_non_dominating(pairs in pairs_strategy()) {
        let points = build(&pairs);
        let front = pareto_front(&points);
        for (k, &i) in front.iter().enumerate() {
            for &j in &front[k + 1..] {
                prop_assert!(
                    !weakly_dominates(&points[i], &points[j]),
                    "{} dominates fellow front member {}", points[i].name, points[j].name
                );
                prop_assert!(
                    !weakly_dominates(&points[j], &points[i]),
                    "{} dominates fellow front member {}", points[j].name, points[i].name
                );
            }
        }
    }

    #[test]
    fn excluded_points_are_dominated_by_the_front(pairs in pairs_strategy()) {
        let points = build(&pairs);
        let front = pareto_front(&points);
        // Weak dominance, not strict: of two identical points exactly one
        // survives, and the survivor only *weakly* dominates its twin.
        for (i, p) in points.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            prop_assert!(
                front.iter().any(|&f| weakly_dominates(&points[f], p)),
                "excluded {} is dominated by no front member", p.name
            );
        }
        // Non-empty input always yields a non-empty front.
        prop_assert_eq!(front.is_empty(), points.is_empty());
    }

    #[test]
    fn front_is_deterministic_under_permutation((pairs, keys) in pairs_and_keys()) {
        let points = build(&pairs);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let permuted: Vec<DesignPoint> = order.iter().map(|&i| points[i].clone()).collect();

        // The front as a *value set* must not depend on input order (the
        // indices do, so compare (cycles, energy) pairs).
        let values = |pts: &[DesignPoint], front: &[usize]| -> Vec<(u64, f64)> {
            let mut v: Vec<(u64, f64)> = front
                .iter()
                .map(|&i| (pts[i].cycles, pts[i].energy.as_picojoules()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            v
        };
        let a = values(&points, &pareto_front(&points));
        let b = values(&permuted, &pareto_front(&permuted));
        prop_assert_eq!(a, b);
    }
}
