//! Property-based tests for the Pareto front and the shard partition: the
//! structural guarantees a search driver relies on when it presents "the
//! trade-off curve" to a designer, and the disjoint/complete/ordered
//! contract the merge step relies on when it recombines shard artifacts.
//!
//! The small integer grids are deliberate — they force duplicate points
//! and single-axis ties, the cases where dominance logic usually breaks.
//! The synthetic candidate spaces are equally deliberate: random option
//! counts, budgets and resolver collision patterns exercise sharding over
//! enumerations whose survivor lists have holes in arbitrary places.

use std::sync::OnceLock;

use proptest::prelude::*;

use emx_dse::EstimatorFingerprints;
use emx_dse::{pareto_front, partition_fingerprint, CandidateSpace, DesignPoint, ShardSpec};
use emx_dse::{DesignOption, Enumeration};
use emx_rtlpower::Energy;
use emx_sim::ProcConfig;
use emx_tie::ExtensionSet;
use emx_workloads::{exts, Workload};

fn build(pairs: &[(u64, u64)]) -> Vec<DesignPoint> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(energy, cycles))| DesignPoint {
            name: format!("p{i}"),
            energy: Energy::from_picojoules(energy as f64),
            cycles,
        })
        .collect()
}

/// `a` is at least as good as `b` on both axes.
fn weakly_dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    a.cycles <= b.cycles && a.energy.as_picojoules() <= b.energy.as_picojoules()
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..8, 0u64..8), 0..24)
}

/// Same-length point list and shuffle keys, for the permutation property.
fn pairs_and_keys() -> impl Strategy<Value = (Vec<(u64, u64)>, Vec<u64>)> {
    (0usize..24).prop_flat_map(|n| {
        (
            proptest::collection::vec((0u64..8, 0u64..8), n),
            proptest::collection::vec(any::<u64>(), n),
        )
    })
}

proptest! {
    #[test]
    fn front_members_are_mutually_non_dominating(pairs in pairs_strategy()) {
        let points = build(&pairs);
        let front = pareto_front(&points);
        for (k, &i) in front.iter().enumerate() {
            for &j in &front[k + 1..] {
                prop_assert!(
                    !weakly_dominates(&points[i], &points[j]),
                    "{} dominates fellow front member {}", points[i].name, points[j].name
                );
                prop_assert!(
                    !weakly_dominates(&points[j], &points[i]),
                    "{} dominates fellow front member {}", points[j].name, points[i].name
                );
            }
        }
    }

    #[test]
    fn excluded_points_are_dominated_by_the_front(pairs in pairs_strategy()) {
        let points = build(&pairs);
        let front = pareto_front(&points);
        // Weak dominance, not strict: of two identical points exactly one
        // survives, and the survivor only *weakly* dominates its twin.
        for (i, p) in points.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            prop_assert!(
                front.iter().any(|&f| weakly_dominates(&points[f], p)),
                "excluded {} is dominated by no front member", p.name
            );
        }
        // Non-empty input always yields a non-empty front.
        prop_assert_eq!(front.is_empty(), points.is_empty());
    }

    #[test]
    fn front_is_deterministic_under_permutation((pairs, keys) in pairs_and_keys()) {
        let points = build(&pairs);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        let permuted: Vec<DesignPoint> = order.iter().map(|&i| points[i].clone()).collect();

        // The front as a *value set* must not depend on input order (the
        // indices do, so compare (cycles, energy) pairs).
        let values = |pts: &[DesignPoint], front: &[usize]| -> Vec<(u64, f64)> {
            let mut v: Vec<(u64, f64)> = front
                .iter()
                .map(|&i| (pts[i].cycles, pts[i].energy.as_picojoules()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            v
        };
        let a = values(&points, &pareto_front(&points));
        let b = values(&permuted, &pareto_front(&permuted));
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Shard partition properties.
// ---------------------------------------------------------------------------

/// Real compiled extension units, cycled across synthetic options so every
/// option has a genuine nonzero area. Compiled once per process.
fn ext_pool() -> &'static [ExtensionSet] {
    static POOL: OnceLock<Vec<ExtensionSet>> = OnceLock::new();
    POOL.get_or_init(|| {
        vec![
            exts::gf16(),
            exts::gf16_mac(),
            exts::rs_wide(),
            exts::rs_full(),
        ]
    })
}

/// Trivial distinct workloads for the synthetic resolvers. Only the names
/// matter (dominance pruning compares resolved workload names); nothing
/// here is ever simulated.
fn workload_pool() -> &'static [Workload] {
    static POOL: OnceLock<Vec<Workload>> = OnceLock::new();
    POOL.get_or_init(|| {
        (0..32)
            .map(|i| {
                Workload::assemble(
                    format!("wl{i:02}"),
                    "synthetic shard-property workload",
                    ExtensionSet::empty(),
                    "movi a2, 7\n",
                    vec![],
                )
            })
            .collect()
    })
}

/// A space with `n` options whose resolver collapses the `2^n` subsets
/// onto `classes` distinct workloads — `classes == 2^n` means no pruning,
/// `classes == 1` prunes everything down to the base candidate, and values
/// in between punch irregular holes into the survivor list.
fn synthetic_space(n: usize, classes: usize) -> CandidateSpace {
    let options: Vec<DesignOption> = (0..n)
        .map(|i| DesignOption {
            name: format!("o{i}"),
            ext: ext_pool()[i % ext_pool().len()].clone(),
        })
        .collect();
    CandidateSpace::new("synthetic", options, move |sel| {
        let mask: usize = sel
            .options()
            .iter()
            .map(|o| 1usize << o.name[1..].parse::<usize>().expect("option name"))
            .sum();
        workload_pool()[mask % classes].clone()
    })
}

/// The survivor list as comparable rows: (mask, candidate name, workload).
fn rows(e: &Enumeration) -> Vec<(usize, String, String)> {
    e.candidates
        .iter()
        .map(|c| (c.mask, c.name.clone(), c.workload.name().to_owned()))
        .collect()
}

/// Random (option count, resolver collision classes, budget selector):
/// the inputs every shard-partition property quantifies over.
fn space_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..=5, 1usize..=6, 0usize..=4)
}

fn budget_for(space: &CandidateSpace, selector: usize) -> Option<f64> {
    if selector == 0 {
        return None;
    }
    let total: f64 = space.options().iter().map(|o| o.area()).sum();
    Some(total * selector as f64 / 4.0)
}

proptest! {
    #[test]
    fn shards_partition_the_enumeration_exactly((n, classes, sel) in space_strategy()) {
        let space = synthetic_space(n, classes);
        let budget = budget_for(&space, sel);
        let full = space.enumerate(budget).expect("n <= MAX_OPTIONS");
        let expected = rows(&full);

        for k in 1..=8u32 {
            let mut per_shard: Vec<Vec<(usize, String, String)>> = Vec::new();
            for i in 1..=k {
                let shard = ShardSpec::new(i, k).expect("1 <= i <= k");
                // Each shard re-enumerates the full space and restricts,
                // exactly as a worker process does.
                let mut e = space.enumerate(budget).expect("n <= MAX_OPTIONS");
                emx_dse::shard::restrict(&mut e, shard);
                per_shard.push(rows(&e));
            }

            // Pairwise disjoint by mask.
            for a in 0..per_shard.len() {
                for b in a + 1..per_shard.len() {
                    for (mask, ..) in &per_shard[a] {
                        prop_assert!(
                            !per_shard[b].iter().any(|(m, ..)| m == mask),
                            "mask {mask:#x} owned by both shard {} and {} of {k}",
                            a + 1, b + 1
                        );
                    }
                }
            }

            // Within each shard the order matches the global order (both
            // are ascending-mask, so ascending within the shard suffices
            // together with the concatenation check below).
            for shard_rows in &per_shard {
                prop_assert!(
                    shard_rows.windows(2).all(|w| w[0].0 < w[1].0),
                    "shard rows out of ascending-mask order: {shard_rows:?}"
                );
            }

            // Concatenating shards in index order reproduces the full
            // enumeration — nothing lost, nothing invented, same order.
            let concat: Vec<(usize, String, String)> =
                per_shard.into_iter().flatten().collect();
            prop_assert_eq!(concat, expected.clone(), "k = {}", k);
        }
    }

    #[test]
    fn partition_fingerprints_bind_siblings_and_separate_partitions(
        (n, classes, sel) in space_strategy()
    ) {
        const EXTRACT_FP: u64 = 0xE17A_AC71_0000_0001;
        const PRICE_FP: u64 = 0x9B1C_ED00_0000_0002;
        const FPS: EstimatorFingerprints =
            EstimatorFingerprints { extraction: EXTRACT_FP, pricing: PRICE_FP };
        let space = synthetic_space(n, classes);
        let budget = budget_for(&space, sel);
        let options: Vec<(String, f64)> = space
            .options()
            .iter()
            .map(|o| (o.name.clone(), o.area()))
            .collect();
        let config = ProcConfig::default();

        let mut fp_by_k = Vec::new();
        for k in 1..=8u32 {
            // Every sibling computes the fingerprint from its own (full,
            // pre-restriction) enumeration; all must agree.
            let fps: Vec<u64> = (1..=k)
                .map(|_| {
                    let e = space.enumerate(budget).expect("n <= MAX_OPTIONS");
                    partition_fingerprint(
                        space.name(), budget, &options, &e, k,
                        FPS, &config,
                    )
                })
                .collect();
            prop_assert!(
                fps.windows(2).all(|w| w[0] == w[1]),
                "siblings of {k} disagree: {fps:?}"
            );
            fp_by_k.push(fps[0]);
        }

        // Different shard counts are different partitions.
        for a in 0..fp_by_k.len() {
            for b in a + 1..fp_by_k.len() {
                prop_assert_ne!(fp_by_k[a], fp_by_k[b]);
            }
        }

        // A refitted model (different pricing semantics) is a different
        // partition even over the identical enumeration.
        let e = space.enumerate(budget).expect("n <= MAX_OPTIONS");
        let base = partition_fingerprint(
            space.name(), budget, &options, &e, 3, FPS, &config,
        );
        let refit = partition_fingerprint(
            space.name(), budget, &options, &e, 3,
            EstimatorFingerprints { pricing: PRICE_FP ^ 1, ..FPS }, &config,
        );
        prop_assert_ne!(base, refit);
    }
}
