//! Pairwise case planning: from a gap list to directed-case specs.
//!
//! The planner turns the analyzer's ranked [`Gap`] list into a
//! deterministic list of [`CaseSpec`]s — (primary, partner, weight-ratio)
//! triples that a directed case generator realizes as small loop
//! programs. The scheme is a pairwise covering design:
//!
//! * an **under-excited** primary gets several cases at *different*
//!   partner pairings and intensity ratios, so its new column rows are
//!   not proportional to any single partner's rows (one case would just
//!   create a fresh collinearity);
//! * a **collinear** pair gets cases that excite the primary alongside
//!   partners *other than* the variable it is correlated with. Two
//!   columns are collinear because they only ever moved together; the
//!   missing information is a row where the primary is high and its
//!   correlate is not, and pairing the primary with a third variable
//!   produces exactly that row. (Pairing the two correlates with each
//!   other at "contrasting ratios" sounds tempting but is often
//!   unrealizable — e.g. a large straight-line body that thrashes the
//!   I-cache is itself arithmetic, so β_icm-with-α_A cases can only
//!   *raise* their correlation);
//! * an **inflated** (high-VIF) variable is cured by **dilution**, not by
//!   more of itself: VIF says the variable's column is well predicted by
//!   a combination of the others, and adding yet more cases that excite
//!   it (each dragging along the same baseline mix) strengthens that
//!   prediction. What weakens it is rows that vary the *other* variables
//!   while the inflated one stays at zero, so the planner emits cases
//!   over rotating default-partner pairs instead.
//!
//! The planner is pure string-level: it knows variable names, not
//! workloads, so `emx-coverage` stays independent of `emx-workloads`
//! (which depends on the simulator). The generator is free to decline a
//! spec it cannot realize.

use crate::analyze::{CoverageAnalysis, GapKind};

/// One directed-case request: excite `primary` and `partner` in the
/// given intensity ratio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// The gap variable the case exists to excite.
    pub primary: String,
    /// The variable to pair it with.
    pub partner: String,
    /// Relative intensity (primary, partner) — e.g. (3,1) means the loop
    /// body leans 3:1 towards the primary stimulus.
    pub weights: (u32, u32),
}

/// Contrasting intensity ratios, in planning order.
const RATIOS: [(u32, u32); 3] = [(3, 1), (1, 3), (2, 2)];

/// Default partners for gaps whose reason names none: well-excited
/// base-ISA variables that every suite conditions thoroughly, rotated so
/// consecutive cases for one primary differ in partner *and* ratio.
const DEFAULT_PARTNERS: [&str; 3] = ["alpha_A", "alpha_L", "alpha_S"];

/// Plans directed cases for every gap in `analysis`, at most
/// `cases_per_gap` per gap (clamped to the available ratio count).
/// Deterministic: the same analysis always yields the same plan.
pub fn plan(analysis: &CoverageAnalysis, cases_per_gap: usize) -> Vec<CaseSpec> {
    let per_gap = cases_per_gap.min(RATIOS.len());
    let mut out = Vec::new();
    for (g, gap) in analysis.gaps.iter().enumerate() {
        // Never pair a variable with itself, and never pair a collinear
        // primary with the very variable it is entangled with — that row
        // already exists in abundance (see the module doc).
        let excluded = gap.partner().unwrap_or("");
        for (k, &weights) in RATIOS.iter().enumerate().take(per_gap) {
            if let GapKind::Inflated { .. } = gap.kind {
                // Dilution: excite rotating pairs that do NOT include the
                // inflated variable (see the module doc).
                let mut a = (g + k) % DEFAULT_PARTNERS.len();
                while DEFAULT_PARTNERS[a] == gap.variable {
                    a = (a + 1) % DEFAULT_PARTNERS.len();
                }
                let mut b = (a + 1) % DEFAULT_PARTNERS.len();
                while DEFAULT_PARTNERS[b] == gap.variable {
                    b = (b + 1) % DEFAULT_PARTNERS.len();
                }
                out.push(CaseSpec {
                    primary: DEFAULT_PARTNERS[a].to_owned(),
                    partner: DEFAULT_PARTNERS[b].to_owned(),
                    weights,
                });
                continue;
            }
            let mut pick = (g + k) % DEFAULT_PARTNERS.len();
            while DEFAULT_PARTNERS[pick] == gap.variable || DEFAULT_PARTNERS[pick] == excluded {
                pick = (pick + 1) % DEFAULT_PARTNERS.len();
            }
            out.push(CaseSpec {
                primary: gap.variable.clone(),
                partner: DEFAULT_PARTNERS[pick].to_owned(),
                weights,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{Gap, Thresholds};

    fn analysis_with(gaps: Vec<Gap>) -> CoverageAnalysis {
        CoverageAnalysis {
            cases: 10,
            variables: Vec::new(),
            pairs: Vec::new(),
            condition_number: 100.0,
            gaps,
            thresholds: Thresholds::default(),
        }
    }

    #[test]
    fn empty_gap_list_plans_nothing() {
        assert!(plan(&analysis_with(Vec::new()), 3).is_empty());
    }

    #[test]
    fn collinear_gap_avoids_its_entangled_partner() {
        let a = analysis_with(vec![Gap {
            variable: "beta_icm".into(),
            kind: GapKind::Collinear {
                partner: "alpha_A".into(),
                abs_r: 0.97,
            },
        }]);
        let specs = plan(&a, 2);
        assert_eq!(specs.len(), 2);
        // Decorrelation comes from exciting β_icm *without* α_A, so the
        // planner must pair it with the other default partners.
        assert!(specs.iter().all(|s| s.partner != "alpha_A"));
        assert!(specs.iter().all(|s| s.partner != "beta_icm"));
        assert_eq!(specs[0].weights, (3, 1));
        assert_eq!(specs[1].weights, (1, 3));
    }

    #[test]
    fn under_excited_gap_rotates_partners() {
        let a = analysis_with(vec![Gap {
            variable: "delta_shift".into(),
            kind: GapKind::UnderExcited { nonzero_cases: 1 },
        }]);
        let specs = plan(&a, 3);
        assert_eq!(specs.len(), 3);
        let partners: Vec<&str> = specs.iter().map(|s| s.partner.as_str()).collect();
        assert_eq!(partners, ["alpha_A", "alpha_L", "alpha_S"]);
    }

    #[test]
    fn primary_never_pairs_with_itself() {
        let a = analysis_with(vec![Gap {
            variable: "alpha_A".into(),
            kind: GapKind::UnderExcited { nonzero_cases: 0 },
        }]);
        for spec in plan(&a, 3) {
            assert_ne!(spec.primary, spec.partner);
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let a = analysis_with(vec![
            Gap {
                variable: "delta_table".into(),
                kind: GapKind::UnderExcited { nonzero_cases: 2 },
            },
            Gap {
                variable: "gamma_CI".into(),
                kind: GapKind::Inflated { vif: 30.0 },
            },
        ]);
        assert_eq!(plan(&a, 3), plan(&a, 3));
    }
}
