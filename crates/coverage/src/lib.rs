//! Calibration-suite coverage analysis for the emx energy macro-model.
//!
//! The paper's Eq. 5 fits the 21 template coefficients by pseudo-inverse,
//! `Ĉ = (XᵀX)⁻¹XᵀE`, so the quality of every downstream energy estimate
//! is bounded by how well the training suite conditions `XᵀX`. This crate
//! makes that property measurable and enforceable:
//!
//! * [`analyze`] — the **excitation analyzer**: per-variable column norms
//!   and nonzero-case counts, pairwise column correlations,
//!   variance-inflation factors, and the condition number of the
//!   column-normalized Gram matrix, distilled into a ranked [`Gap`] list.
//! * [`plan`] — the **pairwise planner**: turns the gap list into
//!   deterministic (primary, partner, ratio) case specs that a directed
//!   generator ([`emx_workloads::directed`]) realizes as loop programs.
//! * [`report`] — the versioned, byte-deterministic
//!   [`emx.coverage-report/1`](report::SCHEMA) document consumed by
//!   `emx-validate --coverage` and CI.
//!
//! The closed loop — analyze, plan, synthesize, re-analyze until the
//! suite passes [`Thresholds`] — is what took the emx suite from three
//! ridge-fallback folds and LOO R² ≈ 0.60 to zero ridge folds and
//! R² ≥ 0.75; DESIGN.md §13 documents the methodology.
//!
//! [`emx_workloads::directed`]: https://docs.rs/emx-workloads
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), emx_regress::RegressError> {
//! use emx_coverage::{analyze, Thresholds};
//! use emx_regress::Dataset;
//!
//! let mut d = Dataset::new(vec!["a".into(), "b".into()]);
//! d.push_sample("s0", &[1.0, 4.0], 9.0)?;
//! d.push_sample("s1", &[2.0, 1.0], 4.0)?;
//! d.push_sample("s2", &[3.0, 2.0], 7.0)?;
//! d.push_sample("s3", &[1.0, 3.0], 7.0)?;
//! let analysis = analyze(&d, &Thresholds::default())?;
//! assert!(analysis.passes(), "{:?}", analysis.failures());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
pub mod eigen;
mod plan;
pub mod report;

pub use analyze::{
    analyze, CoverageAnalysis, Gap, GapKind, PairCorrelation, Thresholds, VariableExcitation,
};
pub use plan::{plan, CaseSpec};
