//! The `emx.coverage-report/1` document: serialization and parsing.
//!
//! Like the validate report, the document is a pure function of the suite
//! — no timings, hostnames, or absolute paths — so two runs over the same
//! suite are byte-identical and CI can `cmp` them to prove determinism.
//!
//! Infinite values (a singular condition number, an exactly-collinear
//! VIF) serialize as JSON `null`, since JSON has no `Infinity` literal;
//! [`parse`] maps `null` back to `f64::INFINITY`.

use emx_obs::json::Value;

use crate::analyze::{
    CoverageAnalysis, Gap, GapKind, PairCorrelation, Thresholds, VariableExcitation,
};

/// Schema identifier embedded in, and required of, every report.
pub const SCHEMA: &str = "emx.coverage-report/1";

fn set_finite_or_null(doc: &mut Value, key: &str, value: f64) {
    if value.is_finite() {
        doc.set(key, value);
    } else {
        doc.set(key, Value::Null);
    }
}

/// Renders the analysis as an `emx.coverage-report/1` document.
pub fn to_json(analysis: &CoverageAnalysis) -> Value {
    let mut doc = Value::object();
    doc.set("schema", SCHEMA);
    doc.set("cases", analysis.cases as f64);
    set_finite_or_null(&mut doc, "condition_number", analysis.condition_number);
    doc.set("pass", analysis.passes());

    let mut th = Value::object();
    th.set(
        "min_nonzero_cases",
        analysis.thresholds.min_nonzero_cases as f64,
    );
    th.set(
        "max_pair_correlation",
        analysis.thresholds.max_pair_correlation,
    );
    th.set(
        "max_condition_number",
        analysis.thresholds.max_condition_number,
    );
    th.set("max_vif", analysis.thresholds.max_vif);
    doc.set("thresholds", th);

    let mut vars = Value::array();
    for v in &analysis.variables {
        let mut o = Value::object();
        o.set("name", v.name.as_str());
        o.set("nonzero_cases", v.nonzero_cases as f64);
        o.set("column_norm", v.column_norm);
        set_finite_or_null(&mut o, "vif", v.vif);
        vars.push(o);
    }
    doc.set("variables", vars);

    let mut pairs = Value::array();
    for p in &analysis.pairs {
        let mut o = Value::object();
        o.set("a", p.a.as_str());
        o.set("b", p.b.as_str());
        o.set("abs_r", p.abs_r);
        pairs.push(o);
    }
    doc.set("pairs", pairs);

    let mut gaps = Value::array();
    for g in &analysis.gaps {
        let mut o = Value::object();
        o.set("variable", g.variable.as_str());
        o.set("reason", g.reason());
        match &g.kind {
            GapKind::UnderExcited { nonzero_cases } => {
                o.set("nonzero_cases", *nonzero_cases as f64);
            }
            GapKind::Collinear { partner, abs_r } => {
                o.set("partner", partner.as_str());
                o.set("abs_r", *abs_r);
            }
            GapKind::Inflated { vif } => o.set("vif", *vif),
        }
        gaps.push(o);
    }
    doc.set("gaps", gaps);
    doc
}

fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
}

fn field_f64_or_inf(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Null) => Ok(f64::INFINITY),
        Some(other) => other
            .as_f64()
            .ok_or_else(|| format!("non-numeric field `{key}`")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn field_usize(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

/// Parses a coverage report back into a [`CoverageAnalysis`].
///
/// Rejects unknown schema versions outright, for the same reason the
/// validate gate does: comparing across schema changes would pass on
/// vacuous matches. The recorded `pass` flag is not trusted — callers
/// should re-derive it from [`CoverageAnalysis::passes`].
pub fn parse(text: &str) -> Result<CoverageAnalysis, String> {
    let doc = Value::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = field_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected `{SCHEMA}`)"
        ));
    }
    let th = doc.get("thresholds").ok_or("missing `thresholds`")?;
    let thresholds = Thresholds {
        min_nonzero_cases: field_usize(th, "min_nonzero_cases")?,
        max_pair_correlation: field_f64(th, "max_pair_correlation")?,
        max_condition_number: field_f64(th, "max_condition_number")?,
        max_vif: field_f64(th, "max_vif")?,
    };
    let mut variables = Vec::new();
    for v in doc
        .get("variables")
        .and_then(Value::as_array)
        .ok_or("missing `variables`")?
    {
        variables.push(VariableExcitation {
            name: field_str(v, "name")?,
            nonzero_cases: field_usize(v, "nonzero_cases")?,
            column_norm: field_f64(v, "column_norm")?,
            vif: field_f64_or_inf(v, "vif")?,
        });
    }
    let mut pairs = Vec::new();
    for p in doc
        .get("pairs")
        .and_then(Value::as_array)
        .ok_or("missing `pairs`")?
    {
        pairs.push(PairCorrelation {
            a: field_str(p, "a")?,
            b: field_str(p, "b")?,
            abs_r: field_f64(p, "abs_r")?,
        });
    }
    let mut gaps = Vec::new();
    for g in doc
        .get("gaps")
        .and_then(Value::as_array)
        .ok_or("missing `gaps`")?
    {
        let variable = field_str(g, "variable")?;
        let reason = field_str(g, "reason")?;
        let kind = match reason.as_str() {
            "under-excited" => GapKind::UnderExcited {
                nonzero_cases: field_usize(g, "nonzero_cases")?,
            },
            "collinear" => GapKind::Collinear {
                partner: field_str(g, "partner")?,
                abs_r: field_f64(g, "abs_r")?,
            },
            "inflated" => GapKind::Inflated {
                vif: field_f64(g, "vif")?,
            },
            other => return Err(format!("unknown gap reason `{other}`")),
        };
        gaps.push(Gap { variable, kind });
    }
    Ok(CoverageAnalysis {
        cases: field_usize(&doc, "cases")?,
        variables,
        pairs,
        condition_number: field_f64_or_inf(&doc, "condition_number")?,
        gaps,
        thresholds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoverageAnalysis {
        CoverageAnalysis {
            cases: 40,
            variables: vec![
                VariableExcitation {
                    name: "alpha_A".into(),
                    nonzero_cases: 40,
                    column_norm: 123.5,
                    vif: 3.2,
                },
                VariableExcitation {
                    name: "beta_ucf".into(),
                    nonzero_cases: 1,
                    column_norm: 4.0,
                    vif: f64::INFINITY,
                },
            ],
            pairs: vec![PairCorrelation {
                a: "alpha_A".into(),
                b: "beta_icm".into(),
                abs_r: 0.91,
            }],
            condition_number: 812.0,
            gaps: vec![
                Gap {
                    variable: "beta_ucf".into(),
                    kind: GapKind::UnderExcited { nonzero_cases: 1 },
                },
                Gap {
                    variable: "beta_icm".into(),
                    kind: GapKind::Collinear {
                        partner: "alpha_A".into(),
                        abs_r: 0.96,
                    },
                },
                Gap {
                    variable: "gamma_CI".into(),
                    kind: GapKind::Inflated { vif: 44.0 },
                },
            ],
            thresholds: Thresholds::default(),
        }
    }

    #[test]
    fn json_round_trip_preserves_the_analysis() {
        let a = sample();
        let text = to_json(&a).to_string();
        assert_eq!(parse(&text).expect("parses"), a);
    }

    #[test]
    fn infinite_condition_number_round_trips_as_null() {
        let mut a = sample();
        a.condition_number = f64::INFINITY;
        let text = to_json(&a).to_string();
        assert!(text.contains("\"condition_number\": null"), "{text}");
        let back = parse(&text).expect("parses");
        assert!(back.condition_number.is_infinite());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut doc = to_json(&sample());
        doc.set("schema", "emx.coverage-report/999");
        let err = parse(&doc.to_string()).expect_err("must reject");
        assert!(err.contains("unsupported schema"), "{err}");
    }

    #[test]
    fn serialization_is_deterministic() {
        let a = sample();
        assert_eq!(to_json(&a).to_string(), to_json(&a).to_string());
    }
}
