//! Symmetric eigenvalue extraction for conditioning analysis.
//!
//! The analyzer needs the spectrum of the (column-normalized) Gram matrix
//! `XᵀX` — a small symmetric positive-semidefinite matrix, at most
//! 21×21 for the paper's full template. The cyclic Jacobi method is ideal
//! at this size: a few dozen sweeps of plane rotations, unconditionally
//! convergent for symmetric input, no pivoting heuristics, and fully
//! deterministic — the same matrix always yields bit-identical
//! eigenvalues, which the byte-stable `emx.coverage-report/1` document
//! relies on.

use emx_regress::Matrix;

/// Maximum number of Jacobi sweeps before giving up. Quadratic
/// convergence means well under 20 sweeps suffice for any matrix this
/// crate sees; the cap only bounds pathological input.
const MAX_SWEEPS: usize = 64;

/// Convergence threshold on the off-diagonal Frobenius norm, relative to
/// the total norm.
const TOLERANCE: f64 = 1e-12;

/// Eigenvalues of a symmetric matrix, sorted ascending, via the cyclic
/// Jacobi method. The input must be square and symmetric; asymmetry is
/// silently symmetrized (`(A + Aᵀ)/2`) since callers pass Gram matrices
/// that are symmetric up to rounding.
pub fn symmetric_eigenvalues(a: &Matrix) -> Vec<f64> {
    let n = a.rows();
    debug_assert_eq!(n, a.cols(), "eigenvalues need a square matrix");
    if n == 0 {
        return Vec::new();
    }
    // Work on a symmetrized copy in a flat row-major buffer.
    let mut m = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            m[i * n + j] = 0.5 * (a[(i, j)] + a[(j, i)]);
        }
    }

    let total_norm: f64 = m.iter().map(|v| v * v).sum::<f64>().sqrt();
    if total_norm == 0.0 {
        return vec![0.0; n];
    }

    for _ in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| m[i * n + j] * m[i * n + j])
            .sum::<f64>()
            .sqrt();
        if off <= TOLERANCE * total_norm {
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[p * n + q];
                if apq == 0.0 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Classic Jacobi rotation angle: tan(2θ) = 2·apq / (app − aqq).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }

    let mut eigs: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    eigs.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    eigs
}

/// Spectral condition number λ_max / λ_min of a symmetric
/// positive-semidefinite matrix. Returns `f64::INFINITY` when the matrix
/// is singular to working precision (any eigenvalue ≤ `n·ε·λ_max`).
pub fn condition_number(a: &Matrix) -> f64 {
    let eigs = symmetric_eigenvalues(a);
    let Some(&max) = eigs.last() else {
        return f64::INFINITY;
    };
    if max <= 0.0 {
        return f64::INFINITY;
    }
    let cutoff = eigs.len() as f64 * f64::EPSILON * max;
    let min = eigs[0];
    if min <= cutoff {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_entries() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let eigs = symmetric_eigenvalues(&a);
        assert!((eigs[0] - 1.0).abs() < 1e-12);
        assert!((eigs[1] - 2.0).abs() < 1e-12);
        assert!((eigs[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let eigs = symmetric_eigenvalues(&a);
        assert!((eigs[0] - 1.0).abs() < 1e-12, "{eigs:?}");
        assert!((eigs[1] - 3.0).abs() < 1e-12, "{eigs:?}");
        assert!((condition_number(&a) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvalue_sum_matches_trace() {
        // Random-ish symmetric matrix via M = BᵀB.
        let b = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let g = b.gram();
        let eigs = symmetric_eigenvalues(&g);
        let trace: f64 = (0..4).map(|i| g[(i, i)]).sum();
        let sum: f64 = eigs.iter().sum();
        assert!((trace - sum).abs() < 1e-9 * trace.abs().max(1.0));
        // Gram matrices are PSD.
        assert!(eigs.iter().all(|&e| e > -1e-9));
    }

    #[test]
    fn singular_matrix_has_infinite_condition() {
        // Rank-1: second column is twice the first.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(condition_number(&b.gram()).is_infinite());
    }

    #[test]
    fn identity_is_perfectly_conditioned() {
        assert!((condition_number(&Matrix::identity(5)) - 1.0).abs() < 1e-12);
    }
}
